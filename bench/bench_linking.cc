// Experiment E6: the linking hot path. The paper's rules shrink the
// comparison space; this bench measures what each surviving comparison
// costs. The reference path (ItemMatcher::Score) re-tokenizes and
// re-bigrams both value strings for every candidate pair; the cached
// pipeline builds per-source FeatureCaches once and streams the
// candidates through ItemMatcher::ScoreCached — sort-merge token measures
// over dense ids, measure dispatch hoisted out of the pair loop, and a
// per-worker (value, value, measure) memo that exploits how heavily
// catalog values repeat. Links are byte-identical by construction (see
// linking_cached_differential_test); this binary records the wall-time
// and memo economics to BENCH_linking.json.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "blocking/standard_blocking.h"
#include "linking/evaluation.h"
#include "linking/feature_cache.h"
#include "linking/filters.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/streaming_linker.h"
#include "obs/metrics.h"
#include "text/similarity.h"
#include "util/simd.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

constexpr double kThreshold = 0.6;

// The matcher the cache is built for: token and bigram measures on the
// part number (sort-merges over dense ids once cached), Monge-Elkan and
// Jaro-Winkler on the manufacturer name, whose values repeat across the
// catalog and so hit the score memo, and an exact check that collapses to
// a value-id comparison.
linking::ItemMatcher PipelineMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 2.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kExact, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kJaroWinkler, 0.5},
  });
}

struct Fixture {
  const datagen::Dataset* dataset = nullptr;
  linking::ItemMatcher matcher;
  std::vector<blocking::CandidatePair> candidates;

  Fixture() : matcher(PipelineMatcher()) {
    dataset = &PaperDataset();
    const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                            /*prefix_length=*/4);
    candidates =
        blocker.Generate(dataset->external_items, dataset->catalog_items);
  }
};

const Fixture& GetFixture() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

struct CachedTimings {
  double build_ms = 0.0;  // dictionary + both caches
  double run_ms = 0.0;    // RunCached over the candidates
  double total_ms() const { return build_ms + run_ms; }
  linking::ScoreMemoStats memo;
  linking::LinkerStats stats;
  std::size_t links = 0;
  std::size_t distinct_values = 0;
  std::size_t dictionary_symbols = 0;
  std::size_t dictionary_bytes = 0;
};

CachedTimings TimeCachedOnce(const Fixture& fixture,
                             std::size_t num_threads) {
  CachedTimings timings;
  util::Stopwatch build_timer;
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      fixture.dataset->external_items, fixture.matcher,
      linking::FeatureCache::Side::kExternal, &dict, num_threads);
  const auto local = linking::FeatureCache::Build(
      fixture.dataset->catalog_items, fixture.matcher,
      linking::FeatureCache::Side::kLocal, &dict, num_threads);
  timings.build_ms = build_timer.ElapsedMillis();
  timings.distinct_values = dict.num_values();
  timings.dictionary_symbols = dict.num_symbols();
  timings.dictionary_bytes = dict.memory_bytes();

  const linking::Linker linker(&fixture.matcher, kThreshold);
  util::Stopwatch run_timer;
  const auto links =
      linker.RunCached(external, local, fixture.candidates, &timings.stats,
                       num_threads, &timings.memo);
  timings.run_ms = run_timer.ElapsedMillis();
  timings.links = links.size();
  return timings;
}

// The headline comparison: reference string-path Run vs cache build +
// RunCached, single-threaded (the per-comparison economics, not the
// parallel scaling — that is the sweep below). Warm-up once, then
// best-of-3, matching the learner bench protocol.
std::string PrintCachedPipelineReport() {
  const Fixture& fixture = GetFixture();
  const linking::Linker linker(&fixture.matcher, kThreshold);
  std::cout << "=== E6: cached vs reference linking pipeline ("
            << fixture.dataset->external_items.size() << " external x "
            << fixture.dataset->catalog_items.size() << " catalog, "
            << fixture.candidates.size() << " candidates) ===\n";

  linking::LinkerStats ref_stats;
  auto reference_links =
      linker.Run(fixture.dataset->external_items,
                 fixture.dataset->catalog_items, fixture.candidates,
                 &ref_stats, /*num_threads=*/1);  // warm-up
  double reference_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    util::Stopwatch timer;
    reference_links =
        linker.Run(fixture.dataset->external_items,
                   fixture.dataset->catalog_items, fixture.candidates,
                   &ref_stats, /*num_threads=*/1);
    const double ms = timer.ElapsedMillis();
    if (rep == 0 || ms < reference_ms) reference_ms = ms;
  }

  CachedTimings cached = TimeCachedOnce(fixture, 1);  // warm-up
  for (int rep = 0; rep < 3; ++rep) {
    const CachedTimings t = TimeCachedOnce(fixture, 1);
    if (t.total_ms() < cached.total_ms()) cached = t;
  }
  RL_CHECK(cached.links == reference_links.size());
  // Both paths score every candidate pair; the cached path runs fewer
  // kernels because memo hits replay stored results.
  RL_CHECK(cached.stats.pairs_scored == ref_stats.pairs_scored);
  RL_CHECK(cached.stats.comparisons <= ref_stats.comparisons);

  const double speedup =
      cached.total_ms() > 0.0 ? reference_ms / cached.total_ms() : 0.0;
  util::TextTable table({"pipeline", "time (ms)", "pairs scored",
                         "kernels run", "links", "memo hit rate"});
  table.AddRow({"reference (string path)",
                util::FormatDouble(reference_ms, 1),
                std::to_string(ref_stats.pairs_scored),
                std::to_string(ref_stats.comparisons),
                std::to_string(reference_links.size()), "-"});
  table.AddRow({"cached (build + fused run)",
                util::FormatDouble(cached.total_ms(), 1),
                std::to_string(cached.stats.pairs_scored),
                std::to_string(cached.stats.comparisons),
                std::to_string(cached.links),
                util::FormatDouble(cached.memo.hit_rate() * 100.0, 1) +
                    "%"});
  std::cout << table.ToText() << "cache build: "
            << util::FormatDouble(cached.build_ms, 1) << " ms ("
            << cached.distinct_values << " distinct values, "
            << cached.dictionary_symbols << " symbols, "
            << util::FormatDouble(
                   static_cast<double>(cached.dictionary_bytes) / 1024.0, 1)
            << " KiB); speedup: " << util::FormatDouble(speedup, 2)
            << "x (identical links; differential-tested)\n\n";

  std::string json = "  \"pipeline\": {\n";
  json += "    \"candidates\": " +
          std::to_string(fixture.candidates.size()) + ",\n";
  json += "    \"pairs_scored\": " +
          std::to_string(cached.stats.pairs_scored) + ",\n";
  json += "    \"comparisons\": " +
          std::to_string(cached.stats.comparisons) + ",\n";
  json += "    \"links\": " + std::to_string(cached.links) + ",\n";
  json += "    \"reference_ms\": " + util::FormatDouble(reference_ms, 3) +
          ",\n";
  json += "    \"cache_build_ms\": " +
          util::FormatDouble(cached.build_ms, 3) + ",\n";
  json += "    \"cached_run_ms\": " + util::FormatDouble(cached.run_ms, 3) +
          ",\n";
  json += "    \"cached_total_ms\": " +
          util::FormatDouble(cached.total_ms(), 3) + ",\n";
  json += "    \"speedup_vs_reference\": " +
          util::FormatDouble(speedup, 3) + ",\n";
  json += "    \"memo_lookups\": " + std::to_string(cached.memo.lookups) +
          ",\n";
  json += "    \"memo_hits\": " + std::to_string(cached.memo.hits) + ",\n";
  json += "    \"memo_hit_rate\": " +
          util::FormatDouble(cached.memo.hit_rate(), 4) + ",\n";
  json += "    \"distinct_values\": " +
          std::to_string(cached.distinct_values) + ",\n";
  json += "    \"dictionary_symbols\": " +
          std::to_string(cached.dictionary_symbols) + ",\n";
  json += "    \"dictionary_bytes\": " +
          std::to_string(cached.dictionary_bytes) + "\n  },\n";
  return json;
}

// The matcher the streaming comparison is built for: a heavily weighted
// Levenshtein rule on the part number (length bound + capped bit-parallel
// probe), Dice/Jaccard/exact rules the count and id filters bound, and a
// Monge-Elkan rule on the manufacturer that has no cheap bound — the
// cascade treats it optimistically, and skipping its kernel is where a
// prune saves the most work.
linking::ItemMatcher StreamingMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 3.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kExact, 1.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 0.5},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 0.5},
  });
}

// E6c: streaming (inverted index + filter cascade) vs cached (materialize
// + RunCached), single-threaded, sharing one pair of feature caches so
// the difference is purely candidate handling and pruned kernel work.
// Links are byte-identical (differential-tested; re-checked here).
std::string PrintStreamingReport() {
  const datagen::Dataset& dataset = PaperDataset();
  const linking::ItemMatcher matcher = StreamingMatcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  std::cout << "=== E6c: streaming filter cascade vs cached linking ===\n";

  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      dataset.external_items, matcher, linking::FeatureCache::Side::kExternal,
      &dict, 1);
  const auto local = linking::FeatureCache::Build(
      dataset.catalog_items, matcher, linking::FeatureCache::Side::kLocal,
      &dict, 1);

  const linking::Linker cached_linker(&matcher, kThreshold);
  const linking::StreamingLinker streaming(&matcher, kThreshold);

  double cached_ms = 0.0;
  linking::LinkerStats cached_stats;
  std::vector<linking::Link> cached_links;
  for (int rep = -1; rep < 3; ++rep) {  // rep -1 is the warm-up
    util::Stopwatch timer;
    const auto candidates =
        blocker.Generate(dataset.external_items, dataset.catalog_items);
    auto links = cached_linker.RunCached(external, local, candidates,
                                         &cached_stats, /*num_threads=*/1);
    const double ms = timer.ElapsedMillis();
    if (rep < 0) continue;
    if (rep == 0 || ms < cached_ms) cached_ms = ms;
    cached_links = std::move(links);
  }

  double streaming_ms = 0.0;
  linking::LinkerStats streaming_stats;
  std::vector<linking::Link> streaming_links;
  for (int rep = -1; rep < 5; ++rep) {  // rep -1 is the warm-up
    util::Stopwatch timer;
    const auto index =
        blocker.BuildIndex(dataset.external_items, dataset.catalog_items);
    auto links = streaming.Run(*index, external, local, &streaming_stats,
                               /*num_threads=*/1);
    const double ms = timer.ElapsedMillis();
    if (rep < 0) continue;
    if (rep == 0 || ms < streaming_ms) streaming_ms = ms;
    streaming_links = std::move(links);
  }

  // The ISSUE's instrumentation budget: the same streaming run with a live
  // MetricsRegistry must stay within 2% of the uninstrumented one. The
  // registry is rebuilt per rep so every rep records the same work;
  // best-of-5 on both sides cancels scheduler noise.
  double instrumented_ms = 0.0;
  obs::MetricsSnapshot snapshot;
  for (int rep = -1; rep < 5; ++rep) {
    obs::MetricsRegistry registry;
    util::Stopwatch timer;
    const auto index =
        blocker.BuildIndex(dataset.external_items, dataset.catalog_items);
    auto links = streaming.Run(*index, external, local, nullptr,
                               /*num_threads=*/1, nullptr, &registry);
    const double ms = timer.ElapsedMillis();
    RL_CHECK(links.size() == streaming_links.size());
    if (rep < 0) continue;
    if (rep == 0 || ms < instrumented_ms) instrumented_ms = ms;
    snapshot = registry.Snapshot();
  }
  const double overhead_pct =
      streaming_ms > 0.0
          ? std::max(0.0, (instrumented_ms - streaming_ms) / streaming_ms) *
                100.0
          : 0.0;
  if (auto s = snapshot.WriteJsonFile("BENCH_linking_metrics.json");
      !s.ok()) {
    std::cerr << "metrics snapshot: " << s << "\n";
  }

  RL_CHECK(streaming_links.size() == cached_links.size());
  for (std::size_t i = 0; i < cached_links.size(); ++i) {
    RL_CHECK(streaming_links[i].external_index ==
                 cached_links[i].external_index &&
             streaming_links[i].local_index == cached_links[i].local_index &&
             streaming_links[i].score == cached_links[i].score);
  }
  RL_CHECK(streaming_stats.pairs_pruned_by_filter > 0);
  RL_CHECK(streaming_stats.pairs_scored +
               streaming_stats.pairs_pruned_by_filter ==
           cached_stats.pairs_scored);

  const double speedup = streaming_ms > 0.0 ? cached_ms / streaming_ms : 0.0;
  util::TextTable table({"pipeline", "time (ms)", "pairs scored",
                         "pruned", "kernels run", "links"});
  table.AddRow({"cached (materialize + RunCached)",
                util::FormatDouble(cached_ms, 1),
                std::to_string(cached_stats.pairs_scored), "0",
                std::to_string(cached_stats.comparisons),
                std::to_string(cached_links.size())});
  table.AddRow({"streaming (index + cascade)",
                util::FormatDouble(streaming_ms, 1),
                std::to_string(streaming_stats.pairs_scored),
                std::to_string(streaming_stats.pairs_pruned_by_filter),
                std::to_string(streaming_stats.comparisons),
                std::to_string(streaming_links.size())});
  std::cout << table.ToText() << "prunes by filter: length="
            << streaming_stats.pruned_by_length
            << ", token count=" << streaming_stats.pruned_by_token_count
            << ", exact=" << streaming_stats.pruned_by_exact
            << ", distance cap=" << streaming_stats.pruned_by_distance_cap
            << "; peak candidate run=" << streaming_stats.peak_candidate_run
            << "\nspeedup: " << util::FormatDouble(speedup, 2)
            << "x (identical links; differential-tested)\n"
            << "instrumentation overhead: "
            << util::FormatDouble(overhead_pct, 2)
            << "% (snapshot written to BENCH_linking_metrics.json)\n\n";

  std::string json = "  \"streaming\": {\n";
  json += "    \"candidates\": " +
          std::to_string(cached_stats.pairs_scored) + ",\n";
  json += "    \"pairs_scored\": " +
          std::to_string(streaming_stats.pairs_scored) + ",\n";
  json += "    \"pairs_pruned_by_filter\": " +
          std::to_string(streaming_stats.pairs_pruned_by_filter) + ",\n";
  json += "    \"pruned_by_length\": " +
          std::to_string(streaming_stats.pruned_by_length) + ",\n";
  json += "    \"pruned_by_token_count\": " +
          std::to_string(streaming_stats.pruned_by_token_count) + ",\n";
  json += "    \"pruned_by_exact\": " +
          std::to_string(streaming_stats.pruned_by_exact) + ",\n";
  json += "    \"pruned_by_distance_cap\": " +
          std::to_string(streaming_stats.pruned_by_distance_cap) + ",\n";
  json += "    \"peak_candidate_run\": " +
          std::to_string(streaming_stats.peak_candidate_run) + ",\n";
  json += "    \"links\": " + std::to_string(streaming_links.size()) + ",\n";
  json += "    \"cached_ms\": " + util::FormatDouble(cached_ms, 3) + ",\n";
  json += "    \"streaming_ms\": " + util::FormatDouble(streaming_ms, 3) +
          ",\n";
  json += "    \"speedup_vs_cached\": " + util::FormatDouble(speedup, 3) +
          ",\n";
  json += "    \"instrumented_ms\": " +
          util::FormatDouble(instrumented_ms, 3) + ",\n";
  json += "    \"instrumentation_overhead_pct\": " +
          util::FormatDouble(overhead_pct, 3) + "\n  },\n";
  return json;
}

// Shared fixture for the batched-cascade report and the kernel
// microbenches below: StreamingMatcher feature caches and the blocker's
// inverted index over the paper corpus, plus the total candidate-pair
// count the throughput numbers divide by.
struct StreamingFixture {
  linking::ItemMatcher matcher;
  linking::FeatureDictionary dict;
  linking::FeatureCache external;
  linking::FeatureCache local;
  std::unique_ptr<blocking::CandidateIndex> index;
  std::size_t candidate_pairs = 0;

  StreamingFixture() : matcher(StreamingMatcher()) {
    const datagen::Dataset& dataset = PaperDataset();
    external = linking::FeatureCache::Build(
        dataset.external_items, matcher,
        linking::FeatureCache::Side::kExternal, &dict, 1);
    local = linking::FeatureCache::Build(dataset.catalog_items, matcher,
                                         linking::FeatureCache::Side::kLocal,
                                         &dict, 1);
    const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                            /*prefix_length=*/4);
    index =
        blocker.BuildIndex(dataset.external_items, dataset.catalog_items);
    std::vector<std::size_t> run;
    for (std::size_t e = 0; e < index->num_external(); ++e) {
      index->CandidatesOf(e, &run);
      candidate_pairs += run.size();
    }
  }
};

const StreamingFixture& GetStreamingFixture() {
  static const StreamingFixture* fixture = new StreamingFixture();
  return *fixture;
}

// Stage-B-shaped probe workload for the bounded-Levenshtein kernel
// microbench: the part-number strings of every blocked candidate pair,
// capped at about a third of the longest string — the tight caps the
// cascade typically derives. Each external's value is stored once and
// every probe of its run points at that one copy, mirroring how the
// cascade stages probes from the feature cache (one external value per
// candidate run); this is what lets the batch entry form shared-pattern
// segments. Real strings, real length mix; the roofline numbers in
// EXPERIMENTS.md come from this set.
struct ProbeSet {
  std::vector<std::string> a_storage, b_storage;
  std::vector<std::size_t> a_of;  // per probe: index into a_storage
  std::vector<std::string_view> a, b;
  std::vector<std::size_t> caps;
  std::size_t bytes = 0;

  ProbeSet() {
    const datagen::Dataset& dataset = PaperDataset();
    const StreamingFixture& fixture = GetStreamingFixture();
    constexpr std::size_t kMaxPairs = 60000;
    std::vector<std::size_t> run;
    for (std::size_t e = 0;
         e < fixture.index->num_external() && b_storage.size() < kMaxPairs;
         ++e) {
      const auto external_values =
          dataset.external_items[e].ValuesOf(datagen::props::kPartNumber);
      if (external_values.empty()) continue;
      fixture.index->CandidatesOf(e, &run);
      bool stored = false;
      for (const std::size_t local : run) {
        if (b_storage.size() >= kMaxPairs) break;
        const auto local_values = dataset.catalog_items[local].ValuesOf(
            datagen::props::kPartNumber);
        if (local_values.empty()) continue;
        if (!stored) {
          a_storage.push_back(external_values.front());
          stored = true;
        }
        a_of.push_back(a_storage.size() - 1);
        b_storage.push_back(local_values.front());
      }
    }
    a.reserve(b_storage.size());
    b.reserve(b_storage.size());
    caps.reserve(b_storage.size());
    for (std::size_t i = 0; i < b_storage.size(); ++i) {
      a.emplace_back(a_storage[a_of[i]]);
      b.emplace_back(b_storage[i]);
      caps.push_back(std::max(a[i].size(), b[i].size()) / 3 + 1);
      bytes += a[i].size() + b[i].size();
    }
  }
};

const ProbeSet& GetProbeSet() {
  static const ProbeSet* probes = new ProbeSet();
  return *probes;
}

// E6d: the batched SIMD cascade (DESIGN.md §5h) vs the per-pair scalar
// streaming path, links byte-identical by construction (differential-
// tested; re-checked every rep here). "scalar" is RULELINK_SIMD=off — the
// per-pair cascade the batch path replaced — so speedup_vs_scalar is the
// end-to-end gain of SoA lanes + vectorized bounds + interleaved probes
// on the streaming hot path. The baseline-ISA leg (batch layout compiled
// without wide registers) splits the layout gain from the SIMD gain. The
// kernel microbench on harvested stage-B probes answers the
// EXPERIMENTS.md roofline question: pairs/sec and bytes touched per pair,
// scalar vs batched.
std::string PrintBatchedReport() {
  const StreamingFixture& fixture = GetStreamingFixture();
  const linking::StreamingLinker streaming(&fixture.matcher, kThreshold);
  const util::SimdMode active = util::ActiveSimdMode();
  std::cout << "=== E6d: batched SIMD filter cascade ("
            << fixture.candidate_pairs << " candidate pairs, dispatch "
            << util::SimdModeName(active) << ", stage-A width "
            << util::SimdBatchWidth(active) << ") ===\n";

  struct ModeTiming {
    double ms = 0.0;
    util::SimdTotals simd;
    linking::LinkerStats stats;
  };
  std::vector<linking::Link> reference;
  const auto time_mode = [&](util::SimdMode mode) {
    const util::ScopedSimdMode scoped(mode);
    ModeTiming best;
    for (int rep = -1; rep < 5; ++rep) {  // rep -1 is the warm-up
      const util::SimdTotals before = util::GlobalSimdTotals();
      linking::LinkerStats stats;
      util::Stopwatch timer;
      const auto links =
          streaming.Run(*fixture.index, fixture.external, fixture.local,
                        &stats, /*num_threads=*/1);
      const double ms = timer.ElapsedMillis();
      if (reference.empty()) {
        reference = links;
      } else {
        RL_CHECK(links.size() == reference.size());
        for (std::size_t i = 0; i < links.size(); ++i) {
          RL_CHECK(links[i].external_index == reference[i].external_index &&
                   links[i].local_index == reference[i].local_index &&
                   links[i].score == reference[i].score);
        }
      }
      if (rep < 0) continue;
      if (rep == 0 || ms < best.ms) {
        best.ms = ms;
        best.simd = util::GlobalSimdTotals().Minus(before);
        best.stats = stats;
      }
    }
    return best;
  };

  const ModeTiming scalar = time_mode(util::SimdMode::kOff);
  const ModeTiming layout = time_mode(util::SimdMode::kScalar);
  const ModeTiming batched = time_mode(active);
  const auto pairs_per_sec = [&](double ms) {
    return ms > 0.0
               ? static_cast<double>(fixture.candidate_pairs) / (ms / 1000.0)
               : 0.0;
  };
  const double speedup = batched.ms > 0.0 ? scalar.ms / batched.ms : 0.0;

  util::TextTable table({"cascade", "time (ms)", "Mpairs/s",
                         "batched pairs", "remainder"});
  const auto row = [&](const char* name, const ModeTiming& t) {
    table.AddRow({name, util::FormatDouble(t.ms, 2),
                  util::FormatDouble(pairs_per_sec(t.ms) / 1e6, 2),
                  std::to_string(t.simd.cascade_batched_pairs),
                  std::to_string(t.simd.cascade_remainder_pairs)});
  };
  row("scalar (per-pair, RULELINK_SIMD=off)", scalar);
  row("batch layout (baseline ISA)", layout);
  row("batched (active dispatch)", batched);
  std::cout << table.ToText() << "streaming speedup vs scalar: "
            << util::FormatDouble(speedup, 2)
            << "x (identical links at every mode; differential-tested)\n";

  // Kernel microbench: the same probe set through the single-pair kernel
  // and through the batch entry point under the active dispatch.
  const ProbeSet& probes = GetProbeSet();
  std::vector<std::size_t> out(probes.a.size());
  double kernel_scalar_ms = 0.0;
  for (int rep = -1; rep < 5; ++rep) {
    util::Stopwatch timer;
    std::size_t checksum = 0;
    for (std::size_t i = 0; i < probes.a.size(); ++i) {
      checksum += text::BoundedLevenshteinDistance(probes.a[i], probes.b[i],
                                                   probes.caps[i]);
    }
    benchmark::DoNotOptimize(checksum);
    const double ms = timer.ElapsedMillis();
    if (rep < 0) continue;
    if (rep == 0 || ms < kernel_scalar_ms) kernel_scalar_ms = ms;
  }
  double kernel_batched_ms = 0.0;
  for (int rep = -1; rep < 5; ++rep) {
    util::Stopwatch timer;
    text::BoundedLevenshteinDistanceBatch(probes.a.data(), probes.b.data(),
                                          probes.caps.data(),
                                          probes.a.size(), out.data());
    benchmark::DoNotOptimize(out.data());
    const double ms = timer.ElapsedMillis();
    if (rep < 0) continue;
    if (rep == 0 || ms < kernel_batched_ms) kernel_batched_ms = ms;
  }
  for (std::size_t i = 0; i < probes.a.size(); ++i) {
    RL_CHECK(out[i] == text::BoundedLevenshteinDistance(
                           probes.a[i], probes.b[i], probes.caps[i]));
  }
  const double bytes_per_pair =
      probes.a.empty() ? 0.0
                       : static_cast<double>(probes.bytes) /
                             static_cast<double>(probes.a.size());
  const auto kernel_pairs_per_sec = [&](double ms) {
    return ms > 0.0 ? static_cast<double>(probes.a.size()) / (ms / 1000.0)
                    : 0.0;
  };
  const double kernel_speedup =
      kernel_batched_ms > 0.0 ? kernel_scalar_ms / kernel_batched_ms : 0.0;
  std::cout << "levenshtein kernel: " << probes.a.size()
            << " stage-B probes, "
            << util::FormatDouble(bytes_per_pair, 1) << " bytes/pair; "
            << util::FormatDouble(kernel_pairs_per_sec(kernel_scalar_ms) /
                                      1e6, 2)
            << " Mpairs/s scalar -> "
            << util::FormatDouble(kernel_pairs_per_sec(kernel_batched_ms) /
                                      1e6, 2)
            << " Mpairs/s batched ("
            << util::FormatDouble(kernel_speedup, 2) << "x)\n\n";

  std::string json = "  \"batched\": {\n";
  json += "    \"dispatch\": \"" +
          std::string(util::SimdModeName(active)) + "\",\n";
  json += "    \"batch_width\": " +
          std::to_string(util::SimdBatchWidth(active)) + ",\n";
  json += "    \"candidates\": " + std::to_string(fixture.candidate_pairs) +
          ",\n";
  json += "    \"links\": " + std::to_string(reference.size()) + ",\n";
  json += "    \"scalar_ms\": " + util::FormatDouble(scalar.ms, 3) + ",\n";
  json += "    \"batch_baseline_isa_ms\": " +
          util::FormatDouble(layout.ms, 3) + ",\n";
  json += "    \"batched_ms\": " + util::FormatDouble(batched.ms, 3) + ",\n";
  json += "    \"pairs_per_sec_scalar\": " +
          util::FormatDouble(pairs_per_sec(scalar.ms), 1) + ",\n";
  json += "    \"pairs_per_sec_batched\": " +
          util::FormatDouble(pairs_per_sec(batched.ms), 1) + ",\n";
  json += "    \"speedup_vs_scalar\": " + util::FormatDouble(speedup, 3) +
          ",\n";
  json += "    \"cascade_batched_pairs\": " +
          std::to_string(batched.simd.cascade_batched_pairs) + ",\n";
  json += "    \"cascade_remainder_pairs\": " +
          std::to_string(batched.simd.cascade_remainder_pairs) + ",\n";
  json += "    \"kernel_batched_pairs\": " +
          std::to_string(batched.simd.kernel_batched_pairs) + ",\n";
  json += "    \"kernel_remainder_pairs\": " +
          std::to_string(batched.simd.kernel_remainder_pairs) + ",\n";
  json += "    \"kernel\": {\n";
  json += "      \"probe_pairs\": " + std::to_string(probes.a.size()) +
          ",\n";
  json += "      \"bytes_per_pair\": " +
          util::FormatDouble(bytes_per_pair, 2) + ",\n";
  json += "      \"scalar_ms\": " + util::FormatDouble(kernel_scalar_ms, 3) +
          ",\n";
  json += "      \"batched_ms\": " +
          util::FormatDouble(kernel_batched_ms, 3) + ",\n";
  json += "      \"pairs_per_sec_scalar\": " +
          util::FormatDouble(kernel_pairs_per_sec(kernel_scalar_ms), 1) +
          ",\n";
  json += "      \"pairs_per_sec_batched\": " +
          util::FormatDouble(kernel_pairs_per_sec(kernel_batched_ms), 1) +
          ",\n";
  json += "      \"speedup_vs_scalar\": " +
          util::FormatDouble(kernel_speedup, 3) + "\n    }\n  },\n";
  return json;
}

// Thread-count sweep of the full cached pipeline (cache build included),
// recorded to BENCH_linking.json. Oversubscribed points (beyond the
// hardware) are flagged in the JSON; the morsel scheduler keeps them
// productive instead of clamping them away.
void PrintThreadSweepReport(const std::string& pipeline_json) {
  const Fixture& fixture = GetFixture();
  std::cout << "=== E6b: cached pipeline thread-count sweep ("
            << fixture.candidates.size()
            << " candidates, hardware_concurrency = "
            << std::thread::hardware_concurrency() << ") ===\n";
  util::TextTable table(
      {"threads", "total (ms)", "build (ms)", "run (ms)", "speedup vs 1"});
  std::vector<ThreadSweepPoint> points;
  double serial_ms = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    CachedTimings best = TimeCachedOnce(fixture, threads);  // warm-up
    const util::SchedulerTotals sched_before = util::GlobalSchedulerTotals();
    const util::SimdTotals simd_before = util::GlobalSimdTotals();
    for (int rep = 0; rep < 3; ++rep) {
      const CachedTimings t = TimeCachedOnce(fixture, threads);
      if (t.total_ms() < best.total_ms()) best = t;
    }
    const util::SchedulerTotals sched =
        util::GlobalSchedulerTotals().Minus(sched_before);
    // All-zero on this sweep by design: the batch cascade is a streaming
    // feature, so a nonzero count here would flag a layering regression.
    const util::SimdTotals simd = util::GlobalSimdTotals().Minus(simd_before);
    if (threads == 1) serial_ms = best.total_ms();
    points.push_back({threads, best.total_ms(), sched, simd});
    table.AddRow({std::to_string(threads),
                  util::FormatDouble(best.total_ms(), 1),
                  util::FormatDouble(best.build_ms, 1),
                  util::FormatDouble(best.run_ms, 1),
                  serial_ms > 0.0
                      ? util::FormatDouble(serial_ms / best.total_ms(), 2) +
                            "x"
                      : "-"});
  }
  WriteThreadSweepJson("linking",
                       "Cached linking pipeline on the paper-scale corpus",
                       points, pipeline_json);
  std::cout << table.ToText()
            << "(identical links at every thread count; trajectory written "
               "to BENCH_linking.json)\n\n";
}

void BM_ScoreReferencePair(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  const auto& candidates = fixture.candidates;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& pair = candidates[i % candidates.size()];
    benchmark::DoNotOptimize(fixture.matcher.Score(
        fixture.dataset->external_items[pair.external_index],
        fixture.dataset->catalog_items[pair.local_index]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoreReferencePair);

void BM_ScoreCachedPair(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  const bool use_memo = state.range(0) != 0;
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      fixture.dataset->external_items, fixture.matcher,
      linking::FeatureCache::Side::kExternal, &dict, 1);
  const auto local = linking::FeatureCache::Build(
      fixture.dataset->catalog_items, fixture.matcher,
      linking::FeatureCache::Side::kLocal, &dict, 1);
  linking::ScoreMemo memo;
  const auto& candidates = fixture.candidates;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& pair = candidates[i % candidates.size()];
    benchmark::DoNotOptimize(fixture.matcher.ScoreCached(
        external, pair.external_index, local, pair.local_index,
        use_memo ? &memo : nullptr));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoreCachedPair)
    ->Arg(0)   // no memo: pure dense-id scoring
    ->Arg(1);  // with memo: steady-state catalog-value reuse

void BM_CacheBuild(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  for (auto _ : state) {
    linking::FeatureDictionary dict;
    const auto external = linking::FeatureCache::Build(
        fixture.dataset->external_items, fixture.matcher,
        linking::FeatureCache::Side::kExternal, &dict, 1);
    const auto local = linking::FeatureCache::Build(
        fixture.dataset->catalog_items, fixture.matcher,
        linking::FeatureCache::Side::kLocal, &dict, 1);
    benchmark::DoNotOptimize(local.num_items());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fixture.dataset->external_items.size() +
                                fixture.dataset->catalog_items.size()));
}
BENCHMARK(BM_CacheBuild)->Unit(benchmark::kMillisecond);

void BM_RunCachedThreads(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      fixture.dataset->external_items, fixture.matcher,
      linking::FeatureCache::Side::kExternal, &dict, 1);
  const auto local = linking::FeatureCache::Build(
      fixture.dataset->catalog_items, fixture.matcher,
      linking::FeatureCache::Side::kLocal, &dict, 1);
  const linking::Linker linker(&fixture.matcher, kThreshold);
  for (auto _ : state) {
    const auto links =
        linker.RunCached(external, local, fixture.candidates, nullptr,
                         threads);
    benchmark::DoNotOptimize(links.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fixture.candidates.size()));
}
BENCHMARK(BM_RunCachedThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Same workload as BM_RunCachedThreads through the streaming path: the
// blocker's inverted index replaces the materialized candidate vector and
// the filter cascade runs ahead of the scorer.
void BM_RunStreamingThreads(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      fixture.dataset->external_items, fixture.matcher,
      linking::FeatureCache::Side::kExternal, &dict, 1);
  const auto local = linking::FeatureCache::Build(
      fixture.dataset->catalog_items, fixture.matcher,
      linking::FeatureCache::Side::kLocal, &dict, 1);
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  const auto index = blocker.BuildIndex(fixture.dataset->external_items,
                                        fixture.dataset->catalog_items);
  const linking::StreamingLinker streaming(&fixture.matcher, kThreshold);
  for (auto _ : state) {
    const auto links =
        streaming.Run(*index, external, local, nullptr, threads);
    benchmark::DoNotOptimize(links.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fixture.candidates.size()));
}
BENCHMARK(BM_RunStreamingThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The filter cascade over every candidate run: arg 0 is the per-pair
// scalar Prune loop, arg 1 the batched PruneBatch under the active
// dispatch. Items = candidate pairs, bytes untouched (the cascade reads
// SoA lanes, not strings — that asymmetry is the point).
void BM_FilterCascade(benchmark::State& state) {
  const StreamingFixture& fixture = GetStreamingFixture();
  const linking::FilterCascade cascade(&fixture.matcher, kThreshold);
  const bool batch = state.range(0) != 0;
  const util::ScopedSimdMode scoped(batch ? util::ActiveSimdMode()
                                          : util::SimdMode::kOff);
  linking::FilterBatchScratch scratch;
  std::vector<std::size_t> run;
  for (auto _ : state) {
    linking::FilterStats stats;
    for (std::size_t e = 0; e < fixture.index->num_external(); ++e) {
      fixture.index->CandidatesOf(e, &run);
      if (run.empty()) continue;
      if (batch) {
        cascade.PruneBatch(fixture.external, e, fixture.local, run.data(),
                           run.size(), &stats, &scratch);
      } else {
        for (const std::size_t local : run) {
          cascade.Prune(fixture.external, e, fixture.local, local, &stats);
        }
      }
    }
    benchmark::DoNotOptimize(stats.pairs_pruned);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fixture.candidate_pairs));
}
BENCHMARK(BM_FilterCascade)
    ->Arg(0)   // per-pair scalar cascade
    ->Arg(1)   // batched SoA cascade, active dispatch
    ->Unit(benchmark::kMillisecond);

// The bounded-Levenshtein probe kernel on the harvested stage-B probe
// set: arg 0 runs the batch entry point with batching off (single-pair
// Myers per probe), arg 1 under the active dispatch (interleaved lanes).
// bytes_per_second is the roofline axis: bytes actually read per probe.
void BM_BoundedLevenshteinBatch(benchmark::State& state) {
  const ProbeSet& probes = GetProbeSet();
  const util::ScopedSimdMode scoped(state.range(0) != 0
                                        ? util::ActiveSimdMode()
                                        : util::SimdMode::kOff);
  std::vector<std::size_t> out(probes.a.size());
  for (auto _ : state) {
    text::BoundedLevenshteinDistanceBatch(probes.a.data(), probes.b.data(),
                                          probes.caps.data(),
                                          probes.a.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(probes.a.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probes.bytes));
}
BENCHMARK(BM_BoundedLevenshteinBatch)
    ->Arg(0)   // single-pair Myers per probe
    ->Arg(1)   // interleaved lanes, active dispatch
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::ApplyPinningFromEnv();
  std::string pipeline_json = rulelink::bench::PrintCachedPipelineReport();
  pipeline_json += rulelink::bench::PrintStreamingReport();
  pipeline_json += rulelink::bench::PrintBatchedReport();
  rulelink::bench::PrintThreadSweepReport(pipeline_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
