// Experiment E6: the linking hot path. The paper's rules shrink the
// comparison space; this bench measures what each surviving comparison
// costs. The reference path (ItemMatcher::Score) re-tokenizes and
// re-bigrams both value strings for every candidate pair; the cached
// pipeline builds per-source FeatureCaches once and streams the
// candidates through ItemMatcher::ScoreCached — sort-merge token measures
// over dense ids, measure dispatch hoisted out of the pair loop, and a
// per-worker (value, value, measure) memo that exploits how heavily
// catalog values repeat. Links are byte-identical by construction (see
// linking_cached_differential_test); this binary records the wall-time
// and memo economics to BENCH_linking.json.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "blocking/standard_blocking.h"
#include "linking/evaluation.h"
#include "linking/feature_cache.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/streaming_linker.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

constexpr double kThreshold = 0.6;

// The matcher the cache is built for: token and bigram measures on the
// part number (sort-merges over dense ids once cached), Monge-Elkan and
// Jaro-Winkler on the manufacturer name, whose values repeat across the
// catalog and so hit the score memo, and an exact check that collapses to
// a value-id comparison.
linking::ItemMatcher PipelineMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 2.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kExact, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kJaroWinkler, 0.5},
  });
}

struct Fixture {
  const datagen::Dataset* dataset = nullptr;
  linking::ItemMatcher matcher;
  std::vector<blocking::CandidatePair> candidates;

  Fixture() : matcher(PipelineMatcher()) {
    dataset = &PaperDataset();
    const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                            /*prefix_length=*/4);
    candidates =
        blocker.Generate(dataset->external_items, dataset->catalog_items);
  }
};

const Fixture& GetFixture() {
  static const Fixture* fixture = new Fixture();
  return *fixture;
}

struct CachedTimings {
  double build_ms = 0.0;  // dictionary + both caches
  double run_ms = 0.0;    // RunCached over the candidates
  double total_ms() const { return build_ms + run_ms; }
  linking::ScoreMemoStats memo;
  linking::LinkerStats stats;
  std::size_t links = 0;
  std::size_t distinct_values = 0;
  std::size_t dictionary_symbols = 0;
  std::size_t dictionary_bytes = 0;
};

CachedTimings TimeCachedOnce(const Fixture& fixture,
                             std::size_t num_threads) {
  CachedTimings timings;
  util::Stopwatch build_timer;
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      fixture.dataset->external_items, fixture.matcher,
      linking::FeatureCache::Side::kExternal, &dict, num_threads);
  const auto local = linking::FeatureCache::Build(
      fixture.dataset->catalog_items, fixture.matcher,
      linking::FeatureCache::Side::kLocal, &dict, num_threads);
  timings.build_ms = build_timer.ElapsedMillis();
  timings.distinct_values = dict.num_values();
  timings.dictionary_symbols = dict.num_symbols();
  timings.dictionary_bytes = dict.memory_bytes();

  const linking::Linker linker(&fixture.matcher, kThreshold);
  util::Stopwatch run_timer;
  const auto links =
      linker.RunCached(external, local, fixture.candidates, &timings.stats,
                       num_threads, &timings.memo);
  timings.run_ms = run_timer.ElapsedMillis();
  timings.links = links.size();
  return timings;
}

// The headline comparison: reference string-path Run vs cache build +
// RunCached, single-threaded (the per-comparison economics, not the
// parallel scaling — that is the sweep below). Warm-up once, then
// best-of-3, matching the learner bench protocol.
std::string PrintCachedPipelineReport() {
  const Fixture& fixture = GetFixture();
  const linking::Linker linker(&fixture.matcher, kThreshold);
  std::cout << "=== E6: cached vs reference linking pipeline ("
            << fixture.dataset->external_items.size() << " external x "
            << fixture.dataset->catalog_items.size() << " catalog, "
            << fixture.candidates.size() << " candidates) ===\n";

  linking::LinkerStats ref_stats;
  auto reference_links =
      linker.Run(fixture.dataset->external_items,
                 fixture.dataset->catalog_items, fixture.candidates,
                 &ref_stats, /*num_threads=*/1);  // warm-up
  double reference_ms = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    util::Stopwatch timer;
    reference_links =
        linker.Run(fixture.dataset->external_items,
                   fixture.dataset->catalog_items, fixture.candidates,
                   &ref_stats, /*num_threads=*/1);
    const double ms = timer.ElapsedMillis();
    if (rep == 0 || ms < reference_ms) reference_ms = ms;
  }

  CachedTimings cached = TimeCachedOnce(fixture, 1);  // warm-up
  for (int rep = 0; rep < 3; ++rep) {
    const CachedTimings t = TimeCachedOnce(fixture, 1);
    if (t.total_ms() < cached.total_ms()) cached = t;
  }
  RL_CHECK(cached.links == reference_links.size());
  // Both paths score every candidate pair; the cached path runs fewer
  // kernels because memo hits replay stored results.
  RL_CHECK(cached.stats.pairs_scored == ref_stats.pairs_scored);
  RL_CHECK(cached.stats.comparisons <= ref_stats.comparisons);

  const double speedup =
      cached.total_ms() > 0.0 ? reference_ms / cached.total_ms() : 0.0;
  util::TextTable table({"pipeline", "time (ms)", "pairs scored",
                         "kernels run", "links", "memo hit rate"});
  table.AddRow({"reference (string path)",
                util::FormatDouble(reference_ms, 1),
                std::to_string(ref_stats.pairs_scored),
                std::to_string(ref_stats.comparisons),
                std::to_string(reference_links.size()), "-"});
  table.AddRow({"cached (build + fused run)",
                util::FormatDouble(cached.total_ms(), 1),
                std::to_string(cached.stats.pairs_scored),
                std::to_string(cached.stats.comparisons),
                std::to_string(cached.links),
                util::FormatDouble(cached.memo.hit_rate() * 100.0, 1) +
                    "%"});
  std::cout << table.ToText() << "cache build: "
            << util::FormatDouble(cached.build_ms, 1) << " ms ("
            << cached.distinct_values << " distinct values, "
            << cached.dictionary_symbols << " symbols, "
            << util::FormatDouble(
                   static_cast<double>(cached.dictionary_bytes) / 1024.0, 1)
            << " KiB); speedup: " << util::FormatDouble(speedup, 2)
            << "x (identical links; differential-tested)\n\n";

  std::string json = "  \"pipeline\": {\n";
  json += "    \"candidates\": " +
          std::to_string(fixture.candidates.size()) + ",\n";
  json += "    \"pairs_scored\": " +
          std::to_string(cached.stats.pairs_scored) + ",\n";
  json += "    \"comparisons\": " +
          std::to_string(cached.stats.comparisons) + ",\n";
  json += "    \"links\": " + std::to_string(cached.links) + ",\n";
  json += "    \"reference_ms\": " + util::FormatDouble(reference_ms, 3) +
          ",\n";
  json += "    \"cache_build_ms\": " +
          util::FormatDouble(cached.build_ms, 3) + ",\n";
  json += "    \"cached_run_ms\": " + util::FormatDouble(cached.run_ms, 3) +
          ",\n";
  json += "    \"cached_total_ms\": " +
          util::FormatDouble(cached.total_ms(), 3) + ",\n";
  json += "    \"speedup_vs_reference\": " +
          util::FormatDouble(speedup, 3) + ",\n";
  json += "    \"memo_lookups\": " + std::to_string(cached.memo.lookups) +
          ",\n";
  json += "    \"memo_hits\": " + std::to_string(cached.memo.hits) + ",\n";
  json += "    \"memo_hit_rate\": " +
          util::FormatDouble(cached.memo.hit_rate(), 4) + ",\n";
  json += "    \"distinct_values\": " +
          std::to_string(cached.distinct_values) + ",\n";
  json += "    \"dictionary_symbols\": " +
          std::to_string(cached.dictionary_symbols) + ",\n";
  json += "    \"dictionary_bytes\": " +
          std::to_string(cached.dictionary_bytes) + "\n  },\n";
  return json;
}

// The matcher the streaming comparison is built for: a heavily weighted
// Levenshtein rule on the part number (length bound + capped bit-parallel
// probe), Dice/Jaccard/exact rules the count and id filters bound, and a
// Monge-Elkan rule on the manufacturer that has no cheap bound — the
// cascade treats it optimistically, and skipping its kernel is where a
// prune saves the most work.
linking::ItemMatcher StreamingMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 3.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kExact, 1.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 0.5},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 0.5},
  });
}

// E6c: streaming (inverted index + filter cascade) vs cached (materialize
// + RunCached), single-threaded, sharing one pair of feature caches so
// the difference is purely candidate handling and pruned kernel work.
// Links are byte-identical (differential-tested; re-checked here).
std::string PrintStreamingReport() {
  const datagen::Dataset& dataset = PaperDataset();
  const linking::ItemMatcher matcher = StreamingMatcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  std::cout << "=== E6c: streaming filter cascade vs cached linking ===\n";

  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      dataset.external_items, matcher, linking::FeatureCache::Side::kExternal,
      &dict, 1);
  const auto local = linking::FeatureCache::Build(
      dataset.catalog_items, matcher, linking::FeatureCache::Side::kLocal,
      &dict, 1);

  const linking::Linker cached_linker(&matcher, kThreshold);
  const linking::StreamingLinker streaming(&matcher, kThreshold);

  double cached_ms = 0.0;
  linking::LinkerStats cached_stats;
  std::vector<linking::Link> cached_links;
  for (int rep = -1; rep < 3; ++rep) {  // rep -1 is the warm-up
    util::Stopwatch timer;
    const auto candidates =
        blocker.Generate(dataset.external_items, dataset.catalog_items);
    auto links = cached_linker.RunCached(external, local, candidates,
                                         &cached_stats, /*num_threads=*/1);
    const double ms = timer.ElapsedMillis();
    if (rep < 0) continue;
    if (rep == 0 || ms < cached_ms) cached_ms = ms;
    cached_links = std::move(links);
  }

  double streaming_ms = 0.0;
  linking::LinkerStats streaming_stats;
  std::vector<linking::Link> streaming_links;
  for (int rep = -1; rep < 5; ++rep) {  // rep -1 is the warm-up
    util::Stopwatch timer;
    const auto index =
        blocker.BuildIndex(dataset.external_items, dataset.catalog_items);
    auto links = streaming.Run(*index, external, local, &streaming_stats,
                               /*num_threads=*/1);
    const double ms = timer.ElapsedMillis();
    if (rep < 0) continue;
    if (rep == 0 || ms < streaming_ms) streaming_ms = ms;
    streaming_links = std::move(links);
  }

  // The ISSUE's instrumentation budget: the same streaming run with a live
  // MetricsRegistry must stay within 2% of the uninstrumented one. The
  // registry is rebuilt per rep so every rep records the same work;
  // best-of-5 on both sides cancels scheduler noise.
  double instrumented_ms = 0.0;
  obs::MetricsSnapshot snapshot;
  for (int rep = -1; rep < 5; ++rep) {
    obs::MetricsRegistry registry;
    util::Stopwatch timer;
    const auto index =
        blocker.BuildIndex(dataset.external_items, dataset.catalog_items);
    auto links = streaming.Run(*index, external, local, nullptr,
                               /*num_threads=*/1, nullptr, &registry);
    const double ms = timer.ElapsedMillis();
    RL_CHECK(links.size() == streaming_links.size());
    if (rep < 0) continue;
    if (rep == 0 || ms < instrumented_ms) instrumented_ms = ms;
    snapshot = registry.Snapshot();
  }
  const double overhead_pct =
      streaming_ms > 0.0
          ? std::max(0.0, (instrumented_ms - streaming_ms) / streaming_ms) *
                100.0
          : 0.0;
  if (auto s = snapshot.WriteJsonFile("BENCH_linking_metrics.json");
      !s.ok()) {
    std::cerr << "metrics snapshot: " << s << "\n";
  }

  RL_CHECK(streaming_links.size() == cached_links.size());
  for (std::size_t i = 0; i < cached_links.size(); ++i) {
    RL_CHECK(streaming_links[i].external_index ==
                 cached_links[i].external_index &&
             streaming_links[i].local_index == cached_links[i].local_index &&
             streaming_links[i].score == cached_links[i].score);
  }
  RL_CHECK(streaming_stats.pairs_pruned_by_filter > 0);
  RL_CHECK(streaming_stats.pairs_scored +
               streaming_stats.pairs_pruned_by_filter ==
           cached_stats.pairs_scored);

  const double speedup = streaming_ms > 0.0 ? cached_ms / streaming_ms : 0.0;
  util::TextTable table({"pipeline", "time (ms)", "pairs scored",
                         "pruned", "kernels run", "links"});
  table.AddRow({"cached (materialize + RunCached)",
                util::FormatDouble(cached_ms, 1),
                std::to_string(cached_stats.pairs_scored), "0",
                std::to_string(cached_stats.comparisons),
                std::to_string(cached_links.size())});
  table.AddRow({"streaming (index + cascade)",
                util::FormatDouble(streaming_ms, 1),
                std::to_string(streaming_stats.pairs_scored),
                std::to_string(streaming_stats.pairs_pruned_by_filter),
                std::to_string(streaming_stats.comparisons),
                std::to_string(streaming_links.size())});
  std::cout << table.ToText() << "prunes by filter: length="
            << streaming_stats.pruned_by_length
            << ", token count=" << streaming_stats.pruned_by_token_count
            << ", exact=" << streaming_stats.pruned_by_exact
            << ", distance cap=" << streaming_stats.pruned_by_distance_cap
            << "; peak candidate run=" << streaming_stats.peak_candidate_run
            << "\nspeedup: " << util::FormatDouble(speedup, 2)
            << "x (identical links; differential-tested)\n"
            << "instrumentation overhead: "
            << util::FormatDouble(overhead_pct, 2)
            << "% (snapshot written to BENCH_linking_metrics.json)\n\n";

  std::string json = "  \"streaming\": {\n";
  json += "    \"candidates\": " +
          std::to_string(cached_stats.pairs_scored) + ",\n";
  json += "    \"pairs_scored\": " +
          std::to_string(streaming_stats.pairs_scored) + ",\n";
  json += "    \"pairs_pruned_by_filter\": " +
          std::to_string(streaming_stats.pairs_pruned_by_filter) + ",\n";
  json += "    \"pruned_by_length\": " +
          std::to_string(streaming_stats.pruned_by_length) + ",\n";
  json += "    \"pruned_by_token_count\": " +
          std::to_string(streaming_stats.pruned_by_token_count) + ",\n";
  json += "    \"pruned_by_exact\": " +
          std::to_string(streaming_stats.pruned_by_exact) + ",\n";
  json += "    \"pruned_by_distance_cap\": " +
          std::to_string(streaming_stats.pruned_by_distance_cap) + ",\n";
  json += "    \"peak_candidate_run\": " +
          std::to_string(streaming_stats.peak_candidate_run) + ",\n";
  json += "    \"links\": " + std::to_string(streaming_links.size()) + ",\n";
  json += "    \"cached_ms\": " + util::FormatDouble(cached_ms, 3) + ",\n";
  json += "    \"streaming_ms\": " + util::FormatDouble(streaming_ms, 3) +
          ",\n";
  json += "    \"speedup_vs_cached\": " + util::FormatDouble(speedup, 3) +
          ",\n";
  json += "    \"instrumented_ms\": " +
          util::FormatDouble(instrumented_ms, 3) + ",\n";
  json += "    \"instrumentation_overhead_pct\": " +
          util::FormatDouble(overhead_pct, 3) + "\n  },\n";
  return json;
}

// Thread-count sweep of the full cached pipeline (cache build included),
// recorded to BENCH_linking.json. Oversubscribed points (beyond the
// hardware) are flagged in the JSON; the morsel scheduler keeps them
// productive instead of clamping them away.
void PrintThreadSweepReport(const std::string& pipeline_json) {
  const Fixture& fixture = GetFixture();
  std::cout << "=== E6b: cached pipeline thread-count sweep ("
            << fixture.candidates.size()
            << " candidates, hardware_concurrency = "
            << std::thread::hardware_concurrency() << ") ===\n";
  util::TextTable table(
      {"threads", "total (ms)", "build (ms)", "run (ms)", "speedup vs 1"});
  std::vector<ThreadSweepPoint> points;
  double serial_ms = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    CachedTimings best = TimeCachedOnce(fixture, threads);  // warm-up
    const util::SchedulerTotals sched_before = util::GlobalSchedulerTotals();
    for (int rep = 0; rep < 3; ++rep) {
      const CachedTimings t = TimeCachedOnce(fixture, threads);
      if (t.total_ms() < best.total_ms()) best = t;
    }
    const util::SchedulerTotals sched =
        util::GlobalSchedulerTotals().Minus(sched_before);
    if (threads == 1) serial_ms = best.total_ms();
    points.push_back({threads, best.total_ms(), sched});
    table.AddRow({std::to_string(threads),
                  util::FormatDouble(best.total_ms(), 1),
                  util::FormatDouble(best.build_ms, 1),
                  util::FormatDouble(best.run_ms, 1),
                  serial_ms > 0.0
                      ? util::FormatDouble(serial_ms / best.total_ms(), 2) +
                            "x"
                      : "-"});
  }
  WriteThreadSweepJson("linking",
                       "Cached linking pipeline on the paper-scale corpus",
                       points, pipeline_json);
  std::cout << table.ToText()
            << "(identical links at every thread count; trajectory written "
               "to BENCH_linking.json)\n\n";
}

void BM_ScoreReferencePair(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  const auto& candidates = fixture.candidates;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& pair = candidates[i % candidates.size()];
    benchmark::DoNotOptimize(fixture.matcher.Score(
        fixture.dataset->external_items[pair.external_index],
        fixture.dataset->catalog_items[pair.local_index]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoreReferencePair);

void BM_ScoreCachedPair(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  const bool use_memo = state.range(0) != 0;
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      fixture.dataset->external_items, fixture.matcher,
      linking::FeatureCache::Side::kExternal, &dict, 1);
  const auto local = linking::FeatureCache::Build(
      fixture.dataset->catalog_items, fixture.matcher,
      linking::FeatureCache::Side::kLocal, &dict, 1);
  linking::ScoreMemo memo;
  const auto& candidates = fixture.candidates;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& pair = candidates[i % candidates.size()];
    benchmark::DoNotOptimize(fixture.matcher.ScoreCached(
        external, pair.external_index, local, pair.local_index,
        use_memo ? &memo : nullptr));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ScoreCachedPair)
    ->Arg(0)   // no memo: pure dense-id scoring
    ->Arg(1);  // with memo: steady-state catalog-value reuse

void BM_CacheBuild(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  for (auto _ : state) {
    linking::FeatureDictionary dict;
    const auto external = linking::FeatureCache::Build(
        fixture.dataset->external_items, fixture.matcher,
        linking::FeatureCache::Side::kExternal, &dict, 1);
    const auto local = linking::FeatureCache::Build(
        fixture.dataset->catalog_items, fixture.matcher,
        linking::FeatureCache::Side::kLocal, &dict, 1);
    benchmark::DoNotOptimize(local.num_items());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fixture.dataset->external_items.size() +
                                fixture.dataset->catalog_items.size()));
}
BENCHMARK(BM_CacheBuild)->Unit(benchmark::kMillisecond);

void BM_RunCachedThreads(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      fixture.dataset->external_items, fixture.matcher,
      linking::FeatureCache::Side::kExternal, &dict, 1);
  const auto local = linking::FeatureCache::Build(
      fixture.dataset->catalog_items, fixture.matcher,
      linking::FeatureCache::Side::kLocal, &dict, 1);
  const linking::Linker linker(&fixture.matcher, kThreshold);
  for (auto _ : state) {
    const auto links =
        linker.RunCached(external, local, fixture.candidates, nullptr,
                         threads);
    benchmark::DoNotOptimize(links.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fixture.candidates.size()));
}
BENCHMARK(BM_RunCachedThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Same workload as BM_RunCachedThreads through the streaming path: the
// blocker's inverted index replaces the materialized candidate vector and
// the filter cascade runs ahead of the scorer.
void BM_RunStreamingThreads(benchmark::State& state) {
  const Fixture& fixture = GetFixture();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      fixture.dataset->external_items, fixture.matcher,
      linking::FeatureCache::Side::kExternal, &dict, 1);
  const auto local = linking::FeatureCache::Build(
      fixture.dataset->catalog_items, fixture.matcher,
      linking::FeatureCache::Side::kLocal, &dict, 1);
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  const auto index = blocker.BuildIndex(fixture.dataset->external_items,
                                        fixture.dataset->catalog_items);
  const linking::StreamingLinker streaming(&fixture.matcher, kThreshold);
  for (auto _ : state) {
    const auto links =
        streaming.Run(*index, external, local, nullptr, threads);
    benchmark::DoNotOptimize(links.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(fixture.candidates.size()));
}
BENCHMARK(BM_RunStreamingThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::ApplyPinningFromEnv();
  std::string pipeline_json = rulelink::bench::PrintCachedPipelineReport();
  pipeline_json += rulelink::bench::PrintStreamingReport();
  rulelink::bench::PrintThreadSweepReport(pipeline_json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
