// Experiment E3 (§5 lift discussion): how much of the naive |S_E| x |S_L|
// space the rules prune. The paper argues that with average lift > 20, a
// confidence-1 rule divides the linkage space of an item by >= 5 even for
// a class holding 20% of the catalog; we measure the actual reduction as
// a function of the rule-confidence floor, plus the lift <-> subspace-size
// relation per rule.
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/classifier.h"
#include "core/linking_space.h"
#include "eval/report.h"
#include "ontology/instance_index.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

struct Fixture {
  const datagen::Dataset* dataset;
  rdf::Graph local_graph;
  std::unique_ptr<ontology::InstanceIndex> index;
  std::unique_ptr<core::RuleSet> rules;
  std::unique_ptr<core::RuleClassifier> classifier;
  std::unique_ptr<core::LinkingSpaceAnalyzer> analyzer;
};

Fixture& GetFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture;
    f->dataset = &PaperDataset();
    f->local_graph = datagen::BuildLocalGraph(*f->dataset);
    f->index = std::make_unique<ontology::InstanceIndex>(
        ontology::InstanceIndex::Build(f->local_graph,
                                       f->dataset->ontology()));
    auto rules =
        core::RuleLearner(PaperLearnerOptions()).Learn(PaperTrainingSet());
    RL_CHECK(rules.ok());
    f->rules = std::make_unique<core::RuleSet>(std::move(rules).value());
    f->classifier = std::make_unique<core::RuleClassifier>(
        f->rules.get(), &PaperSegmenter());
    f->analyzer = std::make_unique<core::LinkingSpaceAnalyzer>(
        f->classifier.get(), f->index.get());
    return f;
  }();
  return *fixture;
}

void PrintConfidenceFloorSweep() {
  Fixture& f = GetFixture();
  std::cout << "=== E3: linking-space reduction vs confidence floor ===\n"
            << "(unclassified items fall back to the whole catalog)\n";
  util::TextTable table({"min conf.", "classified", "reduced pairs",
                         "reduction", "mean subspace", "division factor"});
  for (double min_conf : {1.0, 0.8, 0.6, 0.4, 0.0}) {
    const auto report =
        f.analyzer->Analyze(f.dataset->external_items, min_conf,
                            core::UnclassifiedPolicy::kCompareAll);
    table.AddRow(
        {util::FormatDouble(min_conf, 1),
         std::to_string(report.classified_items),
         std::to_string(report.reduced_pairs),
         util::FormatPercent(report.reduction_ratio),
         util::FormatPercent(report.mean_subspace_fraction, 2),
         report.mean_subspace_fraction > 0
             ? util::FormatDouble(1.0 / report.mean_subspace_fraction, 1) + "x"
             : "-"});
  }
  std::cout << table.ToText()
            << "(paper: lift > 20 at every threshold; a confidence-1 rule "
               "divides an item's space by >= 5 even for a 20% class)\n\n";
}

void PrintLiftVsSubspace() {
  Fixture& f = GetFixture();
  std::cout << "=== E3b: per-rule lift vs subspace fraction ===\n";
  util::TextTable table(
      {"rule band", "#rules", "avg lift", "avg class extent / |S_L|",
       "avg division factor"});
  const double local_size =
      static_cast<double>(f.index->instances().size());
  const double bounds[][2] = {
      {1.0, 2.0}, {0.8, 1.0}, {0.6, 0.8}, {0.4, 0.6}};
  for (const auto& band : bounds) {
    double lift_sum = 0, fraction_sum = 0;
    std::size_t count = 0;
    for (const auto* rule : f.rules->InConfidenceBand(band[0], band[1])) {
      lift_sum += rule->lift;
      fraction_sum +=
          static_cast<double>(f.index->TransitiveExtentSize(rule->cls)) /
          local_size;
      ++count;
    }
    if (count == 0) {
      table.AddRow({util::FormatDouble(band[0], 1), "0", "-", "-", "-"});
      continue;
    }
    const double avg_fraction = fraction_sum / static_cast<double>(count);
    table.AddRow({util::FormatDouble(band[0], 1), std::to_string(count),
                  util::FormatDouble(lift_sum / count, 1),
                  util::FormatPercent(avg_fraction, 2),
                  util::FormatDouble(1.0 / avg_fraction, 1) + "x"});
  }
  std::cout << table.ToText() << "\n";
}

// Thread-count sweep over the candidate-scoring / rule-application path:
// Analyze classifies every external item and unions its subspace extents.
// Recorded to BENCH_linking_space.json (see bench_learning for caveats on
// single-core hosts).
void PrintThreadSweepReport() {
  Fixture& f = GetFixture();
  std::cout << "=== E3c: linking-space thread-count sweep (|S_E| = "
            << f.dataset->external_items.size()
            << ", hardware_concurrency = "
            << std::thread::hardware_concurrency() << ") ===\n";
  util::TextTable table({"threads", "analyze time (ms)", "speedup vs 1"});
  std::vector<ThreadSweepPoint> points;
  double serial_ms = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    // Warm-up, then best-of-3.
    auto warm = f.analyzer->Analyze(f.dataset->external_items, 0.4,
                                    core::UnclassifiedPolicy::kCompareAll,
                                    threads);
    benchmark::DoNotOptimize(warm);
    double best_ms = 0.0;
    const util::SchedulerTotals sched_before = util::GlobalSchedulerTotals();
    for (int rep = 0; rep < 3; ++rep) {
      util::Stopwatch timer;
      const auto report = f.analyzer->Analyze(
          f.dataset->external_items, 0.4,
          core::UnclassifiedPolicy::kCompareAll, threads);
      const double ms = timer.ElapsedMillis();
      benchmark::DoNotOptimize(report);
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    const util::SchedulerTotals sched =
        util::GlobalSchedulerTotals().Minus(sched_before);
    if (threads == 1) serial_ms = best_ms;
    points.push_back({threads, best_ms, sched});
    table.AddRow({std::to_string(threads), util::FormatDouble(best_ms, 1),
                  serial_ms > 0.0
                      ? util::FormatDouble(serial_ms / best_ms, 2) + "x"
                      : "-"});
  }
  WriteThreadSweepJson("linking_space",
                       "Analyze the full external source at conf >= 0.4",
                       points);
  std::cout << table.ToText()
            << "(identical reports at every thread count; trajectory "
               "written to BENCH_linking_space.json)\n\n";
}

void BM_AnalyzeLinkingSpace(benchmark::State& state) {
  Fixture& f = GetFixture();
  const double min_conf = static_cast<double>(state.range(0)) / 10.0;
  for (auto _ : state) {
    const auto report =
        f.analyzer->Analyze(f.dataset->external_items, min_conf,
                            core::UnclassifiedPolicy::kSkip);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.dataset->external_items.size()));
}
BENCHMARK(BM_AnalyzeLinkingSpace)
    ->Arg(10)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SubspaceCandidates(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto& items = f.dataset->external_items;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto candidates =
        f.analyzer->Candidates(items[i % items.size()], 0.4);
    benchmark::DoNotOptimize(candidates);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubspaceCandidates);

// The thread-count axis of the rule-application / scoring path.
void BM_AnalyzeThreads(benchmark::State& state) {
  Fixture& f = GetFixture();
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto report = f.analyzer->Analyze(
        f.dataset->external_items, 0.4,
        core::UnclassifiedPolicy::kCompareAll, threads);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(f.dataset->external_items.size()));
}
BENCHMARK(BM_AnalyzeThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::ApplyPinningFromEnv();
  rulelink::bench::PrintConfidenceFloorSweep();
  rulelink::bench::PrintLiftVsSubspace();
  rulelink::bench::PrintThreadSweepReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
