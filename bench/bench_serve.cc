// Concurrent-replay throughput for the resident serving engine
// (DESIGN.md §5i). A linking::ServeSnapshot over a workload catalog is
// published once; N closed-loop client threads (one ServeEngine::Session
// each) drain the PR 6 query stream through Session::Query and the bench
// reports QPS plus p50/p95/p99/p999 per-request latency from merged log2
// obs::Histograms, with the per-point scheduler and SIMD counter deltas
// the other sweep benches carry. Every served answer is checked against a
// batch StreamingLinker::Run over the same catalog — byte-identical links,
// at every client count.
//
// The swap-under-load point then republishes fresh snapshots of the same
// catalog while clients keep querying: every answer must still match the
// batch reference (each query is served from exactly one generation, and
// all generations here serve the same catalog), reader_blocks must stay
// zero (readers never wait on a writer), and after the clients drain,
// every retired snapshot must be reclaimed (no leaks). Results land in
// BENCH_serve.json.
//
// Sweep selection: RULELINK_SERVE_SWEEP = "smoke" (tiny, Debug smoke),
// unset or "ci" (25k catalog), "full" (adds a 200k-catalog point's worth
// of queries).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "blocking/standard_blocking.h"
#include "datagen/key_chooser.h"
#include "datagen/workload.h"
#include "linking/feature_cache.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/serve_engine.h"
#include "linking/streaming_linker.h"
#include "obs/metrics.h"
#include "util/epoch.h"
#include "util/simd.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace rulelink::bench {
namespace {

constexpr double kThreshold = 0.6;

// Same rule set as the request-replay bench: a cascade-boundable
// Levenshtein rule, token/bigram/exact part-number rules, and a
// Monge-Elkan manufacturer rule with no cheap bound.
std::vector<linking::AttributeRule> ServeRules() {
  return {
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 3.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kExact, 1.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 0.5},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 0.5},
  };
}

struct ServeWorkload {
  std::vector<core::Item> catalog;
  std::vector<core::Item> queries;
  // Batch reference answer per query: the links StreamingLinker::Run
  // emits for that external item (<= 1 under best-per-external).
  std::vector<std::vector<linking::Link>> expected;
};

ServeWorkload BuildWorkload(std::size_t catalog_size, std::size_t queries) {
  ServeWorkload w;
  datagen::WorkloadConfig catalog_config;
  catalog_config.catalog_size = catalog_size;
  auto catalog_result = datagen::GenerateWorkloadCatalog(catalog_config);
  RL_CHECK(catalog_result.ok()) << catalog_result.status();
  datagen::WorkloadCatalog catalog = std::move(catalog_result).value();

  datagen::QueryStreamConfig query_config;
  query_config.num_queries = queries;
  query_config.chooser.distribution = datagen::Distribution::kZipfian;
  query_config.typo_prob = 0.08;
  query_config.truncate_prob = 0.05;
  auto stream_result = datagen::GenerateQueryStream(catalog, query_config);
  RL_CHECK(stream_result.ok()) << stream_result.status();
  w.queries = std::move(stream_result).value().queries;
  w.catalog = std::move(catalog.items);

  // The batch reference the served answers must reproduce byte for byte.
  const linking::ItemMatcher matcher(ServeRules());
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      w.queries, matcher, linking::FeatureCache::Side::kExternal, &dict);
  const auto local = linking::FeatureCache::Build(
      w.catalog, matcher, linking::FeatureCache::Side::kLocal, &dict);
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  const auto index = blocker.BuildIndex(w.queries, w.catalog);
  const linking::StreamingLinker streaming(&matcher, kThreshold);
  const auto links = streaming.Run(*index, external, local);
  w.expected.resize(w.queries.size());
  for (const linking::Link& link : links) {
    w.expected[link.external_index].push_back(link);
  }
  return w;
}

std::unique_ptr<linking::ServeSnapshot> MakeSnapshot(
    const ServeWorkload& w, const blocking::StandardBlocker& blocker) {
  return std::make_unique<linking::ServeSnapshot>(
      w.catalog, linking::ItemMatcher(ServeRules()), kThreshold,
      linking::Linker::Strategy::kBestPerExternal, blocker);
}

bool SameLinks(const std::vector<linking::Link>& a,
               const std::vector<linking::Link>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].external_index != b[i].external_index ||
        a[i].local_index != b[i].local_index || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

struct PointResult {
  std::size_t clients = 0;
  double seconds = 0.0;
  std::size_t queries = 0;
  std::size_t pairs_scored = 0;
  std::size_t mismatches = 0;
  obs::Histogram latency_ns;
  util::SchedulerTotals scheduler;
  util::SimdTotals simd;
};

// One closed-loop replay: `clients` sessions race an atomic ticket over
// the query stream, each checking its answer against the batch reference
// in place. Returns merged latency and cumulative counters.
PointResult ReplayPoint(linking::ServeEngine* engine, const ServeWorkload& w,
                        std::size_t clients) {
  using ClockNs = std::chrono::steady_clock;
  PointResult result;
  result.clients = clients;
  result.queries = w.queries.size();

  const util::SchedulerTotals sched_before = util::GlobalSchedulerTotals();
  const util::SimdTotals simd_before = util::GlobalSimdTotals();
  std::atomic<std::size_t> ticket{0};
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> pairs{0};
  std::vector<obs::Histogram> latencies(clients);
  util::Stopwatch timer;
  auto client = [&](std::size_t c) {
    linking::ServeEngine::Session session(engine);
    std::vector<linking::Link> answer;
    std::size_t q;
    std::size_t bad = 0;
    while ((q = ticket.fetch_add(1, std::memory_order_relaxed)) <
           w.queries.size()) {
      const ClockNs::time_point start = ClockNs::now();
      session.Query(w.queries[q], &answer, q);
      const auto nanos =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              ClockNs::now() - start)
              .count();
      latencies[c].Observe(static_cast<std::uint64_t>(nanos));
      if (!SameLinks(answer, w.expected[q])) ++bad;
    }
    mismatches.fetch_add(bad, std::memory_order_relaxed);
    pairs.fetch_add(session.pairs_scored(), std::memory_order_relaxed);
    // Sessions bypass StreamingLinker::Run's per-run fold, so fold their
    // cascade counts into the process totals here.
    util::AddSimdCascadePairs(session.scratch().filter.batched_pairs,
                              session.scratch().filter.remainder_pairs);
  };
  if (clients == 1) {
    client(0);
  } else {
    std::vector<std::thread> workers;
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back(client, c);
    }
    for (std::thread& worker : workers) worker.join();
  }
  result.seconds = timer.ElapsedSeconds();
  for (const obs::Histogram& h : latencies) result.latency_ns.Merge(h);
  result.mismatches = mismatches.load(std::memory_order_relaxed);
  result.pairs_scored = pairs.load(std::memory_order_relaxed);
  result.scheduler = util::GlobalSchedulerTotals().Minus(sched_before);
  result.simd = util::GlobalSimdTotals().Minus(simd_before);
  return result;
}

struct SwapResult {
  std::size_t clients = 0;
  std::size_t swaps = 0;
  std::size_t queries_served = 0;
  std::size_t mismatches = 0;
  std::size_t wrong_generation = 0;
  double seconds = 0.0;
  obs::Histogram latency_ns;
  util::EpochStats epochs;
};

// Republishes fresh snapshots of the same catalog while clients keep
// replaying the stream: answers must stay byte-identical (every query is
// served from exactly one generation and every generation serves the same
// catalog), readers must never block, and once the clients drain every
// retired snapshot must have been reclaimed.
SwapResult SwapUnderLoad(const ServeWorkload& w, std::size_t clients,
                         std::size_t swaps) {
  using ClockNs = std::chrono::steady_clock;
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  linking::ServeEngine engine;
  engine.Publish(MakeSnapshot(w, blocker));

  SwapResult result;
  result.clients = clients;
  std::atomic<bool> done{false};
  std::atomic<std::size_t> served{0};
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> wrong_generation{0};
  std::vector<obs::Histogram> latencies(clients);
  util::Stopwatch timer;

  auto client = [&](std::size_t c) {
    linking::ServeEngine::Session session(&engine);
    std::vector<linking::Link> answer;
    std::size_t bad = 0, generations = 0, count = 0;
    // Keep replaying until the writer has published all its generations,
    // then finish the current pass so swaps always overlap live queries.
    while (true) {
      const bool final_pass = done.load(std::memory_order_acquire);
      for (std::size_t q = c; q < w.queries.size(); q += clients) {
        const ClockNs::time_point start = ClockNs::now();
        const std::uint64_t generation =
            session.Query(w.queries[q], &answer, q);
        const auto nanos =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                ClockNs::now() - start)
                .count();
        latencies[c].Observe(static_cast<std::uint64_t>(nanos));
        ++count;
        if (!SameLinks(answer, w.expected[q])) ++bad;
        if (generation < 1 || generation > swaps + 1) ++generations;
      }
      if (final_pass) break;
    }
    served.fetch_add(count, std::memory_order_relaxed);
    mismatches.fetch_add(bad, std::memory_order_relaxed);
    wrong_generation.fetch_add(generations, std::memory_order_relaxed);
  };
  std::vector<std::thread> workers;
  for (std::size_t c = 0; c < clients; ++c) workers.emplace_back(client, c);
  // Writer: rebuild + publish back-to-back. Snapshot construction (the
  // full feature build) is the natural pacing between swaps.
  for (std::size_t s = 0; s < swaps; ++s) {
    engine.Publish(MakeSnapshot(w, blocker));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  result.seconds = timer.ElapsedSeconds();

  engine.ReclaimRetired();
  result.swaps = swaps;
  result.queries_served = served.load(std::memory_order_relaxed);
  result.mismatches = mismatches.load(std::memory_order_relaxed);
  result.wrong_generation = wrong_generation.load(std::memory_order_relaxed);
  for (const obs::Histogram& h : latencies) result.latency_ns.Merge(h);
  result.epochs = engine.epoch_stats();
  return result;
}

double QuantileUs(const obs::Histogram& h, double q) {
  return h.ValueAtQuantile(q) / 1000.0;
}

struct PublishPoint {
  std::size_t catalog_size = 0;
  std::size_t delta_items = 0;
  double full_ms = 0.0;
  double delta_ms = 0.0;
  std::size_t mismatches = 0;
};

// Full-vs-delta publish latency (DESIGN.md §5j). For each catalog size N:
// a base snapshot of N items is published once, then a 1% append-only
// delta is published `reps` times (each onto the previous generation) and
// the best delta latency is compared against the best from-scratch
// rebuild of N + 1% items. A from-scratch snapshot of the delta engine's
// final catalog then serves a query subset side by side with the
// delta-built generation — answers must be byte-identical (the
// retirement/remap differential lives in serve_engine_test).
PublishPoint MeasureDeltaPublish(std::size_t catalog_size,
                                 std::size_t num_queries, int reps) {
  PublishPoint point;
  point.catalog_size = catalog_size;
  const std::size_t delta_items =
      std::max<std::size_t>(catalog_size / 100, 1);
  point.delta_items = delta_items;

  datagen::WorkloadConfig config;
  config.catalog_size =
      catalog_size + static_cast<std::size_t>(reps) * delta_items;
  auto catalog_result = datagen::GenerateWorkloadCatalog(config);
  RL_CHECK(catalog_result.ok()) << catalog_result.status();
  datagen::WorkloadCatalog catalog = std::move(catalog_result).value();
  datagen::QueryStreamConfig query_config;
  query_config.num_queries = num_queries;
  query_config.chooser.distribution = datagen::Distribution::kZipfian;
  query_config.typo_prob = 0.08;
  query_config.truncate_prob = 0.05;
  auto stream_result = datagen::GenerateQueryStream(catalog, query_config);
  RL_CHECK(stream_result.ok()) << stream_result.status();
  const std::vector<core::Item> queries =
      std::move(stream_result).value().queries;
  const std::vector<core::Item>& items = catalog.items;
  const auto strategy = linking::Linker::Strategy::kBestPerExternal;
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);

  // Full rebuilds of the first N + 1% items, best of `reps`.
  point.full_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<core::Item> full(
        items.begin(), items.begin() + catalog_size + delta_items);
    util::Stopwatch timer;
    const linking::ServeSnapshot snapshot(
        std::move(full), linking::ItemMatcher(ServeRules()), kThreshold,
        strategy, blocker);
    const double ms = timer.ElapsedMillis();
    if (rep == 0 || ms < point.full_ms) point.full_ms = ms;
  }

  // Delta publishes: 1% appended onto the resident engine's current
  // generation. Each rep extends the previous one, so every timed publish
  // interns new values past a frozen dictionary chain exactly as a
  // steady-state ingest would.
  linking::ServeEngine delta_engine;
  {
    std::vector<core::Item> base(items.begin(),
                                 items.begin() + catalog_size);
    delta_engine.Publish(std::make_unique<linking::ServeSnapshot>(
        std::move(base), linking::ItemMatcher(ServeRules()), kThreshold,
        strategy, blocker));
  }
  point.delta_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    linking::CatalogDelta delta;
    delta.appended.assign(
        items.begin() + catalog_size + rep * delta_items,
        items.begin() + catalog_size + (rep + 1) * delta_items);
    util::Stopwatch timer;
    delta_engine.PublishDelta(std::move(delta), blocker);
    const double ms = timer.ElapsedMillis();
    if (rep == 0 || ms < point.delta_ms) point.delta_ms = ms;
  }

  // Differential: from-scratch snapshot of the final catalog vs the
  // delta-built chain, byte for byte over a query subset.
  linking::ServeEngine full_engine;
  {
    std::vector<core::Item> final_items(
        items.begin(),
        items.begin() + catalog_size +
            static_cast<std::size_t>(reps) * delta_items);
    full_engine.Publish(std::make_unique<linking::ServeSnapshot>(
        std::move(final_items), linking::ItemMatcher(ServeRules()),
        kThreshold, strategy, blocker));
  }
  linking::ServeEngine::Session delta_session(&delta_engine);
  linking::ServeEngine::Session full_session(&full_engine);
  std::vector<linking::Link> delta_answer, full_answer;
  const std::size_t check = std::min<std::size_t>(queries.size(), 500);
  for (std::size_t q = 0; q < check; ++q) {
    delta_session.Query(queries[q], &delta_answer, q);
    full_session.Query(queries[q], &full_answer, q);
    if (!SameLinks(delta_answer, full_answer)) ++point.mismatches;
  }
  return point;
}

std::string SchedulerJson(const util::SchedulerTotals& s) {
  std::string json = "{\"loops\": " + std::to_string(s.loops) +
                     ", \"morsels\": " + std::to_string(s.morsels) +
                     ", \"steals\": " + std::to_string(s.steals) +
                     ", \"steal_failures\": " +
                     std::to_string(s.steal_failures) +
                     ", \"busy_micros\": " + std::to_string(s.busy_micros);
  if (s.hw.valid) {
    json += ", \"hw\": {\"cycles\": " + std::to_string(s.hw.cycles) +
            ", \"instructions\": " + std::to_string(s.hw.instructions) +
            ", \"llc_misses\": " + std::to_string(s.hw.llc_misses) + "}";
  }
  return json + "}";
}

std::string PointJson(const PointResult& r, double serial_qps) {
  const double qps =
      r.seconds > 0.0 ? static_cast<double>(r.queries) / r.seconds : 0.0;
  std::string json =
      "    {\"clients\": " + std::to_string(r.clients) + ",\n";
  json += "     \"queries\": " + std::to_string(r.queries) + ",\n";
  json += "     \"seconds\": " + util::FormatDouble(r.seconds, 4) + ",\n";
  json += "     \"qps\": " + util::FormatDouble(qps, 1) + ",\n";
  if (serial_qps > 0.0) {
    json += "     \"speedup_vs_1\": " +
            util::FormatDouble(qps / serial_qps, 3) + ",\n";
  }
  if (r.clients > std::thread::hardware_concurrency()) {
    json += "     \"oversubscribed\": true,\n";
  }
  json += "     \"mismatches\": " + std::to_string(r.mismatches) + ",\n";
  json += "     \"pairs_scored\": " + std::to_string(r.pairs_scored) + ",\n";
  json += "     \"p50_us\": " +
          util::FormatDouble(QuantileUs(r.latency_ns, 0.5), 3) + ",\n";
  json += "     \"p95_us\": " +
          util::FormatDouble(QuantileUs(r.latency_ns, 0.95), 3) + ",\n";
  json += "     \"p99_us\": " +
          util::FormatDouble(QuantileUs(r.latency_ns, 0.99), 3) + ",\n";
  json += "     \"p999_us\": " +
          util::FormatDouble(QuantileUs(r.latency_ns, 0.999), 3) + ",\n";
  json += "     \"max_us\": " +
          util::FormatDouble(
              static_cast<double>(r.latency_ns.max()) / 1000.0, 3) +
          ",\n";
  json += "     \"scheduler\": " + SchedulerJson(r.scheduler) + ",\n";
  json += "     \"simd\": {\"cascade_batched_pairs\": " +
          std::to_string(r.simd.cascade_batched_pairs) +
          ", \"cascade_remainder_pairs\": " +
          std::to_string(r.simd.cascade_remainder_pairs) +
          ", \"kernel_batched_pairs\": " +
          std::to_string(r.simd.kernel_batched_pairs) +
          ", \"kernel_remainder_pairs\": " +
          std::to_string(r.simd.kernel_remainder_pairs) + "}}";
  return json;
}

void RunServeSweep() {
  const char* env = std::getenv("RULELINK_SERVE_SWEEP");
  const std::string mode = env != nullptr ? env : "ci";
  std::size_t catalog_size = 25000;
  std::size_t queries = 4000;
  std::vector<std::size_t> client_counts = {1, 2, 4, 8};
  std::size_t swap_clients = 4;
  std::size_t swaps = 3;
  if (mode == "smoke") {
    catalog_size = 5000;
    queries = 1000;
    client_counts = {1, 2};
    swap_clients = 2;
    swaps = 2;
  } else if (mode == "full") {
    catalog_size = 200000;
    queries = 20000;
  }

  std::cout << "=== E10: resident serving engine, concurrent replay ("
            << catalog_size << " catalog, " << queries << " queries) ===\n";
  util::Stopwatch build_timer;
  const ServeWorkload w = BuildWorkload(catalog_size, queries);
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  linking::ServeEngine engine;
  engine.Publish(MakeSnapshot(w, blocker));
  const double build_ms = build_timer.ElapsedMillis();

  util::TextTable table({"clients", "qps", "speedup", "p50 (us)", "p95 (us)",
                         "p99 (us)", "p999 (us)", "mismatches"});
  std::string points_json;
  double serial_qps = 0.0;
  for (std::size_t i = 0; i < client_counts.size(); ++i) {
    const std::size_t clients = client_counts[i];
    ReplayPoint(&engine, w, clients);  // warm-up
    PointResult best = ReplayPoint(&engine, w, clients);
    for (int rep = 1; rep < 3; ++rep) {
      PointResult r = ReplayPoint(&engine, w, clients);
      if (r.seconds < best.seconds) best = std::move(r);
    }
    RL_CHECK(best.mismatches == 0)
        << best.mismatches << " served answers diverged from the batch run";
    const double qps =
        best.seconds > 0.0
            ? static_cast<double>(best.queries) / best.seconds
            : 0.0;
    if (clients == 1) serial_qps = qps;
    table.AddRow(
        {std::to_string(clients), util::FormatDouble(qps, 0),
         serial_qps > 0.0 ? util::FormatDouble(qps / serial_qps, 2) : "-",
         util::FormatDouble(QuantileUs(best.latency_ns, 0.5), 1),
         util::FormatDouble(QuantileUs(best.latency_ns, 0.95), 1),
         util::FormatDouble(QuantileUs(best.latency_ns, 0.99), 1),
         util::FormatDouble(QuantileUs(best.latency_ns, 0.999), 1),
         std::to_string(best.mismatches)});
    points_json += PointJson(best, serial_qps);
    points_json += i + 1 < client_counts.size() ? ",\n" : "\n";
  }

  const SwapResult swap = SwapUnderLoad(w, swap_clients, swaps);
  RL_CHECK(swap.mismatches == 0)
      << swap.mismatches << " answers diverged during snapshot swaps";
  RL_CHECK(swap.wrong_generation == 0);
  RL_CHECK(swap.epochs.reader_blocks == 0)
      << "readers blocked on a writer during swaps";
  RL_CHECK(swap.epochs.retired == swap.epochs.reclaimed &&
           swap.epochs.limbo == 0)
      << "retired snapshots leaked: retired " << swap.epochs.retired
      << ", reclaimed " << swap.epochs.reclaimed;

  // Delta-publish leg: full-vs-delta publish latency per catalog size.
  std::vector<std::size_t> publish_sizes = {10000, 100000};
  if (mode == "smoke") {
    publish_sizes = {10000};
  } else if (mode == "full") {
    publish_sizes = {10000, 100000, 1000000};
  }
  util::TextTable publish_table({"catalog", "delta items", "full (ms)",
                                 "delta (ms)", "speedup", "mismatches"});
  std::string publish_json;
  for (std::size_t i = 0; i < publish_sizes.size(); ++i) {
    const std::size_t size = publish_sizes[i];
    // One rep at the million-scale point: best-of-3 would triple several
    // full feature builds for a number the 100k point already gates.
    const PublishPoint p =
        MeasureDeltaPublish(size, /*num_queries=*/500,
                            /*reps=*/size >= 1000000 ? 1 : 3);
    RL_CHECK(p.mismatches == 0)
        << p.mismatches
        << " delta-served answers diverged from the from-scratch snapshot";
    const double speedup =
        p.delta_ms > 0.0 ? p.full_ms / p.delta_ms : 0.0;
    publish_table.AddRow({std::to_string(p.catalog_size),
                          std::to_string(p.delta_items),
                          util::FormatDouble(p.full_ms, 2),
                          util::FormatDouble(p.delta_ms, 2),
                          util::FormatDouble(speedup, 2),
                          std::to_string(p.mismatches)});
    publish_json += "    {\"catalog_size\": " + std::to_string(p.catalog_size) +
                    ", \"delta_items\": " + std::to_string(p.delta_items) +
                    ", \"full_ms\": " + util::FormatDouble(p.full_ms, 3) +
                    ", \"delta_ms\": " + util::FormatDouble(p.delta_ms, 3) +
                    ", \"speedup\": " + util::FormatDouble(speedup, 3) +
                    ", \"mismatches\": " + std::to_string(p.mismatches) + "}";
    publish_json += i + 1 < publish_sizes.size() ? ",\n" : "\n";
  }
  std::cout << "--- delta publish (1% append) vs full rebuild ---\n"
            << publish_table.ToText();

  const util::EpochStats epochs = engine.epoch_stats();
  std::cout << table.ToText() << "swap-under-load: " << swap.swaps
            << " swaps over " << swap.queries_served << " queries ("
            << swap.clients << " clients), 0 mismatches, reader blocks "
            << swap.epochs.reader_blocks << ", pin retries "
            << swap.epochs.pin_retries << ", retired "
            << swap.epochs.retired << " = reclaimed "
            << swap.epochs.reclaimed
            << "\n(served answers byte-identical to StreamingLinker::Run "
               "at every client count; written to BENCH_serve.json)\n\n";

  std::ofstream out("BENCH_serve.json");
  if (!out) return;
  out << "{\n  \"bench\": \"serve\",\n  \"sweep_mode\": \"" << mode
      << "\",\n  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency()
      << ",\n  \"catalog_size\": " << catalog_size
      << ",\n  \"queries\": " << queries << ",\n  \"threshold\": "
      << util::FormatDouble(kThreshold, 2)
      << ",\n  \"snapshot_build_ms\": " << util::FormatDouble(build_ms, 3)
      << ",\n  \"points\": [\n"
      << points_json << "  ],\n  \"swap\": {\"clients\": " << swap.clients
      << ", \"swaps\": " << swap.swaps
      << ", \"queries_served\": " << swap.queries_served
      << ", \"seconds\": " << util::FormatDouble(swap.seconds, 4)
      << ", \"qps\": "
      << util::FormatDouble(
             swap.seconds > 0.0
                 ? static_cast<double>(swap.queries_served) / swap.seconds
                 : 0.0,
             1)
      << ", \"mismatches\": " << swap.mismatches
      << ", \"p99_us\": "
      << util::FormatDouble(QuantileUs(swap.latency_ns, 0.99), 3)
      << ", \"pin_retries\": " << swap.epochs.pin_retries
      << ", \"reader_blocks\": " << swap.epochs.reader_blocks
      << ", \"retired\": " << swap.epochs.retired
      << ", \"reclaimed\": " << swap.epochs.reclaimed
      << ", \"limbo\": " << swap.epochs.limbo
      << "},\n  \"publish\": [\n"
      << publish_json << "  ],\n  \"epoch\": {\"pins\": " << epochs.pins
      << ", \"pin_retries\": " << epochs.pin_retries
      << ", \"reader_blocks\": " << epochs.reader_blocks << "}\n}\n";
}

}  // namespace
}  // namespace rulelink::bench

int main() {
  rulelink::bench::ApplyPinningFromEnv();
  rulelink::bench::RunServeSweep();
  return 0;
}
