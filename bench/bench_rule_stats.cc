// Experiment E2 (§5 in-text statistics): segmentation and rule-mining
// census — distinct segments, occurrences, selected occurrences, frequent
// classes, rule count, classes with rules — next to the published values,
// plus a support-threshold sweep showing how the rule count decays as th
// grows. Benchmarks time the segmentation pass.
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/conjunctive.h"
#include "eval/holdout.h"
#include "eval/tuner.h"
#include "eval/report.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

void PrintStatsReport() {
  core::LearnStats stats;
  auto rules =
      core::RuleLearner(PaperLearnerOptions()).Learn(PaperTrainingSet(),
                                                     &stats);
  RL_CHECK(rules.ok());
  std::cout << "=== E2: corpus statistics (paper section 5) ===\n"
            << eval::FormatLearnStats(stats, /*with_paper_reference=*/true)
            << "\n";
}

void PrintThresholdSweep() {
  std::cout << "=== E2b: support threshold sweep ===\n";
  util::TextTable table({"th", "freq. premises", "freq. classes", "#rules",
                         "classes w/ rules"});
  for (double th : {0.0005, 0.001, 0.002, 0.004, 0.008, 0.016}) {
    auto options = PaperLearnerOptions();
    options.support_threshold = th;
    core::LearnStats stats;
    auto rules = core::RuleLearner(options).Learn(PaperTrainingSet(), &stats);
    RL_CHECK(rules.ok());
    table.AddRow({util::FormatDouble(th, 4),
                  std::to_string(stats.frequent_premises),
                  std::to_string(stats.frequent_classes),
                  std::to_string(stats.num_rules),
                  std::to_string(stats.classes_with_rules)});
  }
  std::cout << table.ToText() << "\n";
}

void PrintSegmenterAblation() {
  std::cout << "=== E2c: segmentation scheme ablation ===\n";
  util::TextTable table({"segmenter", "distinct segs", "occurrences",
                         "#rules", "conf=1 rules"});
  const text::SeparatorSegmenter separator;
  const text::NGramSegmenter tri(3);
  const text::NGramSegmenter quad(4);
  const text::AlphaDigitSegmenter alpha_digit;
  const text::Segmenter* segmenters[] = {&separator, &tri, &quad,
                                         &alpha_digit};
  for (const text::Segmenter* segmenter : segmenters) {
    auto options = PaperLearnerOptions();
    options.segmenter = segmenter;
    core::LearnStats stats;
    auto rules = core::RuleLearner(options).Learn(PaperTrainingSet(), &stats);
    RL_CHECK(rules.ok());
    table.AddRow({segmenter->name(),
                  std::to_string(stats.distinct_segments),
                  std::to_string(stats.segment_occurrences),
                  std::to_string(stats.num_rules),
                  std::to_string(rules->WithMinConfidence(1.0).size())});
  }
  std::cout << table.ToText() << "\n";
}

void PrintHoldoutReport() {
  std::cout << "=== E2d: held-out generalization (the paper evaluates on "
               "TS itself; this is the train/test extension) ===\n";
  util::TextTable table({"setup", "#rules", "coverage", "precision",
                         "recall"});
  for (const auto& [label, min_conf] :
       {std::pair<const char*, double>{"80/20 split, all rules", 0.0},
        std::pair<const char*, double>{"80/20 split, conf >= 0.8", 0.8},
        std::pair<const char*, double>{"80/20 split, conf = 1.0", 1.0}}) {
    eval::HoldoutOptions options;
    options.segmenter = &PaperSegmenter();
    options.support_threshold = 0.002;
    options.min_confidence = min_conf;
    options.properties = {datagen::props::kPartNumber};
    auto result = eval::RunHoldout(PaperTrainingSet(), options);
    RL_CHECK(result.ok()) << result.status();
    table.AddRow({label, std::to_string(result->num_rules),
                  util::FormatPercent(result->coverage),
                  util::FormatPercent(result->precision),
                  util::FormatPercent(result->recall)});
  }
  {
    eval::HoldoutOptions options;
    options.segmenter = &PaperSegmenter();
    options.support_threshold = 0.002;
    options.properties = {datagen::props::kPartNumber};
    auto result = eval::RunCrossValidation(PaperTrainingSet(), options, 5);
    RL_CHECK(result.ok()) << result.status();
    table.AddRow({"5-fold cross-validation", std::to_string(result->num_rules),
                  util::FormatPercent(result->coverage),
                  util::FormatPercent(result->precision),
                  util::FormatPercent(result->recall)});
  }
  std::cout << table.ToText() << "\n";
}

void PrintConjunctiveReport() {
  std::cout << "=== E2e: conjunctive (2-premise, CBA-style) rules over "
               "partNumber x manufacturerName ===\n";
  util::TextTable table({"corpus", "1-premise", "2-premise",
                         "2-premise conf=1"});
  // affinity 0: the paper's setting — "almost all manufacturers provide
  // products that belong to distinct classes", so pairs never beat their
  // parents. affinity 0.8: a world where manufacturers specialize — the
  // conjunction disambiguates polluted series segments.
  for (double affinity : {0.0, 0.8}) {
    datagen::DatasetConfig config;  // paper-scale defaults
    config.manufacturer_affinity = affinity;
    auto dataset = datagen::DatasetGenerator(config).Generate();
    RL_CHECK(dataset.ok());
    const core::TrainingSet ts = datagen::BuildTrainingSet(*dataset);
    core::ConjunctiveLearnerOptions options;
    options.support_threshold = 0.002;
    options.segmenter = &PaperSegmenter();
    auto rules = core::LearnConjunctiveRules(ts, options);
    RL_CHECK(rules.ok()) << rules.status();
    std::size_t pair_conf1 = 0;
    for (const auto& rule : rules->rules()) {
      pair_conf1 += rule.premises.size() == 2 && rule.confidence >= 1.0;
    }
    table.AddRow({"mfr affinity " + util::FormatDouble(affinity, 1),
                  std::to_string(rules->CountWithPremises(1)),
                  std::to_string(rules->CountWithPremises(2)),
                  std::to_string(pair_conf1)});
  }
  std::cout << table.ToText()
            << "(affinity 0 reproduces the paper's finding that the "
               "manufacturer is non-predictive: no pair beats its parent; "
               "with specialized manufacturers the conjunctions appear)\n\n";
}

void PrintTunerReport() {
  std::cout << "=== E2f: threshold tuning by held-out F1 (the paper fixes "
               "th = 0.002 by expert judgment) ===\n";
  eval::TunerOptions options;
  options.segmenter = &PaperSegmenter();
  options.properties = {datagen::props::kPartNumber};
  auto candidates = eval::TuneThresholds(PaperTrainingSet(), options);
  RL_CHECK(candidates.ok()) << candidates.status();
  util::TextTable table({"th", "min conf.", "F1", "precision", "recall",
                         "coverage"});
  for (std::size_t i = 0; i < 5 && i < candidates->size(); ++i) {
    const auto& c = (*candidates)[i];
    table.AddRow({util::FormatDouble(c.support_threshold, 4),
                  util::FormatDouble(c.min_confidence, 1),
                  util::FormatDouble(c.f_beta, 3),
                  util::FormatPercent(c.holdout.precision),
                  util::FormatPercent(c.holdout.recall),
                  util::FormatPercent(c.holdout.coverage)});
  }
  std::cout << table.ToText()
            << "(top 5 of " << candidates->size()
            << " grid cells; the data-driven optimum lands at the same "
               "order of magnitude as the expert's 0.002)\n\n";
}

void BM_SegmentTrainingSet(benchmark::State& state) {
  const auto& ts = PaperTrainingSet();
  const auto& segmenter = PaperSegmenter();
  for (auto _ : state) {
    std::size_t total = 0;
    for (const auto& example : ts.examples()) {
      for (const auto& [property, value] : example.facts) {
        total += segmenter.Segment(value).size();
      }
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ts.size()));
}
BENCHMARK(BM_SegmentTrainingSet)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::PrintStatsReport();
  rulelink::bench::PrintThresholdSweep();
  rulelink::bench::PrintSegmenterAblation();
  rulelink::bench::PrintConjunctiveReport();
  rulelink::bench::PrintHoldoutReport();
  rulelink::bench::PrintTunerReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
