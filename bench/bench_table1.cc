// Experiment "Table 1" (the paper's only table): learn classification
// rules on the paper-scale corpus at th = 0.002, group them by confidence
// band and report #rules / #decisions / precision / recall / lift next to
// the published values. The google-benchmark section then times the two
// hot paths behind the table: rule learning and per-item classification.
#include <iostream>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/classifier.h"
#include "eval/report.h"
#include "eval/table1.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

const core::RuleSet& PaperRules() {
  static const core::RuleSet* rules = [] {
    auto result =
        core::RuleLearner(PaperLearnerOptions()).Learn(PaperTrainingSet());
    RL_CHECK(result.ok()) << result.status();
    return new core::RuleSet(std::move(result).value());
  }();
  return *rules;
}

void PrintTable1Report() {
  core::LearnStats stats;
  auto rules =
      core::RuleLearner(PaperLearnerOptions()).Learn(PaperTrainingSet(),
                                                     &stats);
  RL_CHECK(rules.ok());
  const eval::Table1Evaluator evaluator(&*rules, &PaperSegmenter(), 0.002);
  const auto result = evaluator.Evaluate(PaperTrainingSet());
  std::cout << "=== Table 1: classification rule results (th = 0.002) ===\n"
            << eval::FormatTable1(result, /*with_paper_reference=*/true)
            << "classifiable items: " << result.classifiable_items
            << " (paper: ~7266), frequent classes: "
            << result.frequent_classes << " (paper: 68), undecided: "
            << result.undecided_items << "\n\n";
}

// Calibration stability: the Table 1 shape must hold for ANY seed, not
// just the published one.
void PrintSeedStability() {
  std::cout << "=== Table 1 stability across seeds ===\n";
  util::TextTable table({"seed", "rules", "dec(conf=1)", "prec(last)",
                         "recall(last)", "lift(conf=1)"});
  for (std::uint64_t seed : {42ull, 7ull, 2026ull}) {
    datagen::DatasetConfig config;
    config.seed = seed;
    auto dataset = datagen::DatasetGenerator(config).Generate();
    RL_CHECK(dataset.ok());
    const core::TrainingSet ts = datagen::BuildTrainingSet(*dataset);
    auto rules = core::RuleLearner(PaperLearnerOptions()).Learn(ts);
    RL_CHECK(rules.ok());
    const eval::Table1Evaluator evaluator(&*rules, &PaperSegmenter(),
                                          0.002);
    const auto result = evaluator.Evaluate(ts);
    table.AddRow(
        {std::to_string(seed), std::to_string(rules->size()),
         std::to_string(result.rows[0].decisions),
         util::FormatPercent(result.rows.back().precision_cumulative),
         util::FormatPercent(result.rows.back().recall_cumulative),
         util::FormatDouble(result.rows[0].avg_lift, 0)});
  }
  std::cout << table.ToText() << "\n";
}

void BM_LearnRulesPaperScale(benchmark::State& state) {
  const auto& ts = PaperTrainingSet();
  const auto options = PaperLearnerOptions();
  for (auto _ : state) {
    auto rules = core::RuleLearner(options).Learn(ts);
    benchmark::DoNotOptimize(rules);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ts.size()));
}
BENCHMARK(BM_LearnRulesPaperScale)->Unit(benchmark::kMillisecond);

void BM_ClassifyItem(benchmark::State& state) {
  const core::RuleClassifier classifier(&PaperRules(), &PaperSegmenter());
  const auto& items = PaperDataset().external_items;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto predictions = classifier.Classify(items[i % items.size()]);
    benchmark::DoNotOptimize(predictions);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyItem);

void BM_EvaluateTable1(benchmark::State& state) {
  const eval::Table1Evaluator evaluator(&PaperRules(), &PaperSegmenter(),
                                        0.002);
  for (auto _ : state) {
    const auto result = evaluator.Evaluate(PaperTrainingSet());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EvaluateTable1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::PrintTable1Report();
  rulelink::bench::PrintSeedStability();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
