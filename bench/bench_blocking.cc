// Experiment E4: the paper's rule-based class filtering vs the classic
// blocking families it surveys in §2 — cartesian, standard key blocking,
// sorted neighbourhood, bi-gram indexing — on a mid-size corpus: candidate
// count, reduction ratio, pairs completeness/quality, and end-to-end
// linkage quality when the same linker consumes each candidate set.
#include <iostream>
#include <memory>
#include <unordered_map>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "blocking/adaptive_sn.h"
#include "blocking/bigram_indexing.h"
#include "blocking/canopy.h"
#include "blocking/metrics.h"
#include "blocking/rule_blocker.h"
#include "blocking/sorted_neighbourhood.h"
#include "blocking/standard_blocking.h"
#include "blocking/suffix_blocking.h"
#include "core/classifier.h"
#include "eval/report.h"
#include "linking/evaluation.h"
#include "linking/fellegi_sunter.h"
#include "linking/linker.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

// Mid-size corpus: the quadratic baselines (cartesian) stay tractable.
struct Fixture {
  std::unique_ptr<datagen::Dataset> dataset;
  std::vector<blocking::CandidatePair> gold;
  std::unique_ptr<core::RuleSet> rules;
  std::unique_ptr<core::RuleClassifier> classifier;
  std::vector<std::unique_ptr<blocking::CandidateGenerator>> generators;
};

Fixture& GetFixture() {
  static Fixture* fixture = [] {
    auto* f = new Fixture;
    datagen::DatasetConfig config = ScaledConfig(2000, 42);
    auto dataset = datagen::DatasetGenerator(config).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    f->dataset =
        std::make_unique<datagen::Dataset>(std::move(dataset).value());
    for (const auto& link : f->dataset->links) {
      f->gold.push_back({link.external_index, link.catalog_index});
    }
    const core::TrainingSet ts = datagen::BuildTrainingSet(*f->dataset);
    auto options = PaperLearnerOptions();
    auto rules = core::RuleLearner(options).Learn(ts);
    RL_CHECK(rules.ok()) << rules.status();
    f->rules = std::make_unique<core::RuleSet>(std::move(rules).value());
    f->classifier = std::make_unique<core::RuleClassifier>(
        f->rules.get(), &PaperSegmenter());

    const std::string pn = datagen::props::kPartNumber;
    f->generators.push_back(std::make_unique<blocking::CartesianBlocker>());
    f->generators.push_back(
        std::make_unique<blocking::StandardBlocker>(pn, 5));
    f->generators.push_back(
        std::make_unique<blocking::SortedNeighbourhoodBlocker>(pn, 10));
    f->generators.push_back(
        std::make_unique<blocking::AdaptiveSortedNeighbourhoodBlocker>(
            pn, 0.85));
    f->generators.push_back(
        std::make_unique<blocking::SuffixBlocker>(pn, 8));
    f->generators.push_back(
        std::make_unique<blocking::BigramBlocker>(pn, 0.9));
    f->generators.push_back(
        std::make_unique<blocking::CanopyBlocker>(pn, 0.5, 0.8));
    f->generators.push_back(std::make_unique<blocking::RuleBlocker>(
        f->classifier.get(), &f->dataset->ontology(),
        &f->dataset->catalog_classes, 0.4,
        /*compare_all_when_unclassified=*/true));
    f->generators.push_back(std::make_unique<blocking::RuleBlocker>(
        f->classifier.get(), &f->dataset->ontology(),
        &f->dataset->catalog_classes, 0.4,
        /*compare_all_when_unclassified=*/false));
    return f;
  }();
  return *fixture;
}

void PrintComparison() {
  Fixture& f = GetFixture();
  std::cout << "=== E4: blocking methods comparison (external="
            << f.dataset->external_items.size()
            << ", local=" << f.dataset->catalog_items.size() << ") ===\n";
  util::TextTable table({"method", "candidates", "RR", "PC", "PQ",
                         "link P", "link R", "link F1", "pairs scored"});
  const linking::ItemMatcher matcher(
      {{datagen::props::kPartNumber, datagen::props::kPartNumber,
        linking::SimilarityMeasure::kJaroWinkler, 3.0},
       {datagen::props::kManufacturer, datagen::props::kManufacturer,
        linking::SimilarityMeasure::kExact, 1.0}});
  const linking::Linker linker(&matcher, 0.92);
  for (const auto& generator : f.generators) {
    const auto candidates = generator->Generate(f.dataset->external_items,
                                                f.dataset->catalog_items);
    const auto quality = blocking::EvaluateBlocking(
        candidates, f.gold, f.dataset->external_items.size(),
        f.dataset->catalog_items.size());
    linking::LinkerStats stats;
    const auto links = linker.Run(f.dataset->external_items,
                                  f.dataset->catalog_items, candidates,
                                  &stats);
    const auto linkage = linking::EvaluateLinks(links, f.gold);
    table.AddRow({generator->name(), std::to_string(quality.candidate_pairs),
                  util::FormatPercent(quality.reduction_ratio, 2),
                  util::FormatPercent(quality.pairs_completeness),
                  util::FormatPercent(quality.pairs_quality, 2),
                  util::FormatPercent(linkage.precision),
                  util::FormatPercent(linkage.recall),
                  util::FormatPercent(linkage.f1),
                  std::to_string(stats.pairs_scored)});
  }
  std::cout << table.ToText()
            << "(RR = reduction ratio, PC = pairs completeness, PQ = pairs "
               "quality)\n\n";
}

// E4b: with the candidate set fixed (standard blocking), compare the two
// classical decision models: a weighted similarity threshold vs the
// Fellegi-Sunter posterior (Winkler's lineage, the paper's ref [12]),
// trained supervised on the expert links.
void PrintDecisionModelComparison() {
  Fixture& f = GetFixture();
  const std::string pn = datagen::props::kPartNumber;
  const std::string mfr = datagen::props::kManufacturer;
  const auto candidates = blocking::StandardBlocker(pn, 5).Generate(
      f.dataset->external_items, f.dataset->catalog_items);

  std::cout << "=== E4b: decision models on the standard-blocked "
               "candidates ===\n";
  util::TextTable table({"decision model", "links", "P", "R", "F1"});

  // Similarity threshold (the linker used everywhere else).
  {
    const linking::ItemMatcher matcher(
        {{pn, pn, linking::SimilarityMeasure::kJaroWinkler, 3.0},
         {mfr, mfr, linking::SimilarityMeasure::kExact, 1.0}});
    const linking::Linker linker(&matcher, 0.92);
    const auto links = linker.Run(f.dataset->external_items,
                                  f.dataset->catalog_items, candidates);
    const auto quality = linking::EvaluateLinks(links, f.gold);
    table.AddRow({"Jaro-Winkler threshold 0.92",
                  std::to_string(quality.emitted),
                  util::FormatPercent(quality.precision),
                  util::FormatPercent(quality.recall),
                  util::FormatPercent(quality.f1)});
  }
  // Fellegi-Sunter posterior, best candidate per external item.
  {
    linking::FsOptions options;
    options.attributes = {
        {pn, pn, linking::SimilarityMeasure::kJaroWinkler, 0.92},
        {mfr, mfr, linking::SimilarityMeasure::kExact, 1.0}};
    auto model = linking::FellegiSunterModel::TrainSupervised(
        f.dataset->external_items, f.dataset->catalog_items, f.gold,
        options);
    RL_CHECK(model.ok()) << model.status();
    std::unordered_map<std::size_t, std::pair<std::size_t, double>> best;
    for (const auto& pair : candidates) {
      const double probability = model->MatchProbability(
          f.dataset->external_items[pair.external_index],
          f.dataset->catalog_items[pair.local_index]);
      auto it = best.find(pair.external_index);
      if (it == best.end() || probability > it->second.second) {
        best[pair.external_index] = {pair.local_index, probability};
      }
    }
    std::vector<linking::Link> links;
    for (const auto& [external_index, choice] : best) {
      if (choice.second >= 0.5) {
        links.push_back(
            linking::Link{external_index, choice.first, choice.second});
      }
    }
    const auto quality = linking::EvaluateLinks(links, f.gold);
    table.AddRow({"Fellegi-Sunter posterior >= 0.5",
                  std::to_string(quality.emitted),
                  util::FormatPercent(quality.precision),
                  util::FormatPercent(quality.recall),
                  util::FormatPercent(quality.f1)});
  }
  std::cout << table.ToText() << "\n";
}

void BM_Blocker(benchmark::State& state) {
  Fixture& f = GetFixture();
  const auto& generator = f.generators[static_cast<std::size_t>(
      state.range(0))];
  state.SetLabel(generator->name());
  for (auto _ : state) {
    const auto pairs = generator->Generate(f.dataset->external_items,
                                           f.dataset->catalog_items);
    benchmark::DoNotOptimize(pairs);
  }
}
// The canopy blocker (index 6) is excluded from the timed loop: one run
// takes seconds and its cost profile is already visible in the table.
BENCHMARK(BM_Blocker)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Arg(7)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::PrintComparison();
  rulelink::bench::PrintDecisionModelComparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
