// Experiment E5: learner scaling. The paper's motivation is the cost of
// naive comparison (quadratic in the sources); rule learning is a single
// pass over TS. We chart learning time and rule census as |TS| grows, and
// compare the comparison budgets: naive |S_E| x |S_L| vs rule-reduced.
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/incremental.h"
#include "core/reference_learner.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table.h"

namespace rulelink::bench {
namespace {

struct ScaledCorpus {
  std::unique_ptr<datagen::Dataset> dataset;
  std::unique_ptr<core::TrainingSet> ts;
};

const ScaledCorpus& GetScaled(std::size_t num_links) {
  static std::map<std::size_t, ScaledCorpus>* cache =
      new std::map<std::size_t, ScaledCorpus>();
  auto it = cache->find(num_links);
  if (it == cache->end()) {
    ScaledCorpus corpus;
    auto dataset =
        datagen::DatasetGenerator(ScaledConfig(num_links)).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    corpus.dataset =
        std::make_unique<datagen::Dataset>(std::move(dataset).value());
    corpus.ts = std::make_unique<core::TrainingSet>(
        datagen::BuildTrainingSet(*corpus.dataset));
    it = cache->emplace(num_links, std::move(corpus)).first;
  }
  return it->second;
}

void PrintScalingReport() {
  std::cout << "=== E5: learner scaling with |TS| ===\n";
  util::TextTable table({"|TS|", "learn time (ms)", "#rules",
                         "freq. classes", "naive pairs", "throughput"});
  for (std::size_t n : {1000u, 2500u, 5000u, 10265u, 20000u, 40000u}) {
    const ScaledCorpus& corpus = GetScaled(n);
    auto options = PaperLearnerOptions();
    core::LearnStats stats;
    util::Stopwatch timer;
    auto rules = core::RuleLearner(options).Learn(*corpus.ts, &stats);
    const double ms = timer.ElapsedMillis();
    RL_CHECK(rules.ok());
    const double throughput = static_cast<double>(n) / (ms / 1000.0);
    table.AddRow(
        {std::to_string(n), util::FormatDouble(ms, 1),
         std::to_string(stats.num_rules),
         std::to_string(stats.frequent_classes),
         std::to_string(static_cast<std::uint64_t>(n) *
                        corpus.dataset->catalog_items.size()),
         util::FormatDouble(throughput / 1000.0, 0) + "k links/s"});
  }
  std::cout << table.ToText()
            << "(learning is one pass over TS; the naive-pairs column is "
               "the comparison budget the rules exist to avoid)\n\n";
}

// Incremental vs batch: the expert validates links in deliveries; with
// the batch learner every delivery costs a full re-scan of TS, with the
// incremental learner only the new links are ingested.
void PrintIncrementalReport() {
  std::cout << "=== E5b: incremental vs batch relearning (10 deliveries of "
               "~1027 links each) ===\n";
  const auto& ts = PaperTrainingSet();
  const auto& dataset = PaperDataset();
  util::TextTable table({"mode", "total time (ms)", "final #rules"});

  // Batch: relearn after every delivery.
  {
    util::Stopwatch timer;
    std::size_t rules = 0;
    for (std::size_t batch = 1; batch <= 10; ++batch) {
      core::TrainingSet prefix(dataset.ontology());
      const std::size_t upto = ts.size() * batch / 10;
      for (std::size_t i = 0; i < upto; ++i) {
        const auto& example = ts.examples()[i];
        core::Item item;
        item.iri = example.external_iri;
        for (const auto& [property, value] : example.facts) {
          item.facts.push_back(
              core::PropertyValue{ts.properties().name(property), value});
        }
        prefix.AddExample(item, example.local_iri, example.classes);
      }
      auto result = core::RuleLearner(PaperLearnerOptions()).Learn(prefix);
      RL_CHECK(result.ok());
      rules = result->size();
    }
    table.AddRow({"batch relearn per delivery",
                  util::FormatDouble(timer.ElapsedMillis(), 1),
                  std::to_string(rules)});
  }
  // Incremental: ingest each delivery, rebuild rules from counts.
  {
    util::Stopwatch timer;
    core::IncrementalRuleLearner learner(
        &dataset.ontology(), &PaperSegmenter(),
        {datagen::props::kPartNumber});
    std::size_t rules = 0;
    for (std::size_t batch = 1; batch <= 10; ++batch) {
      const std::size_t from = ts.size() * (batch - 1) / 10;
      const std::size_t upto = ts.size() * batch / 10;
      for (std::size_t i = from; i < upto; ++i) {
        const auto& example = ts.examples()[i];
        core::Item item;
        item.iri = example.external_iri;
        for (const auto& [property, value] : example.facts) {
          item.facts.push_back(
              core::PropertyValue{ts.properties().name(property), value});
        }
        learner.AddExample(item, example.classes);
      }
      auto result = learner.BuildRules(0.002);
      RL_CHECK(result.ok());
      rules = result->size();
    }
    table.AddRow({"incremental ingest + rebuild",
                  util::FormatDouble(timer.ElapsedMillis(), 1),
                  std::to_string(rules)});
  }
  std::cout << table.ToText() << "\n";
}

// Interned vs string-keyed learning on the paper-scale corpus. The
// reference learner is the seed pipeline preserved verbatim (segments
// every value three times, hashes (property, segment-string) pairs); the
// production learner segments once into a StringInterner and counts over
// dense ids. Same rules byte-for-byte (see interned_differential_test);
// this section records the wall-time and symbol-table footprint of the
// trade, and its JSON lands in BENCH_learning.json next to the sweep.
std::string PrintInterningReport() {
  std::cout << "=== E5d: interned vs string-keyed learner (|TS| = "
            << PaperTrainingSet().size() << ") ===\n";
  const auto options = PaperLearnerOptions();
  const auto best_of_3 = [&](auto&& learn) {
    double best_ms = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      util::Stopwatch timer;
      auto rules = learn();
      const double ms = timer.ElapsedMillis();
      RL_CHECK(rules.ok());
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    return best_ms;
  };
  // Warm both paths once (corpus caches, allocator), then time.
  core::LearnStats stats;
  RL_CHECK(core::RuleLearner(options).Learn(PaperTrainingSet(), &stats).ok());
  const double interned_ms = best_of_3(
      [&] { return core::RuleLearner(options).Learn(PaperTrainingSet()); });
  const double reference_ms = best_of_3(
      [&] { return core::ReferenceLearn(options, PaperTrainingSet()); });
  const double speedup =
      interned_ms > 0.0 ? reference_ms / interned_ms : 0.0;

  util::TextTable table({"pipeline", "learn time (ms)", "intern symbols",
                         "arena KiB", "segment occurrences"});
  table.AddRow({"string-keyed (reference)",
                util::FormatDouble(reference_ms, 1), "-", "-",
                std::to_string(stats.segment_occurrences)});
  table.AddRow({"interned (SegmentId)", util::FormatDouble(interned_ms, 1),
                std::to_string(stats.interner_symbols),
                util::FormatDouble(
                    static_cast<double>(stats.interner_bytes) / 1024.0, 1),
                std::to_string(stats.segment_occurrences)});
  std::cout << table.ToText() << "speedup: "
            << util::FormatDouble(speedup, 2)
            << "x (identical rules; differential-tested)\n\n";

  std::string json = "  \"interning\": {\n";
  json += "    \"intern_symbols\": " +
          std::to_string(stats.interner_symbols) + ",\n";
  json += "    \"intern_arena_bytes\": " +
          std::to_string(stats.interner_bytes) + ",\n";
  json += "    \"segment_occurrences\": " +
          std::to_string(stats.segment_occurrences) + ",\n";
  json += "    \"reference_ms\": " + util::FormatDouble(reference_ms, 3) +
          ",\n";
  json += "    \"interned_ms\": " + util::FormatDouble(interned_ms, 3) +
          ",\n";
  json += "    \"speedup_vs_reference\": " + util::FormatDouble(speedup, 3) +
          "\n  },\n";
  return json;
}

// Thread-count sweep over the paper-scale corpus: the speedup trajectory
// of the sharded counting passes, recorded to BENCH_learning.json. On a
// single-core host the parallel points only measure the sharding/merge
// overhead; the trajectory becomes a speedup curve on multi-core hardware.
void PrintThreadSweepReport(const std::string& interning_json) {
  std::cout << "=== E5c: learner thread-count sweep (|TS| = "
            << PaperTrainingSet().size() << ", hardware_concurrency = "
            << std::thread::hardware_concurrency() << ") ===\n";
  util::TextTable table(
      {"threads", "learn time (ms)", "speedup vs 1", "#rules"});
  std::vector<ThreadSweepPoint> points;
  double serial_ms = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    auto options = PaperLearnerOptions();
    options.num_threads = threads;
    const core::RuleLearner learner(options);
    core::LearnStats stats;
    // Warm-up, then best-of-3 to de-noise the report.
    auto warm = learner.Learn(PaperTrainingSet(), &stats);
    RL_CHECK(warm.ok());
    double best_ms = 0.0;
    const util::SchedulerTotals sched_before = util::GlobalSchedulerTotals();
    for (int rep = 0; rep < 3; ++rep) {
      util::Stopwatch timer;
      auto rules = learner.Learn(PaperTrainingSet());
      const double ms = timer.ElapsedMillis();
      RL_CHECK(rules.ok());
      if (rep == 0 || ms < best_ms) best_ms = ms;
    }
    const util::SchedulerTotals sched =
        util::GlobalSchedulerTotals().Minus(sched_before);
    if (threads == 1) serial_ms = best_ms;
    points.push_back({threads, best_ms, sched});
    table.AddRow({std::to_string(threads), util::FormatDouble(best_ms, 1),
                  serial_ms > 0.0
                      ? util::FormatDouble(serial_ms / best_ms, 2) + "x"
                      : "-",
                  std::to_string(stats.num_rules)});
  }
  WriteThreadSweepJson("learning", "Learn on the paper-scale corpus",
                       points, interning_json);
  std::cout << table.ToText()
            << "(identical rules at every thread count; trajectory written "
               "to BENCH_learning.json)\n\n";
}

// One instrumented Learn over the paper-scale corpus; the snapshot (phase
// timings, corpus counters, the per-example segment histogram) lands in
// BENCH_learning_metrics.json next to the sweep JSON.
void WriteLearnerMetricsSnapshot() {
  obs::MetricsRegistry registry;
  auto rules = core::RuleLearner(PaperLearnerOptions())
                   .Learn(PaperTrainingSet(), nullptr, &registry);
  RL_CHECK(rules.ok());
  if (auto s = registry.Snapshot().WriteJsonFile(
          "BENCH_learning_metrics.json");
      !s.ok()) {
    std::cerr << "metrics snapshot: " << s << "\n";
  } else {
    std::cout << "(learner metrics snapshot written to "
                 "BENCH_learning_metrics.json)\n\n";
  }
}

void BM_IncrementalAddExample(benchmark::State& state) {
  const auto& dataset = PaperDataset();
  const auto& ts = PaperTrainingSet();
  core::IncrementalRuleLearner learner(&dataset.ontology(),
                                       &PaperSegmenter());
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& example = ts.examples()[i % ts.size()];
    core::Item item;
    item.iri = example.external_iri;
    for (const auto& [property, value] : example.facts) {
      item.facts.push_back(
          core::PropertyValue{ts.properties().name(property), value});
    }
    learner.AddExample(item, example.classes);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncrementalAddExample);

void BM_LearnAtScale(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const ScaledCorpus& corpus = GetScaled(n);
  const auto options = PaperLearnerOptions();
  for (auto _ : state) {
    auto rules = core::RuleLearner(options).Learn(*corpus.ts);
    benchmark::DoNotOptimize(rules);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LearnAtScale)
    ->Arg(1000)
    ->Arg(2500)
    ->Arg(5000)
    ->Arg(10265)
    ->Arg(20000)
    ->Complexity(benchmark::oN)
    ->Unit(benchmark::kMillisecond);

void BM_LearnThresholdSweep(benchmark::State& state) {
  const auto& ts = PaperTrainingSet();
  auto options = PaperLearnerOptions();
  options.support_threshold =
      static_cast<double>(state.range(0)) / 100000.0;
  for (auto _ : state) {
    auto rules = core::RuleLearner(options).Learn(ts);
    benchmark::DoNotOptimize(rules);
  }
}
BENCHMARK(BM_LearnThresholdSweep)
    ->Arg(50)    // th = 0.0005
    ->Arg(200)   // th = 0.002
    ->Arg(1600)  // th = 0.016
    ->Unit(benchmark::kMillisecond);

// The thread-count axis: Learn on the paper corpus at 1/2/4/8 workers.
void BM_LearnThreads(benchmark::State& state) {
  auto options = PaperLearnerOptions();
  options.num_threads = static_cast<std::size_t>(state.range(0));
  const core::RuleLearner learner(options);
  for (auto _ : state) {
    auto rules = learner.Learn(PaperTrainingSet());
    benchmark::DoNotOptimize(rules);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(PaperTrainingSet().size()));
}
BENCHMARK(BM_LearnThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rulelink::bench

int main(int argc, char** argv) {
  rulelink::bench::ApplyPinningFromEnv();
  rulelink::bench::PrintScalingReport();
  rulelink::bench::PrintIncrementalReport();
  const std::string interning_json =
      rulelink::bench::PrintInterningReport();
  rulelink::bench::PrintThreadSweepReport(interning_json);
  rulelink::bench::WriteLearnerMetricsSnapshot();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
