// Experiment E7 (micro): throughput of the text substrate — segmentation
// schemes and similarity measures — which backs both the learner's premise
// extraction and the linker's comparisons (§1 motivates the approach by
// the cost of pairwise similarity computation).
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "text/normalize.h"
#include "text/phonetic.h"
#include "text/segmenter.h"
#include "text/similarity.h"
#include "util/rng.h"

namespace rulelink::text {
namespace {

std::vector<std::string> SamplePartNumbers(std::size_t count) {
  util::Rng rng(123);
  std::vector<std::string> values;
  values.reserve(count);
  const char* seps = "-. /_";
  for (std::size_t i = 0; i < count; ++i) {
    std::string value = rng.AlnumString(4 + rng.UniformUint64(5));
    for (int t = 0; t < 2; ++t) {
      value.push_back(seps[rng.UniformUint64(5)]);
      value += rng.AlnumString(3 + rng.UniformUint64(4));
    }
    values.push_back(std::move(value));
  }
  return values;
}

const std::vector<std::string>& Corpus() {
  static const std::vector<std::string>* corpus =
      new std::vector<std::string>(SamplePartNumbers(10000));
  return *corpus;
}

void BM_SeparatorSegmenter(benchmark::State& state) {
  const SeparatorSegmenter segmenter;
  const auto& corpus = Corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(segmenter.Segment(corpus[i % corpus.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SeparatorSegmenter);

void BM_NGramSegmenter(benchmark::State& state) {
  const NGramSegmenter segmenter(static_cast<std::size_t>(state.range(0)));
  const auto& corpus = Corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(segmenter.Segment(corpus[i % corpus.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NGramSegmenter)->Arg(2)->Arg(3)->Arg(4);

void BM_AlphaDigitSegmenter(benchmark::State& state) {
  const AlphaDigitSegmenter segmenter;
  const auto& corpus = Corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(segmenter.Segment(corpus[i % corpus.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AlphaDigitSegmenter);

template <double (*F)(std::string_view, std::string_view)>
void BM_Similarity(benchmark::State& state) {
  const auto& corpus = Corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        F(corpus[i % corpus.size()], corpus[(i + 1) % corpus.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Similarity<&LevenshteinSimilarity>)->Name("BM_Levenshtein");
BENCHMARK(BM_Similarity<&JaroSimilarity>)->Name("BM_Jaro");
BENCHMARK(BM_Similarity<&JaroWinklerSimilarity>)->Name("BM_JaroWinkler");
BENCHMARK(BM_Similarity<&JaccardTokenSimilarity>)->Name("BM_JaccardTokens");
BENCHMARK(BM_Similarity<&DiceBigramSimilarity>)->Name("BM_DiceBigram");
BENCHMARK(BM_Similarity<&MongeElkanSimilarity>)->Name("BM_MongeElkan");

void BM_Soundex(benchmark::State& state) {
  const auto& corpus = Corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Soundex(corpus[i % corpus.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Soundex);

void BM_Nysiis(benchmark::State& state) {
  const auto& corpus = Corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Nysiis(corpus[i % corpus.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Nysiis);

void BM_Normalize(benchmark::State& state) {
  const auto& corpus = Corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalizeDefault(corpus[i % corpus.size()]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Normalize);

}  // namespace
}  // namespace rulelink::text

BENCHMARK_MAIN();
