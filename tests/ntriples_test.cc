#include "rdf/ntriples.h"

#include <gtest/gtest.h>

namespace rulelink::rdf {
namespace {

TEST(NTriplesParseTest, BasicTriples) {
  Graph g;
  const auto status = ParseNTriples(
      "<http://a> <http://p> <http://b> .\n"
      "<http://a> <http://p> \"literal\" .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(g.size(), 2u);
}

TEST(NTriplesParseTest, CommentsAndBlankLines) {
  Graph g;
  const auto status = ParseNTriples(
      "# a comment\n"
      "\n"
      "   \n"
      "<http://a> <http://p> <http://b> . # trailing comment\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(g.size(), 1u);
}

TEST(NTriplesParseTest, LangAndTypedLiterals) {
  Graph g;
  const auto status = ParseNTriples(
      "<http://a> <http://p> \"chat\"@fr .\n"
      "<http://a> <http://q> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  const TermId lang = g.dict().Find(Term::LangLiteral("chat", "fr"));
  EXPECT_NE(lang, kInvalidTermId);
  const TermId typed = g.dict().Find(Term::TypedLiteral(
      "42", "http://www.w3.org/2001/XMLSchema#integer"));
  EXPECT_NE(typed, kInvalidTermId);
}

TEST(NTriplesParseTest, BlankNodes) {
  Graph g;
  const auto status =
      ParseNTriples("_:b0 <http://p> _:b1 .\n", &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(g.dict().Find(Term::BlankNode("b0")), kInvalidTermId);
  EXPECT_NE(g.dict().Find(Term::BlankNode("b1")), kInvalidTermId);
}

TEST(NTriplesParseTest, EscapesInLiterals) {
  Graph g;
  const auto status = ParseNTriples(
      "<http://a> <http://p> \"line1\\nline2\\t\\\"q\\\" \\\\\" .\n", &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(g.dict().Find(Term::Literal("line1\nline2\t\"q\" \\")),
            kInvalidTermId);
}

TEST(NTriplesParseTest, UnicodeEscapes) {
  Graph g;
  const auto status = ParseNTriples(
      "<http://a> <http://p> \"caf\\u00E9\" .\n", &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(g.dict().Find(Term::Literal("caf\xC3\xA9")), kInvalidTermId);
}

TEST(NTriplesParseTest, NoTrailingNewline) {
  Graph g;
  ASSERT_TRUE(ParseNTriples("<http://a> <http://p> <http://b> .", &g).ok());
  EXPECT_EQ(g.size(), 1u);
}

struct BadInput {
  const char* name;
  const char* content;
};

class NTriplesErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(NTriplesErrorTest, RejectsMalformedInput) {
  Graph g;
  const auto status = ParseNTriples(GetParam().content, &g);
  EXPECT_FALSE(status.ok()) << GetParam().name;
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, NTriplesErrorTest,
    ::testing::Values(
        BadInput{"missing_dot", "<http://a> <http://p> <http://b>\n"},
        BadInput{"literal_subject", "\"x\" <http://p> <http://b> .\n"},
        BadInput{"literal_predicate", "<http://a> \"p\" <http://b> .\n"},
        BadInput{"blank_predicate", "<http://a> _:p <http://b> .\n"},
        BadInput{"unterminated_iri", "<http://a <http://p> <http://b> .\n"},
        BadInput{"unterminated_literal",
                 "<http://a> <http://p> \"oops .\n"},
        BadInput{"garbage_after_dot",
                 "<http://a> <http://p> <http://b> . junk\n"},
        BadInput{"missing_object", "<http://a> <http://p> .\n"},
        BadInput{"bad_escape", "<http://a> <http://p> \"\\x\" .\n"},
        BadInput{"bad_unicode_escape",
                 "<http://a> <http://p> \"\\u00G9\" .\n"},
        BadInput{"empty_blank_label", "_: <http://p> <http://b> .\n"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.name;
    });

TEST(NTriplesErrorTest, ErrorMentionsLineNumber) {
  Graph g;
  const auto status = ParseNTriples(
      "<http://a> <http://p> <http://b> .\n"
      "broken line\n",
      &g);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos)
      << status.message();
}

TEST(NTriplesRoundTripTest, WriteThenParseIsIdentity) {
  Graph g;
  g.InsertIri("http://s", "http://p", "http://o");
  g.Insert(Term::Iri("http://s"), Term::Iri("http://p"),
           Term::LangLiteral("héllo \"world\"\n", "en-GB"));
  g.Insert(Term::BlankNode("x"), Term::Iri("http://p"),
           Term::TypedLiteral("3.14", "http://www.w3.org/2001/XMLSchema#double"));

  const std::string serialized = WriteNTriples(g);
  Graph g2;
  ASSERT_TRUE(ParseNTriples(serialized, &g2).ok());
  ASSERT_EQ(g2.size(), g.size());
  // Same triples term-by-term.
  for (const Triple& t : g.triples()) {
    const Triple mapped{
        g2.dict().Find(g.dict().term(t.subject)),
        g2.dict().Find(g.dict().term(t.predicate)),
        g2.dict().Find(g.dict().term(t.object)),
    };
    EXPECT_TRUE(g2.Contains(mapped));
  }
}

TEST(NTriplesFileTest, MissingFileIsNotFound) {
  Graph g;
  const auto status = ParseNTriplesFile("/nonexistent/file.nt", &g);
  EXPECT_EQ(status.code(), util::StatusCode::kNotFound);
}

TEST(ParseTermTest, SingleTerms) {
  auto iri = ParseNTriplesTerm("<http://x>");
  ASSERT_TRUE(iri.ok());
  EXPECT_EQ(iri.value(), Term::Iri("http://x"));

  auto lit = ParseNTriplesTerm("\"v\"@en");
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ(lit.value(), Term::LangLiteral("v", "en"));

  EXPECT_FALSE(ParseNTriplesTerm("<http://x> extra").ok());
  EXPECT_FALSE(ParseNTriplesTerm("").ok());
}

}  // namespace
}  // namespace rulelink::rdf
