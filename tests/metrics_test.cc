// Tests for the observability layer (src/obs): registry semantics,
// histogram bucket edges and merge-order invariance, trace structure, and
// the tentpole acceptance bar — the deterministic snapshot of a fully
// instrumented pipeline is byte-identical at every thread count.
#include "obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/standard_blocking.h"
#include "core/learner.h"
#include "datagen/generator.h"
#include "linking/evaluation.h"
#include "linking/matcher.h"
#include "text/segmenter.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace rulelink {
namespace {

// --- Bucketing ------------------------------------------------------------

TEST(Log2BucketTest, BucketEdges) {
  EXPECT_EQ(obs::Log2Bucket(0), 0u);
  EXPECT_EQ(obs::Log2Bucket(1), 1u);
  EXPECT_EQ(obs::Log2Bucket(2), 2u);
  EXPECT_EQ(obs::Log2Bucket(3), 2u);
  EXPECT_EQ(obs::Log2Bucket(4), 3u);
  EXPECT_EQ(obs::Log2Bucket(7), 3u);
  EXPECT_EQ(obs::Log2Bucket(8), 4u);
  EXPECT_EQ(obs::Log2Bucket(1023), 10u);
  EXPECT_EQ(obs::Log2Bucket(1024), 11u);
  EXPECT_EQ(obs::Log2Bucket(std::numeric_limits<std::uint64_t>::max()),
            obs::kNumHistogramBuckets - 1);
}

TEST(Log2BucketTest, LowerBoundsRoundTrip) {
  EXPECT_EQ(obs::BucketLowerBound(0), 0u);
  EXPECT_EQ(obs::BucketLowerBound(1), 1u);
  EXPECT_EQ(obs::BucketLowerBound(2), 2u);
  EXPECT_EQ(obs::BucketLowerBound(3), 4u);
  EXPECT_EQ(obs::BucketLowerBound(4), 8u);
  // Every bucket's lower bound maps back into that bucket, and the value
  // just below it (when there is one) into the previous bucket.
  for (std::size_t b = 0; b < obs::kNumHistogramBuckets; ++b) {
    const std::uint64_t lo = obs::BucketLowerBound(b);
    EXPECT_EQ(obs::Log2Bucket(lo), b) << "bucket " << b;
    if (b > 1) {
      EXPECT_EQ(obs::Log2Bucket(lo - 1), b - 1) << "bucket " << b;
    }
  }
}

// --- Histogram ------------------------------------------------------------

TEST(HistogramTest, ObserveTracksCountSumMinMax) {
  obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.Observe(5);
  h.Observe(0);
  h.Observe(17);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 22u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 17u);
  EXPECT_EQ(h.buckets()[obs::Log2Bucket(0)], 1u);
  EXPECT_EQ(h.buckets()[obs::Log2Bucket(5)], 1u);
  EXPECT_EQ(h.buckets()[obs::Log2Bucket(17)], 1u);
}

TEST(HistogramTest, MergeIsOrderInvariant) {
  obs::Histogram a, b, c;
  for (std::uint64_t v : {1u, 3u, 3u, 100u}) a.Observe(v);
  for (std::uint64_t v : {0u, 8u}) b.Observe(v);
  // c stays empty: merging an empty shard must not disturb min().
  obs::Histogram ab = a;
  ab.Merge(b);
  ab.Merge(c);
  obs::Histogram ba = b;
  ba.Merge(c);
  ba.Merge(a);
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_EQ(ab.sum(), ba.sum());
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());
  EXPECT_EQ(ab.buckets(), ba.buckets());
  EXPECT_EQ(ab.count(), 6u);
  EXPECT_EQ(ab.min(), 0u);
  EXPECT_EQ(ab.max(), 100u);
}

TEST(HistogramTest, ValueAtQuantileEmptyAndSingleValue) {
  obs::Histogram h;
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0.0);
  h.Observe(42);
  // One observation: every quantile clamps to the observed min == max.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 42.0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 42.0);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 42.0);
}

TEST(HistogramTest, ValueAtQuantileWalksBuckets) {
  obs::Histogram h;
  // 90 observations in [64, 128), 10 in [1024, 2048): p50 must land in the
  // first bucket's value range, p99 in the second's.
  for (int i = 0; i < 90; ++i) h.Observe(100);
  for (int i = 0; i < 10; ++i) h.Observe(1500);
  const double p50 = h.ValueAtQuantile(0.5);
  EXPECT_GE(p50, 64.0);
  EXPECT_LT(p50, 128.0);
  const double p99 = h.ValueAtQuantile(0.99);
  EXPECT_GE(p99, 1024.0);
  EXPECT_LE(p99, 1500.0);  // clamped to the observed max
  // Monotone in q.
  EXPECT_LE(h.ValueAtQuantile(0.25), h.ValueAtQuantile(0.75));
  EXPECT_LE(h.ValueAtQuantile(0.9), h.ValueAtQuantile(0.999));
  // Out-of-range q clamps instead of reading past the buckets.
  EXPECT_EQ(h.ValueAtQuantile(-1.0), h.ValueAtQuantile(0.0));
  EXPECT_EQ(h.ValueAtQuantile(2.0), h.ValueAtQuantile(1.0));
}

TEST(HistogramTest, ValueAtQuantileBoundedByBucketResolution) {
  obs::Histogram h;
  // Uniform 1..1000: the log2 bucketing bounds the relative error by 2x.
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Observe(v);
  const double p50 = h.ValueAtQuantile(0.5);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  const double p999 = h.ValueAtQuantile(0.999);
  EXPECT_GE(p999, 512.0);
  EXPECT_LE(p999, 1000.0);
}

// --- Registry -------------------------------------------------------------

TEST(MetricsRegistryTest, CountersAccumulate) {
  obs::MetricsRegistry registry;
  registry.AddCounter("x");
  registry.AddCounter("x", 4);
  registry.AddCounter("y", 0);
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("x"), 5u);
  EXPECT_EQ(snapshot.counters.at("y"), 0u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWinsAndNanNormalized) {
  obs::MetricsRegistry registry;
  registry.SetGauge("g", 1.5);
  registry.SetGauge("g", 2.5);
  registry.SetGauge("bad", std::numeric_limits<double>::quiet_NaN());
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.gauges.at("g"), 2.5);
  EXPECT_EQ(snapshot.gauges.at("bad"), 0.0);
}

TEST(MetricsRegistryTest, StageScopesNestInTraceOrder) {
  obs::MetricsRegistry registry;
  {
    const obs::MetricsRegistry::StageScope outer(&registry, "outer");
    { const obs::MetricsRegistry::StageScope inner(&registry, "outer/in"); }
    { const obs::MetricsRegistry::StageScope inner(&registry, "outer/in"); }
  }
  const auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.stages.at("outer").calls, 1u);
  EXPECT_EQ(snapshot.stages.at("outer/in").calls, 2u);
  ASSERT_EQ(snapshot.trace.size(), 3u);
  // Spans appear in begin order with their nesting depth.
  EXPECT_EQ(snapshot.trace[0].path, "outer");
  EXPECT_EQ(snapshot.trace[0].depth, 0u);
  EXPECT_EQ(snapshot.trace[1].path, "outer/in");
  EXPECT_EQ(snapshot.trace[1].depth, 1u);
  EXPECT_EQ(snapshot.trace[2].depth, 1u);
}

TEST(MetricsRegistryTest, NullRegistryScopesAreNoOps) {
  // Must not crash; this is the uninstrumented path of every call site.
  const obs::MetricsRegistry::StageScope scope(nullptr, "ignored");
}

TEST(MetricsSnapshotTest, DeterministicJsonOmitsTimings) {
  obs::MetricsRegistry registry;
  registry.AddCounter("c", 7);
  { const obs::MetricsRegistry::StageScope scope(&registry, "s"); }
  const auto snapshot = registry.Snapshot();
  const std::string full = snapshot.ToJson();
  const std::string det = snapshot.DeterministicJson();
  EXPECT_NE(full.find("\"stages\""), std::string::npos);
  EXPECT_NE(full.find("\"trace\""), std::string::npos);
  EXPECT_EQ(det.find("\"stages\""), std::string::npos);
  EXPECT_EQ(det.find("\"trace\""), std::string::npos);
  EXPECT_NE(det.find("\"c\": 7"), std::string::npos) << det;
  // The scheduler counters are thread-variant (steal order, busy time):
  // present in the full document, never in the deterministic one.
  EXPECT_NE(full.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(full.find("\"per_worker\""), std::string::npos);
  EXPECT_EQ(det.find("\"scheduler\""), std::string::npos);
  EXPECT_EQ(det.find("\"steals\""), std::string::npos);
}

TEST(MetricsSnapshotTest, SchedulerSectionReflectsPoolActivity) {
  // Run a scheduled loop, then snapshot: the section must report the
  // global pool's workers and a non-zero morsel count.
  std::atomic<std::uint64_t> sum{0};
  util::ParallelFor(2, 256,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      sum.fetch_add(end - begin, std::memory_order_relaxed);
                    });
  ASSERT_EQ(sum.load(), 256u);
  obs::MetricsRegistry registry;
  const auto snapshot = registry.Snapshot();
  EXPECT_GE(snapshot.scheduler.workers, 1u);
  EXPECT_GT(snapshot.scheduler.loops, 0u);
  EXPECT_GT(snapshot.scheduler.Totals().morsels, 0u);
  const std::string full = snapshot.ToJson();
  EXPECT_NE(full.find("\"utilization\""), std::string::npos);
}

// --- Cross-thread determinism of a fully instrumented pipeline -----------

datagen::DatasetConfig SmallConfig(std::uint64_t seed) {
  datagen::DatasetConfig config;
  config.seed = seed;
  config.num_classes = 40;
  config.num_leaves = 16;
  config.catalog_size = 400;
  config.num_links = 200;
  config.num_signal_classes = 4;
  config.num_other_frequent_classes = 4;
  config.signal_class_min_links = 12;
  config.signal_class_max_links = 24;
  config.frequent_class_min_links = 5;
  config.frequent_class_max_links = 9;
  config.tail_class_cap_links = 3;
  return config;
}

linking::ItemMatcher PipelineMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 2.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kExact, 0.5},
  });
}

// Runs learner + streaming linkage pipeline + evaluation with a live
// registry at `num_threads` and returns the deterministic snapshot JSON.
std::string InstrumentedPipelineJson(const datagen::Dataset& dataset,
                                     std::size_t num_threads) {
  obs::MetricsRegistry registry;

  const text::SeparatorSegmenter segmenter;
  core::LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter;
  options.num_threads = num_threads;
  const auto ts = datagen::BuildTrainingSet(dataset);
  auto rules = core::RuleLearner(options).Learn(ts, nullptr, &registry);
  RL_CHECK(rules.ok()) << rules.status();

  std::vector<blocking::CandidatePair> gold;
  for (const datagen::GoldLink& link : dataset.links) {
    gold.push_back({link.external_index, link.catalog_index});
  }
  const linking::ItemMatcher matcher = PipelineMatcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  const auto result = linking::RunStreamingLinkagePipeline(
      dataset.external_items, dataset.catalog_items, blocker, matcher,
      /*threshold=*/0.6, linking::Linker::Strategy::kBestPerExternal, &gold,
      num_threads, &registry);
  RL_CHECK(!result.links.empty());

  return registry.Snapshot().DeterministicJson();
}

TEST(MetricsDeterminismTest, SnapshotByteIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {11u, 23u}) {
    SCOPED_TRACE(seed);
    auto dataset = datagen::DatasetGenerator(SmallConfig(seed)).Generate();
    ASSERT_TRUE(dataset.ok()) << dataset.status();
    const std::string reference = InstrumentedPipelineJson(*dataset, 1);
    EXPECT_FALSE(reference.empty());
    // The snapshot must carry real pipeline content, not just zeros.
    EXPECT_NE(reference.find("linking/stream/pairs_scored"),
              std::string::npos);
    EXPECT_NE(reference.find("learn/rules_emitted"), std::string::npos);
    EXPECT_NE(reference.find("linking/stream/run_length"),
              std::string::npos);
    EXPECT_NE(reference.find("quality/"), std::string::npos);
    for (std::size_t threads : {2u, 8u}) {
      SCOPED_TRACE(threads);
      EXPECT_EQ(InstrumentedPipelineJson(*dataset, threads), reference);
    }
  }
}

// Rerunning the identical serial pipeline twice must also be
// byte-identical (no iteration-order or address-dependent leakage).
TEST(MetricsDeterminismTest, SnapshotStableAcrossReruns) {
  auto dataset = datagen::DatasetGenerator(SmallConfig(7)).Generate();
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(InstrumentedPipelineJson(*dataset, 1),
            InstrumentedPipelineJson(*dataset, 1));
}

}  // namespace
}  // namespace rulelink
