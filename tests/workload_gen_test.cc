// Tests for the workload-generator suite (src/datagen/key_chooser,
// src/datagen/workload, src/datagen/typo): statistical properties of every
// KeyChooser distribution, the bit-identical-at-any-thread-count
// determinism contract of the generators, configuration validation, and
// UTF-8 code-point safety of the typo channel.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/key_chooser.h"
#include "datagen/typo.h"
#include "datagen/workload.h"
#include "text/similarity.h"
#include "util/rng.h"

namespace rulelink {
namespace {

using datagen::Distribution;
using datagen::KeyChooserConfig;

constexpr std::size_t kDraws = 200000;

std::vector<std::uint64_t> Draw(const KeyChooserConfig& config,
                                std::size_t count = kDraws,
                                std::uint64_t seed = 9001) {
  auto chooser = datagen::MakeKeyChooser(config);
  EXPECT_TRUE(chooser.ok()) << chooser.status();
  return datagen::GenerateKeyStream(*chooser.value(), seed, count,
                                    /*num_threads=*/1);
}

std::vector<std::size_t> Frequencies(const std::vector<std::uint64_t>& keys,
                                     std::size_t num_keys) {
  std::vector<std::size_t> freq(num_keys, 0);
  for (const std::uint64_t k : keys) {
    EXPECT_LT(k, num_keys);
    ++freq[k];
  }
  return freq;
}

double Mean(const std::vector<std::uint64_t>& keys) {
  double sum = 0.0;
  for (const std::uint64_t k : keys) sum += static_cast<double>(k);
  return sum / static_cast<double>(keys.size());
}

// --- Distribution statistics ----------------------------------------------

TEST(KeyChooserStatTest, UniformMeanAndCoverage) {
  KeyChooserConfig config;
  config.distribution = Distribution::kUniform;
  config.num_keys = 10000;
  const auto keys = Draw(config);
  // Mean of U[0, n-1] is (n-1)/2; the sample mean over 200k draws has a
  // standard error of ~6.5, so 1% is a >15-sigma band.
  EXPECT_NEAR(Mean(keys), 4999.5, 100.0);
  const auto freq = Frequencies(keys, config.num_keys);
  std::size_t covered = 0;
  for (const std::size_t f : freq) covered += f > 0 ? 1 : 0;
  EXPECT_GT(covered, 9999u * 19 / 20);  // almost every key seen
}

TEST(KeyChooserStatTest, ZipfianLogLogSlopeMatchesTheta) {
  KeyChooserConfig config;
  config.distribution = Distribution::kZipfian;
  config.num_keys = 1000;
  config.zipf_theta = 0.99;
  const auto freq = Frequencies(Draw(config), config.num_keys);
  // Rank-frequency least squares over the head (ranks with enough mass for
  // a stable frequency estimate): log f(r) ~ c - theta * log(r+1).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  std::size_t m = 0;
  for (std::size_t r = 0; r < 50; ++r) {
    ASSERT_GT(freq[r], 0u) << "head rank " << r << " never drawn";
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(freq[r]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++m;
  }
  const double slope = (static_cast<double>(m) * sxy - sx * sy) /
                       (static_cast<double>(m) * sxx - sx * sx);
  EXPECT_NEAR(slope, -config.zipf_theta, 0.15);
  // Monotone head: rank 0 strictly dominates.
  EXPECT_GT(freq[0], freq[10]);
  EXPECT_GT(freq[10], freq[200]);
}

TEST(KeyChooserStatTest, ScrambledZipfianScattersThePopularKeys) {
  KeyChooserConfig config;
  config.num_keys = 1000;
  config.zipf_theta = 0.99;
  config.distribution = Distribution::kZipfian;
  const auto plain = Frequencies(Draw(config), config.num_keys);
  config.distribution = Distribution::kScrambledZipfian;
  const auto scrambled = Frequencies(Draw(config), config.num_keys);

  // Same popularity profile: the hottest key's frequency matches the
  // zipfian rank-0 frequency (both estimate the same zipf head mass).
  const std::size_t plain_top = *std::max_element(plain.begin(), plain.end());
  const std::size_t scrambled_top =
      *std::max_element(scrambled.begin(), scrambled.end());
  EXPECT_NEAR(static_cast<double>(scrambled_top),
              static_cast<double>(plain_top),
              0.2 * static_cast<double>(plain_top));

  // ...but scattered: the top-10 hottest keys are spread over the keyspace
  // instead of clustering at the low ids.
  std::vector<std::pair<std::size_t, std::size_t>> by_freq;
  for (std::size_t k = 0; k < scrambled.size(); ++k) {
    by_freq.emplace_back(scrambled[k], k);
  }
  std::sort(by_freq.rbegin(), by_freq.rend());
  std::size_t top_above_mid = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    if (by_freq[i].second >= config.num_keys / 2) ++top_above_mid;
  }
  EXPECT_GE(top_above_mid, 2u);  // P(all 10 land low) ~ 2^-10 per mixer
}

TEST(KeyChooserStatTest, HotsetHitRatioWithinOnePercent) {
  KeyChooserConfig config;
  config.distribution = Distribution::kHotset;
  config.num_keys = 10000;
  config.hot_fraction = 0.2;
  config.hot_op_fraction = 0.8;
  const auto keys = Draw(config);
  std::size_t hot = 0;
  for (const std::uint64_t k : keys) {
    if (k < 2000) ++hot;
  }
  // Binomial(200k, 0.8) has sigma ~ 179 draws = 0.09%; +-1% is ~11 sigma.
  const double ratio =
      static_cast<double>(hot) / static_cast<double>(keys.size());
  EXPECT_NEAR(ratio, 0.8, 0.01);
}

TEST(KeyChooserStatTest, LatestSkewsTowardTheNewestKeys) {
  KeyChooserConfig config;
  config.distribution = Distribution::kLatest;
  config.num_keys = 10000;
  config.zipf_theta = 0.99;
  const auto keys = Draw(config);
  std::size_t newest_decile = 0;
  for (const std::uint64_t k : keys) {
    if (k >= 9000) ++newest_decile;
  }
  // Zipf(0.99) over distance-from-newest puts ~74% of the mass on the
  // newest 10% of the keyspace.
  EXPECT_GT(static_cast<double>(newest_decile) /
                static_cast<double>(keys.size()),
            0.6);
  EXPECT_GT(Mean(keys), 0.75 * static_cast<double>(config.num_keys));
}

TEST(KeyChooserStatTest, ExponentialMeanMatchesParameterization) {
  KeyChooserConfig config;
  config.distribution = Distribution::kExponential;
  config.num_keys = 10000;
  config.exp_percentile = 0.95;
  config.exp_fraction = 0.3;
  const auto keys = Draw(config);
  // gamma = -ln(1 - 0.95) / (0.3 * 10000); the (truncated) mean is ~1/gamma
  // ~= 1001. Sample std error is ~2.2, so 5% is a wide band.
  const double expected_mean =
      0.3 * 10000.0 / std::log(1.0 / (1.0 - 0.95));
  EXPECT_NEAR(Mean(keys), expected_mean, 0.05 * expected_mean);
  // The parameterization itself: ~95% of draws inside the first 30%.
  std::size_t inside = 0;
  for (const std::uint64_t k : keys) {
    if (k < 3000) ++inside;
  }
  EXPECT_NEAR(static_cast<double>(inside) / static_cast<double>(keys.size()),
              0.95, 0.01);
}

TEST(KeyChooserStatTest, HistogramChiSquareAgainstConfiguredWeights) {
  KeyChooserConfig config;
  config.distribution = Distribution::kHistogram;
  config.num_keys = 8000;
  config.histogram_weights = {4.0, 3.0, 2.0, 1.0};
  const auto keys = Draw(config);
  const std::size_t bucket_width = 2000;
  std::vector<std::size_t> observed(4, 0);
  for (const std::uint64_t k : keys) ++observed[k / bucket_width];
  const double expected[] = {0.4, 0.3, 0.2, 0.1};
  double chi2 = 0.0;
  for (std::size_t b = 0; b < 4; ++b) {
    const double e = expected[b] * static_cast<double>(keys.size());
    const double d = static_cast<double>(observed[b]) - e;
    chi2 += d * d / e;
  }
  // dof = 3; the 99.9th percentile of chi-square(3) is 16.3.
  EXPECT_LT(chi2, 20.0);
  // Uniform within a bucket: the two halves of the heaviest bucket split
  // its draws evenly.
  std::size_t low_half = 0;
  for (const std::uint64_t k : keys) {
    if (k < bucket_width / 2) ++low_half;
  }
  EXPECT_NEAR(static_cast<double>(low_half) /
                  static_cast<double>(observed[0]),
              0.5, 0.02);
}

// --- Determinism ----------------------------------------------------------

TEST(KeyChooserDeterminismTest, StreamsBitIdenticalAcrossThreadCounts) {
  for (const Distribution distribution :
       {Distribution::kUniform, Distribution::kZipfian,
        Distribution::kScrambledZipfian, Distribution::kHotset,
        Distribution::kLatest, Distribution::kExponential,
        Distribution::kHistogram}) {
    KeyChooserConfig config;
    config.distribution = distribution;
    config.num_keys = 5000;
    config.histogram_weights = {2.0, 1.0, 1.0};
    auto chooser = datagen::MakeKeyChooser(config);
    ASSERT_TRUE(chooser.ok()) << chooser.status();
    const auto serial =
        datagen::GenerateKeyStream(*chooser.value(), 42, 20000, 1);
    for (const std::size_t threads : {2u, 8u}) {
      const auto parallel =
          datagen::GenerateKeyStream(*chooser.value(), 42, 20000, threads);
      EXPECT_EQ(serial, parallel)
          << chooser.value()->name() << " at " << threads << " threads";
    }
  }
}

TEST(KeyChooserDeterminismTest, DistinctSeedsGiveDistinctStreams) {
  KeyChooserConfig config;
  config.distribution = Distribution::kZipfian;
  config.num_keys = 5000;
  auto chooser = datagen::MakeKeyChooser(config);
  ASSERT_TRUE(chooser.ok()) << chooser.status();
  const auto a = datagen::GenerateKeyStream(*chooser.value(), 1, 10000, 1);
  const auto b = datagen::GenerateKeyStream(*chooser.value(), 2, 10000, 1);
  EXPECT_NE(a, b);
}

bool ItemsEqual(const core::Item& a, const core::Item& b) {
  if (a.iri != b.iri || a.facts.size() != b.facts.size()) return false;
  for (std::size_t i = 0; i < a.facts.size(); ++i) {
    if (a.facts[i].property != b.facts[i].property ||
        a.facts[i].value != b.facts[i].value) {
      return false;
    }
  }
  return true;
}

TEST(WorkloadCatalogTest, GenerationBitIdenticalAcrossThreadCounts) {
  datagen::WorkloadConfig config;
  config.catalog_size = 20000;
  config.num_epochs = 3;
  config.drift_leaf_fraction = 0.3;
  auto serial = datagen::GenerateWorkloadCatalog(config, 1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (const std::size_t threads : {2u, 8u}) {
    auto parallel = datagen::GenerateWorkloadCatalog(config, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ASSERT_EQ(serial.value().items.size(), parallel.value().items.size());
    for (std::size_t i = 0; i < serial.value().items.size(); ++i) {
      ASSERT_TRUE(
          ItemsEqual(serial.value().items[i], parallel.value().items[i]))
          << "item " << i << " at " << threads << " threads";
    }
    EXPECT_EQ(serial.value().classes, parallel.value().classes);
    EXPECT_EQ(serial.value().epochs, parallel.value().epochs);
    EXPECT_EQ(serial.value().separators, parallel.value().separators);
  }
}

TEST(WorkloadCatalogTest, EpochsAndDriftStructure) {
  datagen::WorkloadConfig config;
  config.catalog_size = 12000;
  config.num_leaves = 30;
  config.num_classes = 60;
  config.num_epochs = 3;
  config.drift_leaf_fraction = 0.4;
  auto result = datagen::GenerateWorkloadCatalog(config, 0);
  ASSERT_TRUE(result.ok()) << result.status();
  const datagen::WorkloadCatalog& catalog = result.value();

  // Epochs are non-decreasing in insertion order and cover all of
  // [0, num_epochs).
  for (std::size_t i = 1; i < catalog.epochs.size(); ++i) {
    EXPECT_LE(catalog.epochs[i - 1], catalog.epochs[i]);
  }
  EXPECT_EQ(catalog.epochs.front(), 0u);
  EXPECT_EQ(catalog.epochs.back(), config.num_epochs - 1);

  // The drift plan took effect: some leaves first appear in epoch >= 1,
  // and no item of a drifted leaf is generated before its first epoch.
  std::size_t drifted = 0;
  for (const std::uint32_t e : catalog.first_epoch_of_leaf) {
    if (e > 0) ++drifted;
  }
  EXPECT_GT(drifted, 0u);
  EXPECT_LT(drifted, catalog.first_epoch_of_leaf.size());
  std::map<ontology::ClassId, std::size_t> leaf_index;
  for (std::size_t l = 0; l < catalog.taxonomy.leaves.size(); ++l) {
    leaf_index[catalog.taxonomy.leaves[l]] = l;
  }
  for (std::size_t i = 0; i < catalog.items.size(); ++i) {
    const std::size_t leaf = leaf_index.at(catalog.classes[i]);
    EXPECT_GE(catalog.epochs[i], catalog.first_epoch_of_leaf[leaf])
        << "item " << i << " predates its leaf's first epoch";
  }
}

TEST(QueryStreamTest, GenerationBitIdenticalAcrossThreadCounts) {
  datagen::WorkloadConfig catalog_config;
  catalog_config.catalog_size = 10000;
  auto catalog = datagen::GenerateWorkloadCatalog(catalog_config, 0);
  ASSERT_TRUE(catalog.ok()) << catalog.status();

  datagen::QueryStreamConfig config;
  config.num_queries = 8000;
  config.chooser.distribution = Distribution::kHotset;
  config.typo_prob = 0.1;
  config.truncate_prob = 0.05;
  auto serial = datagen::GenerateQueryStream(catalog.value(), config, 1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (const std::size_t threads : {2u, 8u}) {
    auto parallel =
        datagen::GenerateQueryStream(catalog.value(), config, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ASSERT_EQ(serial.value().queries.size(), parallel.value().queries.size());
    for (std::size_t j = 0; j < serial.value().queries.size(); ++j) {
      ASSERT_TRUE(ItemsEqual(serial.value().queries[j],
                             parallel.value().queries[j]))
          << "query " << j << " at " << threads << " threads";
      EXPECT_EQ(serial.value().gold[j].catalog_index,
                parallel.value().gold[j].catalog_index);
    }
  }
  // Gold targets are in range and the skew reached the stream: the hot
  // fifth of the catalog receives most of the queries.
  std::size_t hot = 0;
  for (const datagen::GoldLink& g : serial.value().gold) {
    ASSERT_LT(g.catalog_index, catalog.value().items.size());
    if (g.catalog_index < 2000) ++hot;
  }
  EXPECT_GT(hot, serial.value().queries.size() / 2);
}

// --- Configuration validation ---------------------------------------------

TEST(KeyChooserConfigTest, RejectsInvalidConfigurations) {
  KeyChooserConfig config;
  config.num_keys = 0;
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());

  config.num_keys = 100;
  config.distribution = Distribution::kZipfian;
  config.zipf_theta = 1.5;
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());
  config.zipf_theta = 0.0;
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());

  config = KeyChooserConfig();
  config.num_keys = 100;
  config.distribution = Distribution::kHotset;
  config.hot_fraction = 0.0;
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());
  config.hot_fraction = 0.2;
  config.hot_op_fraction = 1.5;
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());

  config = KeyChooserConfig();
  config.num_keys = 100;
  config.distribution = Distribution::kExponential;
  config.exp_percentile = 1.0;
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());

  config = KeyChooserConfig();
  config.num_keys = 100;
  config.distribution = Distribution::kHistogram;
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());  // empty weights
  config.histogram_weights = {1.0, -1.0};
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());
  config.histogram_weights = {0.0, 0.0};
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());
  config.histogram_weights.assign(101, 1.0);
  EXPECT_FALSE(datagen::MakeKeyChooser(config).ok());

  config.histogram_weights = {3.0, 1.0};
  auto ok = datagen::MakeKeyChooser(config);
  EXPECT_TRUE(ok.ok()) << ok.status();
}

// --- UTF-8 typo channel ---------------------------------------------------

bool IsValidUtf8(const std::string& s) {
  std::size_t i = 0;
  while (i < s.size()) {
    const auto b = static_cast<unsigned char>(s[i]);
    std::size_t len = 0;
    if (b < 0x80) {
      len = 1;
    } else if ((b & 0xE0) == 0xC0) {
      len = 2;
    } else if ((b & 0xF0) == 0xE0) {
      len = 3;
    } else if ((b & 0xF8) == 0xF0) {
      len = 4;
    } else {
      return false;
    }
    if (i + len > s.size()) return false;
    for (std::size_t k = 1; k < len; ++k) {
      if ((static_cast<unsigned char>(s[i + k]) & 0xC0) != 0x80) return false;
    }
    i += len;
  }
  return true;
}

std::size_t CountCodePoints(const std::string& s) {
  std::size_t n = 0;
  for (const char c : s) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++n;
  }
  return n;
}

TEST(TypoUtf8Test, AccentedPartNamesStayValidUtf8) {
  const std::string original = "R\xC3\x89SISTANCE-47\xCE\xA9";  // RÉSISTANCE-47Ω
  ASSERT_TRUE(IsValidUtf8(original));
  const std::size_t cps = CountCodePoints(original);
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    util::Rng rng(seed);
    const std::string mutated = datagen::ApplyTypo(original, &rng);
    EXPECT_TRUE(IsValidUtf8(mutated)) << "seed " << seed << ": " << mutated;
    const std::size_t mutated_cps = CountCodePoints(mutated);
    EXPECT_LE(mutated_cps, cps + 1) << "seed " << seed;
    EXPECT_GE(mutated_cps + 1, cps) << "seed " << seed;
  }
}

TEST(TypoUtf8Test, CjkPartNamesStayValidUtf8) {
  const std::string original =
      "\xE6\x8A\xB5\xE6\x8A\x97\xE5\x99\xA8-100";  // 抵抗器-100
  ASSERT_TRUE(IsValidUtf8(original));
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    util::Rng rng(seed);
    const std::string mutated = datagen::ApplyTypo(original, &rng);
    EXPECT_TRUE(IsValidUtf8(mutated)) << "seed " << seed << ": " << mutated;
  }
}

TEST(TypoUtf8Test, SingleMultiByteCodePointNeverSplit) {
  const std::string original = "\xCE\xA9";  // Ω: 1 code point, 2 bytes
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(seed);
    const std::string mutated = datagen::ApplyTypo(original, &rng);
    EXPECT_TRUE(IsValidUtf8(mutated)) << "seed " << seed;
    EXPECT_FALSE(mutated.empty());  // < 2 cps: no deletions
  }
}

// The byte-level editor the UTF-8 implementation replaced. For pure-ASCII
// input ApplyTypo must consume the same draws and produce the same bytes,
// or every seeded corpus (and the calibrated bench numbers) would shift.
std::string ByteLevelReferenceTypo(const std::string& s, util::Rng* rng) {
  static constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const auto random_char = [&] {
    return kAlphabet[rng->UniformUint64(sizeof(kAlphabet) - 1)];
  };
  std::string out = s;
  if (out.empty()) {
    out.push_back(random_char());
    return out;
  }
  const std::uint64_t kind =
      out.size() >= 2 ? rng->UniformUint64(4) : rng->UniformUint64(2);
  const std::size_t pos = rng->UniformUint64(out.size());
  switch (kind) {
    case 0: {
      char c = random_char();
      while (c == out[pos]) c = random_char();
      out[pos] = c;
      break;
    }
    case 1:
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                 random_char());
      break;
    case 2:
      out.erase(pos, 1);
      break;
    case 3: {
      const std::size_t i = pos + 1 < out.size() ? pos : pos - 1;
      std::swap(out[i], out[i + 1]);
      break;
    }
  }
  return out;
}

TEST(TypoUtf8Test, AsciiDrawSequenceMatchesByteLevelReference) {
  const std::string inputs[] = {"CRCW0805", "T83", "A", "10K5-RC", "XY"};
  for (const std::string& input : inputs) {
    for (std::uint64_t seed = 0; seed < 300; ++seed) {
      util::Rng actual_rng(seed);
      util::Rng reference_rng(seed);
      const std::string actual = datagen::ApplyTypo(input, &actual_rng);
      const std::string reference =
          ByteLevelReferenceTypo(input, &reference_rng);
      ASSERT_EQ(actual, reference)
          << "input " << input << " seed " << seed;
      // The generators stay in lockstep afterwards, too.
      ASSERT_EQ(actual_rng.NextUint64(), reference_rng.NextUint64())
          << "input " << input << " seed " << seed;
    }
  }
}

TEST(TypoUtf8Test, AsciiEditsStaySingleDamerauEdit) {
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    util::Rng rng(seed);
    const std::string original = "CRCW0805";
    const std::string mutated = datagen::ApplyTypo(original, &rng);
    EXPECT_NE(mutated, original) << "seed " << seed;
    EXPECT_LE(text::DamerauLevenshteinDistance(original, mutated), 1u)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rulelink
