#include "blocking/rule_blocker.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "text/segmenter.h"
#include "util/interner.h"
#include "util/logging.h"

namespace rulelink::blocking {
namespace {

class RuleBlockerTest : public ::testing::Test {
 protected:
  RuleBlockerTest() {
    root_ = onto_.AddClass("ex:Root");
    a_ = onto_.AddClass("ex:A");
    a1_ = onto_.AddClass("ex:A1");
    b_ = onto_.AddClass("ex:B");
    RL_CHECK_OK(onto_.AddSubClassOf(a_, root_));
    RL_CHECK_OK(onto_.AddSubClassOf(a1_, a_));
    RL_CHECK_OK(onto_.AddSubClassOf(b_, root_));
    RL_CHECK_OK(onto_.Finalize());

    properties_.Intern("pn");
    std::vector<core::ClassificationRule> rules;
    util::StringInterner segments;
    core::ClassificationRule ra;
    ra.property = 0;
    ra.segment = segments.Intern("AAA");
    ra.cls = a_;
    ra.counts = core::RuleCounts{10, 10, 10, 100};
    ra.ComputeMeasures();
    rules.push_back(ra);
    core::ClassificationRule rb = ra;
    rb.segment = segments.Intern("BBB");
    rb.cls = b_;
    rb.counts = core::RuleCounts{10, 12, 8, 100};  // confidence 0.8
    rb.ComputeMeasures();
    rules.push_back(rb);
    set_ = std::make_unique<core::RuleSet>(std::move(rules), properties_,
                                           segments);
    classifier_ =
        std::make_unique<core::RuleClassifier>(set_.get(), &segmenter_);

    // Local items: l0:A, l1:A1, l2:B, l3 untyped.
    local_ = {MakeItem("l0", "x"), MakeItem("l1", "x"), MakeItem("l2", "x"),
              MakeItem("l3", "x")};
    local_classes_ = {a_, a1_, b_, ontology::kInvalidClassId};
  }

  static core::Item MakeItem(const std::string& iri, const std::string& pn) {
    core::Item item;
    item.iri = iri;
    item.facts.push_back(core::PropertyValue{"pn", pn});
    return item;
  }

  ontology::Ontology onto_;
  ontology::ClassId root_, a_, a1_, b_;
  core::PropertyCatalog properties_;
  std::unique_ptr<core::RuleSet> set_;
  text::SeparatorSegmenter segmenter_;
  std::unique_ptr<core::RuleClassifier> classifier_;
  std::vector<core::Item> local_;
  std::vector<ontology::ClassId> local_classes_;
};

TEST_F(RuleBlockerTest, CandidatesAreClassSubsumedInstances) {
  const RuleBlocker blocker(classifier_.get(), &onto_, &local_classes_);
  const auto pairs = blocker.Generate({MakeItem("e0", "AAA-1")}, local_);
  // Class A covers l0 and (via A1) l1, but not l2 or l3.
  const std::set<CandidatePair> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got.size(), 2u);
  EXPECT_TRUE(got.count(CandidatePair{0, 0}));
  EXPECT_TRUE(got.count(CandidatePair{0, 1}));
}

TEST_F(RuleBlockerTest, UnclassifiedSkippedByDefault) {
  const RuleBlocker blocker(classifier_.get(), &onto_, &local_classes_);
  EXPECT_TRUE(blocker.Generate({MakeItem("e0", "ZZZ")}, local_).empty());
}

TEST_F(RuleBlockerTest, UnclassifiedCompareAllFallback) {
  const RuleBlocker blocker(classifier_.get(), &onto_, &local_classes_, 0.0,
                            /*compare_all_when_unclassified=*/true);
  EXPECT_EQ(blocker.Generate({MakeItem("e0", "ZZZ")}, local_).size(), 4u);
}

TEST_F(RuleBlockerTest, MinConfidenceProunesLowRules) {
  const RuleBlocker blocker(classifier_.get(), &onto_, &local_classes_,
                            /*min_confidence=*/0.9);
  // BBB's rule has confidence 0.8, below the bar.
  EXPECT_TRUE(blocker.Generate({MakeItem("e0", "BBB-1")}, local_).empty());
}

TEST_F(RuleBlockerTest, MultipleExternalItemsIndependent) {
  const RuleBlocker blocker(classifier_.get(), &onto_, &local_classes_);
  const auto pairs = blocker.Generate(
      {MakeItem("e0", "AAA-1"), MakeItem("e1", "BBB-2")}, local_);
  const std::set<CandidatePair> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got.size(), 3u);
  EXPECT_TRUE(got.count(CandidatePair{1, 2}));  // e1 -> B -> l2
  EXPECT_FALSE(got.count(CandidatePair{1, 0}));
}

TEST_F(RuleBlockerTest, UnionWhenBothRulesFire) {
  const RuleBlocker blocker(classifier_.get(), &onto_, &local_classes_);
  const auto pairs =
      blocker.Generate({MakeItem("e0", "AAA-BBB")}, local_);
  EXPECT_EQ(pairs.size(), 3u);  // l0, l1, l2 deduplicated
}

}  // namespace
}  // namespace rulelink::blocking
