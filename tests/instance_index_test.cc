#include "ontology/instance_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "rdf/turtle.h"

namespace rulelink::ontology {
namespace {

class InstanceIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto status = rdf::ParseTurtle(
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
        "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
        "@prefix ex: <http://e/> .\n"
        "ex:Passive a owl:Class .\n"
        "ex:R rdfs:subClassOf ex:Passive .\n"
        "ex:C rdfs:subClassOf ex:Passive .\n"
        "ex:i1 a ex:R .\n"
        "ex:i2 a ex:R .\n"
        "ex:i3 a ex:C .\n"
        "ex:i4 a ex:Passive .\n"
        // i5 is typed with both a class and its superclass: only the most
        // specific must remain.
        "ex:i5 a ex:R ; a ex:Passive .\n"
        // i6 is typed with an unknown class: ignored entirely.
        "ex:i6 a ex:Unknown .\n",
        &graph_);
    ASSERT_TRUE(status.ok()) << status;
    auto onto_or = Ontology::FromGraph(graph_);
    ASSERT_TRUE(onto_or.ok());
    onto_ = std::move(onto_or).value();
  }

  rdf::Graph graph_;
  Ontology onto_;
};

TEST_F(InstanceIndexTest, CountsTypedInstances) {
  const auto index = InstanceIndex::Build(graph_, onto_);
  EXPECT_EQ(index.instances().size(), 5u);  // i1..i5 (i6 unknown class)
}

TEST_F(InstanceIndexTest, ClassesOfIri) {
  const auto index = InstanceIndex::Build(graph_, onto_);
  const ClassId r = onto_.FindByIri("http://e/R");
  const auto& classes = index.ClassesOfIri("http://e/i1");
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], r);
  EXPECT_TRUE(index.ClassesOfIri("http://e/i6").empty());
  EXPECT_TRUE(index.ClassesOfIri("http://e/never-seen").empty());
}

TEST_F(InstanceIndexTest, MultiTypedReducedToMostSpecific) {
  const auto index = InstanceIndex::Build(graph_, onto_);
  const ClassId r = onto_.FindByIri("http://e/R");
  const auto& classes = index.ClassesOfIri("http://e/i5");
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0], r);
}

TEST_F(InstanceIndexTest, DirectExtent) {
  const auto index = InstanceIndex::Build(graph_, onto_);
  const ClassId r = onto_.FindByIri("http://e/R");
  const ClassId passive = onto_.FindByIri("http://e/Passive");
  EXPECT_EQ(index.DirectExtentSize(r), 3u);        // i1, i2, i5
  // Direct extent of Passive: i4 plus i5's (pre-reduction) assertion.
  EXPECT_EQ(index.DirectExtentSize(passive), 2u);
}

TEST_F(InstanceIndexTest, TransitiveExtentIncludesDescendants) {
  const auto index = InstanceIndex::Build(graph_, onto_);
  const ClassId passive = onto_.FindByIri("http://e/Passive");
  const auto extent = index.TransitiveExtent(passive);
  EXPECT_EQ(extent.size(), 5u);  // all typed instances, deduplicated
}

TEST_F(InstanceIndexTest, TransitiveExtentOfLeafEqualsDirect) {
  const auto index = InstanceIndex::Build(graph_, onto_);
  const ClassId c = onto_.FindByIri("http://e/C");
  EXPECT_EQ(index.TransitiveExtentSize(c), index.DirectExtentSize(c));
}

TEST_F(InstanceIndexTest, UnknownClassHasEmptyExtent) {
  const auto index = InstanceIndex::Build(graph_, onto_);
  const ClassId r = onto_.FindByIri("http://e/R");
  (void)r;
  // A class id with no instances.
  Ontology fresh;
  const ClassId lonely = fresh.AddClass("x");
  ASSERT_TRUE(fresh.Finalize().ok());
  rdf::Graph empty;
  const auto empty_index = InstanceIndex::Build(empty, fresh);
  EXPECT_TRUE(empty_index.DirectExtent(lonely).empty());
  EXPECT_TRUE(empty_index.instances().empty());
}

TEST_F(InstanceIndexTest, IriOfRoundTrip) {
  const auto index = InstanceIndex::Build(graph_, onto_);
  for (rdf::TermId instance : index.instances()) {
    EXPECT_FALSE(index.IriOf(instance).empty());
    EXPECT_EQ(&index.ClassesOfIri(index.IriOf(instance)),
              &index.ClassesOf(instance));
  }
}

}  // namespace
}  // namespace rulelink::ontology
