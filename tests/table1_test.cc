#include "eval/table1.h"

#include <memory>

#include <gtest/gtest.h>

#include "text/segmenter.h"
#include "util/interner.h"
#include "util/logging.h"

namespace rulelink::eval {
namespace {

using core::ClassificationRule;
using core::PropertyCatalog;
using core::RuleCounts;
using core::RuleSet;

// Shared symbol table for hand-built test rules; RuleSet re-interns
// compactly, so sharing ids across fixtures is harmless.
rulelink::util::StringInterner& TestSegments() {
  static rulelink::util::StringInterner* interner = new rulelink::util::StringInterner();
  return *interner;
}

ClassificationRule MakeRule(const std::string& segment,
                            ontology::ClassId cls, std::size_t premise,
                            std::size_t class_count, std::size_t joint,
                            std::size_t total) {
  ClassificationRule rule;
  rule.property = 0;
  rule.segment = TestSegments().Intern(segment);
  rule.cls = cls;
  rule.counts = RuleCounts{premise, class_count, joint, total};
  rule.ComputeMeasures();
  return rule;
}

// Controlled corpus: class A (6 items, segment AAA pure), class B (4 items,
// segment BBB at confidence 0.8 because one C item also carries BBB),
// class C (2 items, infrequent at th = 0.25).
class Table1Test : public ::testing::Test {
 protected:
  Table1Test() {
    a_ = onto_.AddClass("ex:A");
    b_ = onto_.AddClass("ex:B");
    c_ = onto_.AddClass("ex:C");
    RL_CHECK_OK(onto_.Finalize());
    ts_ = std::make_unique<core::TrainingSet>(onto_);
    // 6 x A with AAA.
    for (int i = 0; i < 6; ++i) Add("AAA-S" + std::to_string(i), a_);
    // 4 x B with BBB.
    for (int i = 0; i < 4; ++i) Add("BBB-T" + std::to_string(i), b_);
    // 2 x C, one of which also carries BBB (diluting the BBB rule).
    Add("BBB-U0", c_);
    Add("PLAIN-U1", c_);

    PropertyCatalog properties;
    properties.Intern("pn");
    std::vector<ClassificationRule> rules;
    rules.push_back(MakeRule("AAA", a_, 6, 6, 6, 12));   // conf 1
    rules.push_back(MakeRule("BBB", b_, 5, 4, 4, 12));   // conf 0.8
    set_ = std::make_unique<RuleSet>(std::move(rules), properties,
                                     TestSegments());
  }

  void Add(const std::string& pn, ontology::ClassId cls) {
    core::Item item;
    item.iri = "ext:" + std::to_string(ts_->size());
    item.facts.push_back(core::PropertyValue{"pn", pn});
    ts_->AddExample(item, "local:" + std::to_string(ts_->size()), {cls});
  }

  ontology::Ontology onto_;
  ontology::ClassId a_, b_, c_;
  std::unique_ptr<core::TrainingSet> ts_;
  std::unique_ptr<RuleSet> set_;
  text::SeparatorSegmenter segmenter_;
};

TEST_F(Table1Test, BandRuleCensus) {
  const Table1Evaluator evaluator(set_.get(), &segmenter_, 0.25);
  const auto result = evaluator.Evaluate(*ts_);
  ASSERT_EQ(result.rows.size(), 4u);
  EXPECT_EQ(result.rows[0].num_rules, 1u);  // conf 1
  EXPECT_EQ(result.rows[1].num_rules, 1u);  // conf 0.8
  EXPECT_EQ(result.rows[2].num_rules, 0u);
  EXPECT_EQ(result.rows[3].num_rules, 0u);
}

TEST_F(Table1Test, DecisionsAttributedToBestBand) {
  const Table1Evaluator evaluator(set_.get(), &segmenter_, 0.25);
  const auto result = evaluator.Evaluate(*ts_);
  EXPECT_EQ(result.rows[0].decisions, 6u);  // the AAA items
  EXPECT_EQ(result.rows[1].decisions, 5u);  // 4 B + the BBB-carrying C
  EXPECT_EQ(result.undecided_items, 1u);    // PLAIN-U1
}

TEST_F(Table1Test, CumulativePrecisionAndRecall) {
  const Table1Evaluator evaluator(set_.get(), &segmenter_, 0.25);
  const auto result = evaluator.Evaluate(*ts_);
  // Frequent classes at th=0.25 (count > 3): A (6) and B (4).
  EXPECT_EQ(result.frequent_classes, 2u);
  EXPECT_EQ(result.classifiable_items, 10u);

  // Band 0: 6/6 correct.
  EXPECT_DOUBLE_EQ(result.rows[0].precision_band, 1.0);
  EXPECT_DOUBLE_EQ(result.rows[0].precision_cumulative, 1.0);
  EXPECT_DOUBLE_EQ(result.rows[0].recall_cumulative, 0.6);
  // Band 1: 4 of 5 decisions correct (the C item is wrong).
  EXPECT_DOUBLE_EQ(result.rows[1].precision_band, 0.8);
  EXPECT_DOUBLE_EQ(result.rows[1].precision_cumulative, 10.0 / 11.0);
  EXPECT_DOUBLE_EQ(result.rows[1].recall_cumulative, 1.0);
  // Later bands inherit the cumulative values.
  EXPECT_DOUBLE_EQ(result.rows[3].recall_cumulative, 1.0);
}

TEST_F(Table1Test, AvgLiftPerBand) {
  const Table1Evaluator evaluator(set_.get(), &segmenter_, 0.25);
  const auto result = evaluator.Evaluate(*ts_);
  EXPECT_NEAR(result.rows[0].avg_lift, 2.0, 1e-9);        // 1/(6/12)
  EXPECT_NEAR(result.rows[1].avg_lift, 0.8 / (4.0 / 12.0), 1e-9);
}

TEST_F(Table1Test, CustomBands) {
  const Table1Evaluator evaluator(set_.get(), &segmenter_, 0.25);
  const auto result = evaluator.Evaluate(*ts_, {0.9, 0.5});
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].num_rules, 1u);  // conf 1 in [0.9, inf)
  EXPECT_EQ(result.rows[1].num_rules, 1u);  // conf 0.8 in [0.5, 0.9)
}

TEST_F(Table1Test, FormatIncludesPaperReference) {
  const Table1Evaluator evaluator(set_.get(), &segmenter_, 0.25);
  const auto result = evaluator.Evaluate(*ts_);
  const std::string with = FormatTable1(result, true);
  EXPECT_NE(with.find("(paper)"), std::string::npos);
  EXPECT_NE(with.find("2107"), std::string::npos);
  const std::string without = FormatTable1(result, false);
  EXPECT_EQ(without.find("2107"), std::string::npos);
}

}  // namespace
}  // namespace rulelink::eval
