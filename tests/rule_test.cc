#include "core/rule.h"

#include <memory>

#include <gtest/gtest.h>

#include "util/logging.h"

namespace rulelink::core {
namespace {

ClassificationRule MakeRule(PropertyId property, const std::string& segment,
                            ontology::ClassId cls, std::size_t premise,
                            std::size_t class_count, std::size_t joint,
                            std::size_t total) {
  ClassificationRule rule;
  rule.property = property;
  rule.segment = segment;
  rule.cls = cls;
  rule.counts = RuleCounts{premise, class_count, joint, total};
  rule.ComputeMeasures();
  return rule;
}

class RuleSetTest : public ::testing::Test {
 protected:
  RuleSetTest() {
    properties_.Intern("pn");  // PropertyId 0
    std::vector<ClassificationRule> rules;
    // conf 1.0, lift 10.
    rules.push_back(MakeRule(0, "PURE", 1, 10, 10, 10, 100));
    // conf 1.0, lift 5 (bigger class) -- same confidence, lower lift.
    rules.push_back(MakeRule(0, "PURE2", 2, 20, 20, 20, 100));
    // conf 0.5 on segment MIX, two conclusions.
    rules.push_back(MakeRule(0, "MIX", 1, 20, 10, 10, 100));
    rules.push_back(MakeRule(0, "MIX", 2, 20, 20, 10, 100));
    // conf 0.7.
    rules.push_back(MakeRule(0, "MID", 3, 10, 30, 7, 100));
    set_ = std::make_unique<RuleSet>(std::move(rules), properties_);
  }

  PropertyCatalog properties_;
  std::unique_ptr<RuleSet> set_;
};

TEST_F(RuleSetTest, SortedBestFirst) {
  const auto& rules = set_->rules();
  ASSERT_EQ(rules.size(), 5u);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_FALSE(ClassificationRule::BetterThan(rules[i], rules[i - 1]));
  }
  EXPECT_DOUBLE_EQ(rules[0].confidence, 1.0);
  EXPECT_EQ(rules[0].segment, "PURE");  // lift 10 beats lift 5
  EXPECT_EQ(rules[1].segment, "PURE2");
}

TEST_F(RuleSetTest, RulesForPremise) {
  const auto& mix = set_->RulesFor(0, "MIX");
  ASSERT_EQ(mix.size(), 2u);
  // Indexes point into the sorted rule vector.
  for (std::size_t idx : mix) {
    EXPECT_EQ(set_->rules()[idx].segment, "MIX");
  }
  EXPECT_TRUE(set_->RulesFor(0, "NOPE").empty());
  EXPECT_TRUE(set_->RulesFor(7, "MIX").empty());
}

TEST_F(RuleSetTest, WithMinConfidence) {
  EXPECT_EQ(set_->WithMinConfidence(0.0).size(), 5u);
  EXPECT_EQ(set_->WithMinConfidence(0.6).size(), 3u);
  EXPECT_EQ(set_->WithMinConfidence(1.0).size(), 2u);
  EXPECT_TRUE(set_->WithMinConfidence(1.1).empty());
}

TEST_F(RuleSetTest, InConfidenceBand) {
  EXPECT_EQ(set_->InConfidenceBand(1.0, 2.0).size(), 2u);
  EXPECT_EQ(set_->InConfidenceBand(0.6, 1.0).size(), 1u);
  EXPECT_EQ(set_->InConfidenceBand(0.4, 0.6).size(), 2u);
  EXPECT_TRUE(set_->InConfidenceBand(0.0, 0.4).empty());
}

TEST_F(RuleSetTest, BandsPartitionRules) {
  const double bounds[] = {1.0, 0.8, 0.6, 0.4, 0.0};
  std::size_t covered = 0;
  for (int b = 0; b + 1 <= 4; ++b) {
    covered += set_->InConfidenceBand(bounds[b], b == 0 ? 2.0 : bounds[b - 1])
                   .size();
  }
  EXPECT_EQ(covered, set_->size());
}

TEST(RuleOrderingTest, ConfidenceDominatesLift) {
  const auto high_conf = MakeRule(0, "A", 1, 10, 50, 9, 100);   // conf .9
  const auto high_lift = MakeRule(0, "B", 2, 10, 5, 5, 100);    // conf .5, lift 10
  EXPECT_TRUE(ClassificationRule::BetterThan(high_conf, high_lift));
}

TEST(RuleOrderingTest, LiftBreaksConfidenceTies) {
  const auto small_class = MakeRule(0, "A", 1, 10, 10, 10, 100);  // lift 10
  const auto big_class = MakeRule(0, "B", 2, 50, 50, 50, 100);    // lift 2
  EXPECT_DOUBLE_EQ(small_class.confidence, big_class.confidence);
  // Higher lift = smaller subspace first (§4.4).
  EXPECT_TRUE(ClassificationRule::BetterThan(small_class, big_class));
}

TEST(RuleOrderingTest, DeterministicFinalTieBreak) {
  const auto a = MakeRule(0, "A", 1, 10, 10, 10, 100);
  const auto b = MakeRule(0, "B", 1, 10, 10, 10, 100);
  EXPECT_TRUE(ClassificationRule::BetterThan(a, b) ||
              ClassificationRule::BetterThan(b, a));
  EXPECT_FALSE(ClassificationRule::BetterThan(a, a));
}

TEST(RuleToStringTest, RendersPaperSyntax) {
  ontology::Ontology onto;
  const auto cls = onto.AddClass("ex:FFR", "Fixed film resistance");
  RL_CHECK_OK(onto.Finalize());
  PropertyCatalog properties;
  properties.Intern("partNumber");
  const auto rule = MakeRule(0, "ohm", cls, 10, 10, 10, 100);
  const std::string s = RuleToString(rule, properties, onto);
  EXPECT_NE(s.find("partNumber(X,Y)"), std::string::npos);
  EXPECT_NE(s.find("subsegment(Y,\"ohm\")"), std::string::npos);
  EXPECT_NE(s.find("Fixed film resistance(X)"), std::string::npos);
}

TEST(PropertyCatalogTest, InternAndFind) {
  PropertyCatalog catalog;
  const PropertyId a = catalog.Intern("pn");
  EXPECT_EQ(catalog.Intern("pn"), a);
  EXPECT_EQ(catalog.Find("pn"), a);
  EXPECT_EQ(catalog.Find("other"), kInvalidPropertyId);
  EXPECT_EQ(catalog.name(a), "pn");
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(EmptyRuleSetTest, AllQueriesAreEmpty) {
  RuleSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.WithMinConfidence(0.0).empty());
  EXPECT_TRUE(empty.RulesFor(0, "x").empty());
}

}  // namespace
}  // namespace rulelink::core
