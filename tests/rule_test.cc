#include "core/rule.h"

#include <memory>

#include <gtest/gtest.h>

#include "util/interner.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

ClassificationRule MakeRule(util::StringInterner* segments,
                            PropertyId property, const std::string& segment,
                            ontology::ClassId cls, std::size_t premise,
                            std::size_t class_count, std::size_t joint,
                            std::size_t total) {
  ClassificationRule rule;
  rule.property = property;
  rule.segment = segments->Intern(segment);
  rule.cls = cls;
  rule.counts = RuleCounts{premise, class_count, joint, total};
  rule.ComputeMeasures();
  return rule;
}

class RuleSetTest : public ::testing::Test {
 protected:
  RuleSetTest() {
    properties_.Intern("pn");  // PropertyId 0
    std::vector<ClassificationRule> rules;
    // conf 1.0, lift 10.
    rules.push_back(MakeRule(&segments_, 0, "PURE", 1, 10, 10, 10, 100));
    // conf 1.0, lift 5 (bigger class) -- same confidence, lower lift.
    rules.push_back(MakeRule(&segments_, 0, "PURE2", 2, 20, 20, 20, 100));
    // conf 0.5 on segment MIX, two conclusions.
    rules.push_back(MakeRule(&segments_, 0, "MIX", 1, 20, 10, 10, 100));
    rules.push_back(MakeRule(&segments_, 0, "MIX", 2, 20, 20, 10, 100));
    // conf 0.7.
    rules.push_back(MakeRule(&segments_, 0, "MID", 3, 10, 30, 7, 100));
    set_ = std::make_unique<RuleSet>(std::move(rules), properties_,
                                     segments_);
  }

  PropertyCatalog properties_;
  util::StringInterner segments_;
  std::unique_ptr<RuleSet> set_;
};

TEST_F(RuleSetTest, SortedBestFirst) {
  const auto& rules = set_->rules();
  ASSERT_EQ(rules.size(), 5u);
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_FALSE(ClassificationRule::BetterThan(rules[i], rules[i - 1],
                                                set_->segments()));
  }
  EXPECT_DOUBLE_EQ(rules[0].confidence, 1.0);
  EXPECT_EQ(set_->segment_text(rules[0]), "PURE");  // lift 10 beats lift 5
  EXPECT_EQ(set_->segment_text(rules[1]), "PURE2");
}

TEST_F(RuleSetTest, RulesForPremise) {
  const auto& mix = set_->RulesFor(0, "MIX");
  ASSERT_EQ(mix.size(), 2u);
  // Indexes point into the sorted rule vector.
  for (std::size_t idx : mix) {
    EXPECT_EQ(set_->segment_text(set_->rules()[idx]), "MIX");
  }
  EXPECT_TRUE(set_->RulesFor(0, "NOPE").empty());
  EXPECT_TRUE(set_->RulesFor(7, "MIX").empty());
}

TEST_F(RuleSetTest, RulesForPremiseById) {
  // The id overload must agree with the string overload once the segment
  // is resolved against the set's own interner.
  const SegmentId mix_id = set_->segments().Find("MIX");
  ASSERT_NE(mix_id, kInvalidSegmentId);
  EXPECT_EQ(set_->RulesFor(0, mix_id), set_->RulesFor(0, "MIX"));
  EXPECT_EQ(set_->segments().Find("NOPE"), kInvalidSegmentId);
}

TEST_F(RuleSetTest, OwnsCompactInterner) {
  // The set's interner holds exactly the distinct rule segments, not the
  // (potentially huge) corpus table the learner built.
  EXPECT_EQ(set_->segments().size(), 4u);  // PURE PURE2 MIX MID
}

TEST_F(RuleSetTest, WithMinConfidence) {
  EXPECT_EQ(set_->WithMinConfidence(0.0).size(), 5u);
  EXPECT_EQ(set_->WithMinConfidence(0.6).size(), 3u);
  EXPECT_EQ(set_->WithMinConfidence(1.0).size(), 2u);
  EXPECT_TRUE(set_->WithMinConfidence(1.1).empty());
}

TEST_F(RuleSetTest, InConfidenceBand) {
  EXPECT_EQ(set_->InConfidenceBand(1.0, 2.0).size(), 2u);
  EXPECT_EQ(set_->InConfidenceBand(0.6, 1.0).size(), 1u);
  EXPECT_EQ(set_->InConfidenceBand(0.4, 0.6).size(), 2u);
  EXPECT_TRUE(set_->InConfidenceBand(0.0, 0.4).empty());
}

TEST_F(RuleSetTest, BandsPartitionRules) {
  const double bounds[] = {1.0, 0.8, 0.6, 0.4, 0.0};
  std::size_t covered = 0;
  for (int b = 0; b + 1 <= 4; ++b) {
    covered += set_->InConfidenceBand(bounds[b], b == 0 ? 2.0 : bounds[b - 1])
                   .size();
  }
  EXPECT_EQ(covered, set_->size());
}

TEST(RuleOrderingTest, ConfidenceDominatesLift) {
  util::StringInterner segments;
  const auto high_conf = MakeRule(&segments, 0, "A", 1, 10, 50, 9, 100);
  const auto high_lift = MakeRule(&segments, 0, "B", 2, 10, 5, 5, 100);
  EXPECT_TRUE(
      ClassificationRule::BetterThan(high_conf, high_lift, segments));
}

TEST(RuleOrderingTest, LiftBreaksConfidenceTies) {
  util::StringInterner segments;
  const auto small_class =
      MakeRule(&segments, 0, "A", 1, 10, 10, 10, 100);  // lift 10
  const auto big_class =
      MakeRule(&segments, 0, "B", 2, 50, 50, 50, 100);  // lift 2
  EXPECT_DOUBLE_EQ(small_class.confidence, big_class.confidence);
  // Higher lift = smaller subspace first (§4.4).
  EXPECT_TRUE(
      ClassificationRule::BetterThan(small_class, big_class, segments));
}

TEST(RuleOrderingTest, DeterministicFinalTieBreak) {
  util::StringInterner segments;
  const auto a = MakeRule(&segments, 0, "A", 1, 10, 10, 10, 100);
  const auto b = MakeRule(&segments, 0, "B", 1, 10, 10, 10, 100);
  EXPECT_TRUE(ClassificationRule::BetterThan(a, b, segments) ||
              ClassificationRule::BetterThan(b, a, segments));
  EXPECT_FALSE(ClassificationRule::BetterThan(a, a, segments));
}

TEST(RuleOrderingTest, SegmentTieBreakIsLexicalNotIdOrder) {
  // Intern in reverse lexical order: the ordering contract is on the
  // segment STRING, so "A" must still beat "B" even though B's id is
  // smaller.
  util::StringInterner segments;
  const auto b = MakeRule(&segments, 0, "B", 1, 10, 10, 10, 100);  // id 0
  const auto a = MakeRule(&segments, 0, "A", 1, 10, 10, 10, 100);  // id 1
  EXPECT_GT(a.segment, b.segment);
  EXPECT_TRUE(ClassificationRule::BetterThan(a, b, segments));
  EXPECT_FALSE(ClassificationRule::BetterThan(b, a, segments));
}

TEST(RuleToStringTest, RendersPaperSyntax) {
  ontology::Ontology onto;
  const auto cls = onto.AddClass("ex:FFR", "Fixed film resistance");
  RL_CHECK_OK(onto.Finalize());
  PropertyCatalog properties;
  properties.Intern("partNumber");
  util::StringInterner segments;
  std::vector<ClassificationRule> rules;
  rules.push_back(MakeRule(&segments, 0, "ohm", cls, 10, 10, 10, 100));
  const RuleSet set(std::move(rules), properties, segments);
  const std::string s = RuleToString(set.rules()[0], set, onto);
  EXPECT_NE(s.find("partNumber(X,Y)"), std::string::npos);
  EXPECT_NE(s.find("subsegment(Y,\"ohm\")"), std::string::npos);
  EXPECT_NE(s.find("Fixed film resistance(X)"), std::string::npos);
}

TEST(PropertyCatalogTest, InternAndFind) {
  PropertyCatalog catalog;
  const PropertyId a = catalog.Intern("pn");
  EXPECT_EQ(catalog.Intern("pn"), a);
  EXPECT_EQ(catalog.Find("pn"), a);
  EXPECT_EQ(catalog.Find("other"), kInvalidPropertyId);
  EXPECT_EQ(catalog.name(a), "pn");
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(EmptyRuleSetTest, AllQueriesAreEmpty) {
  RuleSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.WithMinConfidence(0.0).empty());
  EXPECT_TRUE(empty.RulesFor(0, "x").empty());
}

}  // namespace
}  // namespace rulelink::core
