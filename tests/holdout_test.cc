#include "eval/holdout.h"

#include <memory>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "util/logging.h"

namespace rulelink::eval {
namespace {

class HoldoutTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatasetConfig config;
    config.seed = 11;
    config.num_classes = 60;
    config.num_leaves = 25;
    config.catalog_size = 2400;
    config.num_links = 800;
    config.num_signal_classes = 6;
    config.num_other_frequent_classes = 8;
    config.signal_class_min_links = 40;
    config.signal_class_max_links = 80;
    config.frequent_class_min_links = 10;
    config.frequent_class_max_links = 16;
    config.tail_class_cap_links = 6;
    auto dataset = datagen::DatasetGenerator(config).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    dataset_ = new datagen::Dataset(std::move(dataset).value());
    ts_ = new core::TrainingSet(datagen::BuildTrainingSet(*dataset_));
  }

  static void TearDownTestSuite() {
    delete ts_;
    delete dataset_;
    ts_ = nullptr;
    dataset_ = nullptr;
  }

  HoldoutOptions Options() const {
    HoldoutOptions options;
    options.segmenter = &segmenter_;
    options.support_threshold = 0.01;
    return options;
  }

  static datagen::Dataset* dataset_;
  static core::TrainingSet* ts_;
  text::SeparatorSegmenter segmenter_;
};

datagen::Dataset* HoldoutTest::dataset_ = nullptr;
core::TrainingSet* HoldoutTest::ts_ = nullptr;

TEST_F(HoldoutTest, SplitSizesAreCorrect) {
  auto result = RunHoldout(*ts_, Options());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->test_size, 160u);  // 20% of 800
  EXPECT_EQ(result->train_size, 640u);
  EXPECT_EQ(result->train_size + result->test_size, ts_->size());
}

TEST_F(HoldoutTest, RulesGeneralizeToHeldOutItems) {
  auto result = RunHoldout(*ts_, Options());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->num_rules, 0u);
  EXPECT_GT(result->decided, 0u);
  // The generator's signal is real: held-out precision must be well above
  // the ~4% majority-class baseline.
  EXPECT_GT(result->precision, 0.5);
  EXPECT_GT(result->recall, 0.1);
  EXPECT_LE(result->recall, result->coverage);
}

TEST_F(HoldoutTest, DeterministicForSameSeed) {
  auto a = RunHoldout(*ts_, Options());
  auto b = RunHoldout(*ts_, Options());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->decided, b->decided);
  EXPECT_EQ(a->correct, b->correct);
  EXPECT_EQ(a->num_rules, b->num_rules);
}

TEST_F(HoldoutTest, DifferentSeedsChangeSplit) {
  auto a = RunHoldout(*ts_, Options());
  HoldoutOptions other = Options();
  other.seed = 777;
  auto b = RunHoldout(*ts_, other);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same sizes, (almost surely) different outcomes.
  EXPECT_EQ(a->test_size, b->test_size);
}

TEST_F(HoldoutTest, MinConfidenceLowersCoverageRaisesPrecision) {
  auto loose = RunHoldout(*ts_, Options());
  HoldoutOptions strict_options = Options();
  strict_options.min_confidence = 0.95;
  auto strict = RunHoldout(*ts_, strict_options);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(strict.ok());
  EXPECT_LE(strict->coverage, loose->coverage);
  EXPECT_GE(strict->precision, loose->precision - 0.05);
}

TEST_F(HoldoutTest, CrossValidationCoversEveryItemOnce) {
  auto result = RunCrossValidation(*ts_, Options(), 5);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->test_size, ts_->size());
  EXPECT_GT(result->precision, 0.5);
}

TEST_F(HoldoutTest, ErrorHandling) {
  HoldoutOptions bad = Options();
  bad.segmenter = nullptr;
  EXPECT_FALSE(RunHoldout(*ts_, bad).ok());

  bad = Options();
  bad.test_fraction = 0.0;
  EXPECT_FALSE(RunHoldout(*ts_, bad).ok());
  bad.test_fraction = 1.0;
  EXPECT_FALSE(RunHoldout(*ts_, bad).ok());

  EXPECT_FALSE(RunCrossValidation(*ts_, Options(), 1).ok());
  EXPECT_FALSE(RunCrossValidation(*ts_, Options(), ts_->size() + 1).ok());
}

}  // namespace
}  // namespace rulelink::eval
