#include "core/conjunctive.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "text/segmenter.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

// Corpus where single segments are ambiguous but pairs are decisive:
//   class A: pn contains X and mfr contains M1  (4 examples)
//   class B: pn contains X and mfr contains M2  (4 examples)
//   class C: pn contains Z                      (4 examples)
// "X" alone is 50/50 between A and B; X ∧ M1 ⇒ A with confidence 1.
// M1/M2 alone are also diluted: two C examples carry M1, two carry M2.
class ConjunctiveTest : public ::testing::Test {
 protected:
  ConjunctiveTest() {
    a_ = onto_.AddClass("ex:A", "A");
    b_ = onto_.AddClass("ex:B", "B");
    c_ = onto_.AddClass("ex:C", "C");
    RL_CHECK_OK(onto_.Finalize());
    ts_ = std::make_unique<TrainingSet>(onto_);
    for (int i = 0; i < 4; ++i) Add("X-S" + std::to_string(i), "M1", a_);
    for (int i = 0; i < 4; ++i) Add("X-T" + std::to_string(i), "M2", b_);
    Add("Z-U0", "M1", c_);
    Add("Z-U1", "M1", c_);
    Add("Z-U2", "M2", c_);
    Add("Z-U3", "M2", c_);
  }

  void Add(const std::string& pn, const std::string& mfr,
           ontology::ClassId cls) {
    Item item;
    item.iri = "ext:" + std::to_string(ts_->size());
    item.facts.push_back(PropertyValue{"pn", pn});
    item.facts.push_back(PropertyValue{"mfr", mfr});
    ts_->AddExample(item, "local:" + std::to_string(ts_->size()), {cls});
  }

  ConjunctiveLearnerOptions Options(double gain = 0.05) {
    ConjunctiveLearnerOptions options;
    options.support_threshold = 0.1;
    options.min_confidence_gain = gain;
    options.segmenter = &segmenter_;
    return options;
  }

  const ConjunctiveRule* Find(const ConjunctiveRuleSet& rules,
                              std::vector<std::string> segments,
                              ontology::ClassId cls) {
    std::sort(segments.begin(), segments.end());
    for (const auto& rule : rules.rules()) {
      if (rule.cls != cls || rule.premises.size() != segments.size()) {
        continue;
      }
      std::vector<std::string> got;
      for (const auto& p : rule.premises) got.push_back(p.segment);
      std::sort(got.begin(), got.end());
      if (got == segments) return &rule;
    }
    return nullptr;
  }

  ontology::Ontology onto_;
  ontology::ClassId a_, b_, c_;
  std::unique_ptr<TrainingSet> ts_;
  text::SeparatorSegmenter segmenter_;
};

TEST_F(ConjunctiveTest, PairRuleResolvesAmbiguity) {
  auto rules = LearnConjunctiveRules(*ts_, Options());
  ASSERT_TRUE(rules.ok()) << rules.status();
  const ConjunctiveRule* pair = Find(*rules, {"X", "M1"}, a_);
  ASSERT_NE(pair, nullptr);
  EXPECT_DOUBLE_EQ(pair->confidence, 1.0);
  EXPECT_EQ(pair->counts.premise_count, 4u);
  EXPECT_EQ(pair->counts.joint_count, 4u);

  // The ambiguous single rule is still there, at confidence 0.5.
  const ConjunctiveRule* single = Find(*rules, {"X"}, a_);
  ASSERT_NE(single, nullptr);
  EXPECT_DOUBLE_EQ(single->confidence, 0.5);
}

TEST_F(ConjunctiveTest, GainGateSuppressesUselessPairs) {
  // X ∧ S0 ⇒ A has confidence 1 but support 1/12 < th: never emitted.
  // Z ∧ M1 ⇒ C (confidence 0.5... actually 2/2 = 1.0) — Z alone already
  // gives C with confidence 1, so the pair adds no gain and is dropped.
  auto rules = LearnConjunctiveRules(*ts_, Options());
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(Find(*rules, {"Z", "M1"}, c_), nullptr);
  EXPECT_NE(Find(*rules, {"Z"}, c_), nullptr);
}

TEST_F(ConjunctiveTest, ClassifierPrefersDecisivePair) {
  auto rules = LearnConjunctiveRules(*ts_, Options());
  ASSERT_TRUE(rules.ok());
  Item item;
  item.iri = "ext:new";
  item.facts.push_back(PropertyValue{"pn", "X-999"});
  item.facts.push_back(PropertyValue{"mfr", "M1"});
  const auto predictions = rules->Classify(item, segmenter_);
  ASSERT_FALSE(predictions.empty());
  EXPECT_EQ(predictions.front().cls, a_);
  EXPECT_DOUBLE_EQ(predictions.front().confidence, 1.0);
  // The fired rule is the 2-premise one.
  EXPECT_EQ(rules->rules()[predictions.front().rule_index].premises.size(),
            2u);
}

TEST_F(ConjunctiveTest, ClassifierWithOnlyOnePremiseHeldFallsBack) {
  auto rules = LearnConjunctiveRules(*ts_, Options());
  ASSERT_TRUE(rules.ok());
  Item item;
  item.iri = "ext:new";
  item.facts.push_back(PropertyValue{"pn", "X-1000"});  // no mfr fact
  const auto predictions = rules->Classify(item, segmenter_);
  ASSERT_FALSE(predictions.empty());
  // Only the ambiguous single rules fire: confidence 0.5.
  EXPECT_DOUBLE_EQ(predictions.front().confidence, 0.5);
}

TEST_F(ConjunctiveTest, MinConfidenceFilterInClassify) {
  auto rules = LearnConjunctiveRules(*ts_, Options());
  ASSERT_TRUE(rules.ok());
  Item item;
  item.iri = "ext:new";
  item.facts.push_back(PropertyValue{"pn", "X-1"});
  EXPECT_TRUE(rules->Classify(item, segmenter_, 0.9).empty());
}

TEST_F(ConjunctiveTest, PremiseCountCensus) {
  auto rules = LearnConjunctiveRules(*ts_, Options());
  ASSERT_TRUE(rules.ok());
  EXPECT_GT(rules->CountWithPremises(1), 0u);
  EXPECT_GT(rules->CountWithPremises(2), 0u);
  EXPECT_EQ(rules->CountWithPremises(1) + rules->CountWithPremises(2),
            rules->size());
}

TEST_F(ConjunctiveTest, HigherGainDropsMorePairs) {
  auto low = LearnConjunctiveRules(*ts_, Options(0.05));
  auto high = LearnConjunctiveRules(*ts_, Options(0.95));
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_GE(low->CountWithPremises(2), high->CountWithPremises(2));
}

TEST_F(ConjunctiveTest, RuleToString) {
  auto rules = LearnConjunctiveRules(*ts_, Options());
  ASSERT_TRUE(rules.ok());
  const ConjunctiveRule* pair = Find(*rules, {"X", "M1"}, a_);
  ASSERT_NE(pair, nullptr);
  const std::string s =
      ConjunctiveRuleToString(*pair, rules->properties(), onto_);
  EXPECT_NE(s.find("subsegment"), std::string::npos);
  EXPECT_NE(s.find("⇒ A(X)"), std::string::npos);
  EXPECT_NE(s.find("∧"), std::string::npos);
}

TEST_F(ConjunctiveTest, Errors) {
  ConjunctiveLearnerOptions options;  // null segmenter
  EXPECT_FALSE(LearnConjunctiveRules(*ts_, options).ok());
  options.segmenter = &segmenter_;
  options.support_threshold = 0.0;
  EXPECT_FALSE(LearnConjunctiveRules(*ts_, options).ok());
  TrainingSet empty(onto_);
  options.support_threshold = 0.1;
  EXPECT_FALSE(LearnConjunctiveRules(empty, options).ok());
}

}  // namespace
}  // namespace rulelink::core
