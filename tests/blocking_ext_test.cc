// Tests for the extended blocking family: adaptive sorted neighbourhood,
// suffix blocking, and key discovery.
#include <set>

#include <gtest/gtest.h>

#include "blocking/adaptive_sn.h"
#include "blocking/key_discovery.h"
#include "blocking/suffix_blocking.h"

namespace rulelink::blocking {
namespace {

core::Item MakeItem(const std::string& iri, const std::string& pn) {
  core::Item item;
  item.iri = iri;
  item.facts.push_back(core::PropertyValue{"pn", pn});
  return item;
}

TEST(AdaptiveSnTest, SimilarNeighboursShareABlock) {
  const std::vector<core::Item> external = {MakeItem("e0", "crcw0805a")};
  const std::vector<core::Item> local = {
      MakeItem("l0", "crcw0805b"),   // adjacent and similar
      MakeItem("l1", "zzz999")};     // sorted far away
  const AdaptiveSortedNeighbourhoodBlocker blocker("pn", 0.85);
  const auto pairs = blocker.Generate(external, local);
  const std::set<CandidatePair> got(pairs.begin(), pairs.end());
  EXPECT_TRUE(got.count(CandidatePair{0, 0}));
  EXPECT_FALSE(got.count(CandidatePair{0, 1}));
}

TEST(AdaptiveSnTest, DissimilarBoundaryCutsTheBlock) {
  // Three keys sorted as: aaa1(e) aaa2(l) qqq9(l). JW(aaa1, aaa2) = 0.883
  // keeps the first two together at boundary 0.85; JW(aaa2, qqq9) = 0
  // cuts before the third.
  const std::vector<core::Item> external = {MakeItem("e0", "aaa1")};
  const std::vector<core::Item> local = {MakeItem("l0", "aaa2"),
                                         MakeItem("l1", "qqq9")};
  const auto pairs = AdaptiveSortedNeighbourhoodBlocker("pn", 0.85)
                         .Generate(external, local);
  const std::set<CandidatePair> got(pairs.begin(), pairs.end());
  EXPECT_TRUE(got.count(CandidatePair{0, 0}));
  EXPECT_FALSE(got.count(CandidatePair{0, 1}));
}

TEST(AdaptiveSnTest, IndependentBlocksPairIndependently) {
  // Sorted keys: aab(e) abb(l) mma(e) mmb(l) — two similarity islands.
  const std::vector<core::Item> external = {MakeItem("e0", "aab"),
                                            MakeItem("e1", "mma")};
  const std::vector<core::Item> local = {MakeItem("l0", "abb"),
                                         MakeItem("l1", "mmb")};
  const auto pairs = AdaptiveSortedNeighbourhoodBlocker("pn", 0.5)
                         .Generate(external, local);
  const std::set<CandidatePair> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got.size(), 2u);
  EXPECT_TRUE(got.count(CandidatePair{0, 0}));
  EXPECT_TRUE(got.count(CandidatePair{1, 1}));
}

TEST(AdaptiveSnTest, MaxBlockCapsDegenerateRuns) {
  std::vector<core::Item> external, local;
  for (int i = 0; i < 30; ++i) {
    external.push_back(MakeItem("e" + std::to_string(i), "same"));
    local.push_back(MakeItem("l" + std::to_string(i), "same"));
  }
  const auto capped = AdaptiveSortedNeighbourhoodBlocker("pn", 0.5, 10)
                          .Generate(external, local);
  const auto uncapped = AdaptiveSortedNeighbourhoodBlocker("pn", 0.5, 1000)
                            .Generate(external, local);
  EXPECT_LT(capped.size(), uncapped.size());
  EXPECT_EQ(uncapped.size(), 900u);  // full 30x30
}

TEST(SuffixBlockerTest, SharedSuffixPairs) {
  // Provider glues a manufacturer prefix in front of the catalog's core
  // part number: prefix blocking fails, suffix blocking succeeds.
  const std::vector<core::Item> external = {
      MakeItem("e0", "VOLTRON-CRCW0805")};
  const std::vector<core::Item> local = {MakeItem("l0", "CRCW0805"),
                                         MakeItem("l1", "T83106")};
  const SuffixBlocker blocker("pn", 6);
  const auto pairs = blocker.Generate(external, local);
  const std::set<CandidatePair> got(pairs.begin(), pairs.end());
  EXPECT_TRUE(got.count(CandidatePair{0, 0}));
  EXPECT_FALSE(got.count(CandidatePair{0, 1}));
}

TEST(SuffixBlockerTest, ShortKeysProduceNothing) {
  const SuffixBlocker blocker("pn", 6);
  EXPECT_TRUE(blocker
                  .Generate({MakeItem("e0", "abc")},
                            {MakeItem("l0", "abc")})
                  .empty());
}

TEST(SuffixBlockerTest, CommonSuffixesAreDropped) {
  // Every key ends in "-rohs" (> max_block records share the suffix), so
  // that suffix must not explode the candidate set.
  std::vector<core::Item> external, local;
  for (int i = 0; i < 10; ++i) {
    external.push_back(
        MakeItem("e" + std::to_string(i),
                 "AAA" + std::to_string(i * 1000 + 111) + "-rohs"));
    local.push_back(
        MakeItem("l" + std::to_string(i),
                 "BBB" + std::to_string(i * 1000 + 222) + "-rohs"));
  }
  const SuffixBlocker blocker("pn", 5, /*max_block_size=*/6);
  const auto pairs = blocker.Generate(external, local);
  // "-rohs" is ubiquitous and dropped; distinct serial cores don't match.
  EXPECT_TRUE(pairs.empty());
}

TEST(SuffixBlockerTest, IdenticalKeysPair) {
  const SuffixBlocker blocker("pn", 4);
  const auto pairs = blocker.Generate({MakeItem("e0", "abcdef")},
                                      {MakeItem("l0", "abcdef")});
  ASSERT_EQ(pairs.size(), 1u);
}

TEST(KeyDiscoveryTest, RanksUniqueCoveringPropertyFirst) {
  std::vector<core::Item> items;
  for (int i = 0; i < 20; ++i) {
    core::Item item;
    item.iri = "i" + std::to_string(i);
    item.facts.push_back({"pn", "PN" + std::to_string(i)});  // unique
    item.facts.push_back({"mfr", i % 2 ? "Volt" : "Tek"});   // 2 values
    if (i < 10) item.facts.push_back({"note", "N" + std::to_string(i)});
    items.push_back(std::move(item));
  }
  const auto ranked = DiscoverKeys(items);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].property, "pn");
  EXPECT_DOUBLE_EQ(ranked[0].uniqueness, 1.0);
  EXPECT_DOUBLE_EQ(ranked[0].coverage, 1.0);
  EXPECT_DOUBLE_EQ(ranked[0].score, 1.0);
  // "note" is unique but only half-covering; "mfr" covers but repeats.
  EXPECT_EQ(ranked[1].property, "note");
  EXPECT_DOUBLE_EQ(ranked[1].score, 0.5);
  EXPECT_EQ(ranked[2].property, "mfr");
  EXPECT_DOUBLE_EQ(ranked[2].uniqueness, 0.1);
  EXPECT_EQ(BestKeyProperty(items), "pn");
}

TEST(KeyDiscoveryTest, MultiValuedPropertiesCountItemsOnce) {
  std::vector<core::Item> items;
  core::Item item;
  item.iri = "i";
  item.facts.push_back({"alias", "a"});
  item.facts.push_back({"alias", "b"});
  items.push_back(item);
  const auto ranked = DiscoverKeys(items);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].items_with_value, 1u);
  EXPECT_EQ(ranked[0].distinct_values, 2u);
  EXPECT_DOUBLE_EQ(ranked[0].uniqueness, 2.0);  // >1 flags multi-valued
}

TEST(KeyDiscoveryTest, EmptyInput) {
  EXPECT_TRUE(DiscoverKeys({}).empty());
  EXPECT_TRUE(BestKeyProperty({}).empty());
}

}  // namespace
}  // namespace rulelink::blocking
