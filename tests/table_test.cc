#include "util/table.h"

#include <gtest/gtest.h>

namespace rulelink::util {
namespace {

TextTable MakeSample() {
  TextTable t({"name", "count"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"beta", "22"});
  return t;
}

TEST(TextTableTest, Shape) {
  const TextTable t = MakeSample();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_cols(), 2u);
}

TEST(TextTableTest, TextAlignsColumns) {
  const std::string text = MakeSample().ToText();
  EXPECT_NE(text.find("name   count"), std::string::npos);
  EXPECT_NE(text.find("alpha  1"), std::string::npos);
  EXPECT_NE(text.find("beta   22"), std::string::npos);
}

TEST(TextTableTest, ShortRowIsPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("only,,"), std::string::npos);
}

TEST(TextTableTest, MarkdownHasHeaderSeparator) {
  const std::string md = MakeSample().ToMarkdown();
  EXPECT_NE(md.find("| name | count |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| alpha | 1 |"), std::string::npos);
}

TEST(TextTableTest, CsvEscapesSpecialCharacters) {
  TextTable t({"field"});
  t.AddRow({"has,comma"});
  t.AddRow({"has\"quote"});
  t.AddRow({"plain"});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
}

TEST(TextTableTest, EmptyTableStillRendersHeader) {
  TextTable t({"x"});
  EXPECT_NE(t.ToText().find("x"), std::string::npos);
  EXPECT_EQ(t.ToCsv(), "x\n");
}

}  // namespace
}  // namespace rulelink::util
