#include "text/segmenter.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "text/normalize.h"
#include "util/string_util.h"

namespace rulelink::text {
namespace {

TEST(SeparatorSegmenterTest, SplitsOnNonAlphanumerics) {
  const SeparatorSegmenter seg;
  const auto parts = seg.Segment("CRCW0805-4K7.ohm  RoHS/x");
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "CRCW0805");
  EXPECT_EQ(parts[1], "4K7");
  EXPECT_EQ(parts[2], "ohm");
  EXPECT_EQ(parts[3], "RoHS");
  EXPECT_EQ(parts[4], "x");
}

TEST(SeparatorSegmenterTest, PaperExampleSeparators) {
  // "space, '-', '.'" from §5.
  const SeparatorSegmenter seg;
  EXPECT_EQ(seg.Segment("T83 106.16V-X").size(), 4u);
}

TEST(SeparatorSegmenterTest, EmptyAndSeparatorOnlyValues) {
  const SeparatorSegmenter seg;
  EXPECT_TRUE(seg.Segment("").empty());
  EXPECT_TRUE(seg.Segment("--..  //").empty());
}

TEST(SeparatorSegmenterTest, NoSeparatorKeepsWhole) {
  const SeparatorSegmenter seg;
  const auto parts = seg.Segment("CRCW0805");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "CRCW0805");
}

TEST(SeparatorSegmenterTest, ExplicitSeparatorSet) {
  const SeparatorSegmenter seg(":-");
  const auto parts = seg.Segment("a:b-c.d");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c.d");  // '.' not in the set
}

TEST(SeparatorSegmenterTest, DuplicateSegmentsAreKept) {
  const SeparatorSegmenter seg;
  const auto parts = seg.Segment("ohm-x-ohm");
  EXPECT_EQ(std::count(parts.begin(), parts.end(), "ohm"), 2);
}

TEST(NGramSegmenterTest, ProducesSlidingWindows) {
  const NGramSegmenter seg(3);
  const auto parts = seg.Segment("abcde");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "abc");
  EXPECT_EQ(parts[1], "bcd");
  EXPECT_EQ(parts[2], "cde");
}

TEST(NGramSegmenterTest, ShortValuesYieldWholeValue) {
  const NGramSegmenter seg(4);
  const auto parts = seg.Segment("abc");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
  EXPECT_TRUE(seg.Segment("").empty());
}

TEST(NGramSegmenterTest, ExactLengthYieldsOne) {
  const NGramSegmenter seg(3);
  ASSERT_EQ(seg.Segment("abc").size(), 1u);
}

TEST(NGramSegmenterTest, NameIncludesN) {
  EXPECT_EQ(NGramSegmenter(2).name(), "ngram(2)");
}

TEST(AlphaDigitSegmenterTest, SplitsOnAlphaDigitBoundary) {
  const AlphaDigitSegmenter seg;
  const auto parts = seg.Segment("CRCW0805-63V");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "CRCW");
  EXPECT_EQ(parts[1], "0805");
  EXPECT_EQ(parts[2], "63");
  EXPECT_EQ(parts[3], "V");
}

TEST(AlphaDigitSegmenterTest, PureTokensPassThrough) {
  const AlphaDigitSegmenter seg;
  const auto parts = seg.Segment("ohm-123");
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "ohm");
  EXPECT_EQ(parts[1], "123");
}

TEST(PrefixEnrichedSegmenterTest, EmitsPrefixes) {
  PrefixEnrichedSegmenter seg(std::make_unique<SeparatorSegmenter>(), 3);
  const auto parts = seg.Segment("CRCW0805");
  // Original + prefixes of length 3..7.
  ASSERT_EQ(parts.size(), 6u);
  EXPECT_EQ(parts[0], "CRCW0805");
  EXPECT_TRUE(std::count(parts.begin(), parts.end(), "CRC"));
  EXPECT_TRUE(std::count(parts.begin(), parts.end(), "CRCW080"));
  // The full segment is not duplicated as a "prefix".
  EXPECT_EQ(std::count(parts.begin(), parts.end(), "CRCW0805"), 1);
}

TEST(PrefixEnrichedSegmenterTest, ShortSegmentsGetNoPrefixes) {
  PrefixEnrichedSegmenter seg(std::make_unique<SeparatorSegmenter>(), 3);
  EXPECT_EQ(seg.Segment("ab").size(), 1u);
}

// Property sweep over segmenters: segments never contain the separator
// characters, and re-joining loses no alphanumeric content.
class SegmenterProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(SegmenterProperty, SeparatorSegmentsContainNoSeparators) {
  const SeparatorSegmenter seg;
  for (const std::string& part : seg.Segment(GetParam())) {
    EXPECT_FALSE(part.empty());
    for (char c : part) {
      EXPECT_TRUE(util::IsAsciiAlnum(c)) << "in segment: " << part;
    }
  }
}

TEST_P(SegmenterProperty, SegmentsPreserveAlnumContent) {
  const SeparatorSegmenter seg;
  std::string joined;
  for (const std::string& part : seg.Segment(GetParam())) joined += part;
  std::string expected;
  for (char c : std::string(GetParam())) {
    if (util::IsAsciiAlnum(c)) expected.push_back(c);
  }
  EXPECT_EQ(joined, expected);
}

TEST_P(SegmenterProperty, NGramCountFormula) {
  const std::string input(GetParam());
  for (std::size_t n : {1u, 2u, 3u, 5u}) {
    const NGramSegmenter seg(n);
    const auto parts = seg.Segment(input);
    if (input.empty()) {
      EXPECT_TRUE(parts.empty());
    } else if (input.size() <= n) {
      EXPECT_EQ(parts.size(), 1u);
    } else {
      EXPECT_EQ(parts.size(), input.size() - n + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Inputs, SegmenterProperty,
    ::testing::Values("", "a", "CRCW0805-4K7-ohm", "  spaces  everywhere  ",
                      "...", "T83.106.16V", "a1-b2_c3/d4.e5 f6",
                      "UPPER lower 0123456789"));

TEST(NormalizeTest, DefaultTrimsAndCollapses) {
  EXPECT_EQ(NormalizeDefault("  a   b \t c  "), "a b c");
  EXPECT_EQ(NormalizeDefault(""), "");
}

TEST(NormalizeTest, LowercaseOption) {
  NormalizeOptions options;
  options.lowercase = true;
  EXPECT_EQ(Normalize("CRCW0805 Ohm", options), "crcw0805 ohm");
}

TEST(NormalizeTest, NoCollapseKeepsInternalRuns) {
  NormalizeOptions options;
  options.collapse_spaces = false;
  EXPECT_EQ(Normalize(" a  b ", options), "a  b");
}

}  // namespace
}  // namespace rulelink::text
