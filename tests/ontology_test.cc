#include "ontology/ontology.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "rdf/turtle.h"

namespace rulelink::ontology {
namespace {

// Diamond-ish taxonomy:
//        Thing
//       |      |
//   Device    Passive
//     |      |     |
//   Sensor   R     C
//             |   |
//          (RC is sub of both R and C)
class OntologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    thing_ = onto_.AddClass("ex:Thing", "Thing");
    device_ = onto_.AddClass("ex:Device", "Device");
    passive_ = onto_.AddClass("ex:Passive", "Passive");
    sensor_ = onto_.AddClass("ex:Sensor", "Sensor");
    r_ = onto_.AddClass("ex:R", "Resistor");
    c_ = onto_.AddClass("ex:C", "Capacitor");
    rc_ = onto_.AddClass("ex:RC", "RC Network");
    ASSERT_TRUE(onto_.AddSubClassOf(device_, thing_).ok());
    ASSERT_TRUE(onto_.AddSubClassOf(passive_, thing_).ok());
    ASSERT_TRUE(onto_.AddSubClassOf(sensor_, device_).ok());
    ASSERT_TRUE(onto_.AddSubClassOf(r_, passive_).ok());
    ASSERT_TRUE(onto_.AddSubClassOf(c_, passive_).ok());
    ASSERT_TRUE(onto_.AddSubClassOf(rc_, r_).ok());
    ASSERT_TRUE(onto_.AddSubClassOf(rc_, c_).ok());
    ASSERT_TRUE(onto_.AddDisjointWith(device_, passive_).ok());
    ASSERT_TRUE(onto_.Finalize().ok());
  }

  Ontology onto_;
  ClassId thing_, device_, passive_, sensor_, r_, c_, rc_;
};

TEST_F(OntologyTest, AddClassIsIdempotent) {
  Ontology o;
  const ClassId a = o.AddClass("x", "first label");
  const ClassId b = o.AddClass("x", "ignored");
  EXPECT_EQ(a, b);
  EXPECT_EQ(o.num_classes(), 1u);
  EXPECT_EQ(o.label(a), "first label");
}

TEST_F(OntologyTest, LabelBackfill) {
  Ontology o;
  const ClassId a = o.AddClass("x");
  o.AddClass("x", "late label");
  EXPECT_EQ(o.label(a), "late label");
}

TEST_F(OntologyTest, FindByIri) {
  EXPECT_EQ(onto_.FindByIri("ex:Sensor"), sensor_);
  EXPECT_EQ(onto_.FindByIri("ex:Nope"), kInvalidClassId);
}

TEST_F(OntologyTest, SubsumptionIsReflexive) {
  for (ClassId c = 0; c < onto_.num_classes(); ++c) {
    EXPECT_TRUE(onto_.IsSubClassOf(c, c));
  }
}

TEST_F(OntologyTest, SubsumptionIsTransitive) {
  EXPECT_TRUE(onto_.IsSubClassOf(sensor_, thing_));
  EXPECT_TRUE(onto_.IsSubClassOf(rc_, thing_));
  EXPECT_TRUE(onto_.IsSubClassOf(rc_, passive_));
}

TEST_F(OntologyTest, SubsumptionThroughBothDiamondArms) {
  EXPECT_TRUE(onto_.IsSubClassOf(rc_, r_));
  EXPECT_TRUE(onto_.IsSubClassOf(rc_, c_));
}

TEST_F(OntologyTest, SubsumptionIsDirectional) {
  EXPECT_FALSE(onto_.IsSubClassOf(thing_, sensor_));
  EXPECT_FALSE(onto_.IsSubClassOf(r_, c_));
  EXPECT_FALSE(onto_.IsSubClassOf(sensor_, passive_));
}

TEST_F(OntologyTest, AncestorsAreStrict) {
  const auto anc = onto_.Ancestors(rc_);
  EXPECT_EQ(anc.size(), 4u);  // r, c, passive, thing
  EXPECT_EQ(std::count(anc.begin(), anc.end(), rc_), 0);
}

TEST_F(OntologyTest, DescendantsAreStrict) {
  const auto desc = onto_.Descendants(passive_);
  EXPECT_EQ(desc.size(), 3u);  // r, c, rc
  const auto all = onto_.Descendants(thing_);
  EXPECT_EQ(all.size(), 6u);
}

TEST_F(OntologyTest, DescendantsOfLeafIsEmpty) {
  EXPECT_TRUE(onto_.Descendants(sensor_).empty());
}

TEST_F(OntologyTest, LeavesAndRoots) {
  const auto leaves = onto_.Leaves();
  EXPECT_EQ(leaves.size(), 2u);  // sensor, rc
  EXPECT_TRUE(std::count(leaves.begin(), leaves.end(), sensor_));
  EXPECT_TRUE(std::count(leaves.begin(), leaves.end(), rc_));
  const auto roots = onto_.Roots();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], thing_);
}

TEST_F(OntologyTest, DepthIsLongestPath) {
  EXPECT_EQ(onto_.Depth(thing_), 0u);
  EXPECT_EQ(onto_.Depth(passive_), 1u);
  EXPECT_EQ(onto_.Depth(rc_), 3u);
  EXPECT_EQ(onto_.MaxDepth(), 3u);
}

TEST_F(OntologyTest, Disjointness) {
  EXPECT_TRUE(onto_.AreDisjoint(device_, passive_));
  EXPECT_TRUE(onto_.AreDisjoint(passive_, device_));  // symmetric
  EXPECT_FALSE(onto_.AreDisjoint(r_, c_));
}

TEST_F(OntologyTest, MostSpecificFiltersAncestors) {
  const auto ms = onto_.MostSpecific({thing_, passive_, r_, rc_});
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0], rc_);
}

TEST_F(OntologyTest, MostSpecificKeepsIncomparables) {
  const auto ms = onto_.MostSpecific({sensor_, r_, thing_});
  EXPECT_EQ(ms.size(), 2u);
}

TEST_F(OntologyTest, MostSpecificDeduplicates) {
  const auto ms = onto_.MostSpecific({r_, r_, r_});
  ASSERT_EQ(ms.size(), 1u);
}

TEST_F(OntologyTest, LeastCommonAncestors) {
  const auto lca_rc = onto_.LeastCommonAncestors(r_, c_);
  ASSERT_EQ(lca_rc.size(), 1u);
  EXPECT_EQ(lca_rc[0], passive_);

  const auto lca_cross = onto_.LeastCommonAncestors(sensor_, r_);
  ASSERT_EQ(lca_cross.size(), 1u);
  EXPECT_EQ(lca_cross[0], thing_);

  // LCA with itself is itself.
  const auto lca_self = onto_.LeastCommonAncestors(r_, r_);
  ASSERT_EQ(lca_self.size(), 1u);
  EXPECT_EQ(lca_self[0], r_);

  // LCA of a class and its ancestor is the ancestor.
  const auto lca_anc = onto_.LeastCommonAncestors(rc_, passive_);
  ASSERT_EQ(lca_anc.size(), 1u);
  EXPECT_EQ(lca_anc[0], passive_);
}

TEST(OntologyCycleTest, FinalizeRejectsCycles) {
  Ontology o;
  const ClassId a = o.AddClass("a");
  const ClassId b = o.AddClass("b");
  const ClassId c = o.AddClass("c");
  ASSERT_TRUE(o.AddSubClassOf(a, b).ok());
  ASSERT_TRUE(o.AddSubClassOf(b, c).ok());
  ASSERT_TRUE(o.AddSubClassOf(c, a).ok());
  const auto status = o.Finalize();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), util::StatusCode::kFailedPrecondition);
}

TEST(OntologyCycleTest, SelfLoopIsIgnored) {
  Ontology o;
  const ClassId a = o.AddClass("a");
  ASSERT_TRUE(o.AddSubClassOf(a, a).ok());  // no-op
  EXPECT_TRUE(o.Finalize().ok());
  EXPECT_TRUE(o.IsRoot(a));
}

TEST(OntologyErrorTest, UnknownIdsRejected) {
  Ontology o;
  const ClassId a = o.AddClass("a");
  EXPECT_FALSE(o.AddSubClassOf(a, 99).ok());
  EXPECT_FALSE(o.AddSubClassOf(99, a).ok());
  EXPECT_FALSE(o.AddDisjointWith(a, 99).ok());
  EXPECT_FALSE(o.AddDisjointWith(a, a).ok());
}

TEST(OntologyFromGraphTest, LoadsClassesEdgesLabelsDisjointness) {
  rdf::Graph g;
  const auto status = rdf::ParseTurtle(
      "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
      "@prefix owl: <http://www.w3.org/2002/07/owl#> .\n"
      "@prefix ex: <http://e/> .\n"
      "ex:A a owl:Class ; rdfs:label \"Alpha\" .\n"
      "ex:B a owl:Class ; rdfs:subClassOf ex:A .\n"
      "ex:C rdfs:subClassOf ex:A ; owl:disjointWith ex:B .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  auto onto_or = Ontology::FromGraph(g);
  ASSERT_TRUE(onto_or.ok()) << onto_or.status();
  const Ontology& o = *onto_or;
  EXPECT_EQ(o.num_classes(), 3u);
  const ClassId a = o.FindByIri("http://e/A");
  const ClassId b = o.FindByIri("http://e/B");
  const ClassId c = o.FindByIri("http://e/C");
  ASSERT_NE(a, kInvalidClassId);
  ASSERT_NE(b, kInvalidClassId);
  ASSERT_NE(c, kInvalidClassId);
  EXPECT_EQ(o.label(a), "Alpha");
  EXPECT_TRUE(o.IsSubClassOf(b, a));
  EXPECT_TRUE(o.IsSubClassOf(c, a));
  EXPECT_TRUE(o.AreDisjoint(b, c));
}

TEST(OntologyFromGraphTest, EmptyGraphYieldsEmptyOntology) {
  rdf::Graph g;
  auto onto_or = Ontology::FromGraph(g);
  ASSERT_TRUE(onto_or.ok());
  EXPECT_EQ(onto_or.value().num_classes(), 0u);
}

}  // namespace
}  // namespace rulelink::ontology
