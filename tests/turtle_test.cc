#include "rdf/turtle.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rulelink::rdf {
namespace {

TEST(TurtleTest, PrefixAndBasicStatement) {
  Graph g;
  const auto status = ParseTurtle(
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p ex:b .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(g.size(), 1u);
  EXPECT_NE(g.dict().FindIri("http://example.org/a"), kInvalidTermId);
  EXPECT_NE(g.dict().FindIri("http://example.org/p"), kInvalidTermId);
}

TEST(TurtleTest, SparqlStylePrefixWithoutDot) {
  Graph g;
  const auto status = ParseTurtle(
      "PREFIX ex: <http://example.org/>\n"
      "ex:a ex:p ex:b .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleTest, AKeywordExpandsToRdfType) {
  Graph g;
  const auto status = ParseTurtle(
      "@prefix ex: <http://example.org/> .\n"
      "ex:a a ex:Class .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(g.dict().FindIri(vocab::kRdfType), kInvalidTermId);
}

TEST(TurtleTest, PredicateAndObjectLists) {
  Graph g;
  const auto status = ParseTurtle(
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p ex:b , ex:c ;\n"
      "     ex:q \"v1\" , \"v2\" ;\n"
      "     a ex:T .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(g.size(), 5u);
}

TEST(TurtleTest, TrailingSemicolonBeforeDot) {
  Graph g;
  const auto status = ParseTurtle(
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p ex:b ;\n"
      ".\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleTest, LiteralsWithLangAndDatatype) {
  Graph g;
  const auto status = ParseTurtle(
      "@prefix ex: <http://example.org/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:a ex:p \"hi\"@en ; ex:q \"5\"^^xsd:integer ; "
      "ex:r \"6\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(g.dict().Find(Term::LangLiteral("hi", "en")), kInvalidTermId);
  EXPECT_NE(g.dict().Find(Term::TypedLiteral(
                "5", "http://www.w3.org/2001/XMLSchema#integer")),
            kInvalidTermId);
  EXPECT_NE(g.dict().Find(Term::TypedLiteral(
                "6", "http://www.w3.org/2001/XMLSchema#integer")),
            kInvalidTermId);
}

TEST(TurtleTest, EscapesInLiterals) {
  Graph g;
  const auto status = ParseTurtle(
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p \"tab\\there \\\"quoted\\\"\" .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(g.dict().Find(Term::Literal("tab\there \"quoted\"")),
            kInvalidTermId);
}

TEST(TurtleTest, BlankNodeLabels) {
  Graph g;
  const auto status = ParseTurtle(
      "@prefix ex: <http://example.org/> .\n"
      "_:x ex:p _:y .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(g.dict().Find(Term::BlankNode("x")), kInvalidTermId);
}

TEST(TurtleTest, BaseResolution) {
  Graph g;
  const auto status = ParseTurtle(
      "@base <http://example.org/dir/> .\n"
      "<a> <p> <b> .\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_NE(g.dict().FindIri("http://example.org/dir/a"), kInvalidTermId);
}

TEST(TurtleTest, CommentsAnywhere) {
  Graph g;
  const auto status = ParseTurtle(
      "# header comment\n"
      "@prefix ex: <http://example.org/> . # decl comment\n"
      "ex:a # subject\n"
      "  ex:p ex:b . # statement\n",
      &g);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleErrorTest, UndeclaredPrefix) {
  Graph g;
  const auto status = ParseTurtle("ex:a ex:p ex:b .\n", &g);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("undeclared prefix"), std::string::npos);
}

TEST(TurtleErrorTest, MissingDot) {
  Graph g;
  EXPECT_FALSE(ParseTurtle("@prefix ex: <http://e/> .\nex:a ex:p ex:b\n",
                           &g)
                   .ok());
}

TEST(TurtleErrorTest, LiteralSubject) {
  Graph g;
  EXPECT_FALSE(ParseTurtle("\"lit\" <http://p> <http://o> .\n", &g).ok());
}

TEST(TurtleErrorTest, LiteralPredicate) {
  Graph g;
  EXPECT_FALSE(
      ParseTurtle("<http://s> \"lit\" <http://o> .\n", &g).ok());
}

TEST(TurtleErrorTest, PropertyListsUnsupportedButClear) {
  Graph g;
  const auto status =
      ParseTurtle("<http://s> <http://p> [ <http://q> 1 ] .\n", &g);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not supported"), std::string::npos);
}

TEST(TurtleErrorTest, UnterminatedLiteral) {
  Graph g;
  EXPECT_FALSE(
      ParseTurtle("<http://s> <http://p> \"open... .\n", &g).ok());
}

TEST(TurtleErrorTest, UnknownAtKeyword) {
  Graph g;
  EXPECT_FALSE(ParseTurtle("@frobnicate <http://x> .\n", &g).ok());
}

TEST(TurtleFileTest, MissingFileIsNotFound) {
  Graph g;
  EXPECT_EQ(ParseTurtleFile("/nonexistent/file.ttl", &g).code(),
            util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace rulelink::rdf
