#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rulelink::util {
namespace {

std::size_t Hardware() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

TEST(ResolveNumThreadsTest, ZeroMeansHardwareAtLeastOne) {
  EXPECT_EQ(ResolveNumThreads(0), std::min(Hardware(), kMaxParallelWorkers));
  EXPECT_GE(ResolveNumThreads(0), 1u);
}

TEST(ResolveNumThreadsTest, ExplicitRequestsPassThroughUnclamped) {
  // The old scheduler clamped to hardware_concurrency here; morsel
  // scheduling handles oversubscription gracefully, so "--threads 8"
  // means 8 contexts even on a 1-core host.
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
  EXPECT_EQ(ResolveNumThreads(Hardware() + 5), Hardware() + 5);
  EXPECT_EQ(ResolveNumThreads(kMaxParallelWorkers + 100),
            kMaxParallelWorkers);
}

TEST(MorselItemsTest, HintAndOverridePrecedence) {
  // Neutralize any ambient RULELINK_MORSEL_ITEMS: this test asserts the
  // non-overridden precedence order.
  ScopedMorselItems no_override(0);
  // Per-call hint wins over the heuristic.
  EXPECT_EQ(MorselItemsFor(4, 100000, 512), 512u);
  // Heuristic: ~16 morsels per participant.
  const std::size_t heuristic = MorselItemsFor(4, 6400, 0);
  EXPECT_EQ(heuristic, 100u);  // 6400 / (4 * 16)
  // Serial participant count: one morsel covering everything.
  EXPECT_EQ(MorselItemsFor(1, 6400, 0), 6400u);
  // The scoped override beats both the hint and the heuristic.
  {
    ScopedMorselItems force(1);
    EXPECT_EQ(MorselItemsFor(4, 100000, 512), 1u);
    EXPECT_EQ(MorselItemsFor(4, 6400, 0), 1u);
    {
      ScopedMorselItems nested(7);
      EXPECT_EQ(MorselItemsFor(4, 100, 0), 7u);
    }
    EXPECT_EQ(MorselItemsFor(4, 100, 0), 1u);  // restored
  }
  EXPECT_EQ(MorselItemsFor(4, 100000, 512), 512u);  // fully restored
}

TEST(MorselItemsTest, HeuristicCapsTheSlotCount) {
  // A huge n must not explode the slot count (callers allocate one
  // accumulator per slot): the heuristic floors items-per-morsel so that
  // ceil(n / items) stays bounded.
  ScopedMorselItems no_override(0);
  const std::size_t n = 100'000'000;
  const std::size_t items = MorselItemsFor(8, n, 0);
  EXPECT_LE((n + items - 1) / items, 4096u);
}

TEST(ParallelSlotsTest, MatchesTheLoopPartition) {
  ScopedMorselItems no_override(0);
  EXPECT_EQ(ParallelSlots(4, 0), 0u);
  EXPECT_EQ(ParallelSlots(1, 100), 1u);  // serial: one inline slot
  // With a hint of 10 items per morsel, 95 items -> 10 slots.
  EXPECT_EQ(ParallelSlots(4, 95, 10), 10u);
  {
    ScopedMorselItems force(1);
    EXPECT_EQ(ParallelSlots(4, 95, 10), 95u);  // forced 1-item morsels
    EXPECT_EQ(ParallelSlots(1, 95, 10), 1u);   // serial stays serial
  }
}

TEST(ParallelForTest, EmptyRangeNeverCallsBody) {
  std::atomic<int> calls{0};
  ParallelFor(4, 0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleThreadRunsInlineOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  ParallelFor(1, 10, [&](std::size_t slot, std::size_t begin,
                         std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(slot, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForTest, SlotsAreAPureFunctionOfNAndMorselSize) {
  // The determinism contract: slot s covers [s*m, min(n, (s+1)*m))
  // whatever the thread count and steal interleaving, and every slot runs
  // exactly once.
  for (std::size_t morsel : {1u, 3u, 7u, 32u}) {
    ScopedMorselItems force(morsel);
    for (std::size_t threads : {2u, 3u, 5u, 8u}) {
      for (std::size_t n : {1u, 2u, 7u, 16u, 100u}) {
        std::mutex mutex;
        std::vector<int> slot_hits((n + morsel - 1) / morsel, 0);
        ParallelFor(threads, n,
                    [&](std::size_t slot, std::size_t begin,
                        std::size_t end) {
                      std::lock_guard<std::mutex> lock(mutex);
                      ASSERT_LT(slot, slot_hits.size());
                      EXPECT_EQ(begin, slot * morsel);
                      EXPECT_EQ(end, std::min(n, (slot + 1) * morsel));
                      ++slot_hits[slot];
                    });
        for (std::size_t s = 0; s < slot_hits.size(); ++s) {
          EXPECT_EQ(slot_hits[s], 1)
              << "threads=" << threads << " n=" << n << " morsel=" << morsel
              << " slot=" << s;
        }
        EXPECT_EQ(ParallelSlots(threads, n), slot_hits.size());
      }
    }
  }
}

TEST(ParallelForTest, OversubscriptionStillCoversTheRangeExactly) {
  // 64 contexts on (probably) far fewer cores: morsels time-slice, every
  // item still runs exactly once.
  ScopedMorselItems force(1);
  std::vector<std::atomic<int>> hits(500);
  ParallelFor(64, hits.size(),
              [&](std::size_t, std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) ++hits[i];
              });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, RangeSmallerThanWorkerCount) {
  ScopedMorselItems force(1);
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  std::mutex mutex;
  std::set<std::pair<std::size_t, std::size_t>> ranges;
  pool.ParallelFor(3, [&](std::size_t, std::size_t begin, std::size_t end) {
    ++calls;
    std::lock_guard<std::mutex> lock(mutex);
    ranges.insert({begin, end});
  });
  // One morsel per item, not per worker.
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(ranges, (std::set<std::pair<std::size_t, std::size_t>>{
                        {0, 1}, {1, 2}, {2, 3}}));
}

TEST(ParallelForTest, PropagatesExceptionFromWorker) {
  // Slot 0 always exists, whatever the resolved worker count.
  EXPECT_THROW(
      ParallelFor(4, 100,
                  [](std::size_t slot, std::size_t, std::size_t) {
                    if (slot == 0) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, RethrowsLowestSlotFirstUnderStealing) {
  // 1-item morsels with skewed workloads force heavy stealing; whichever
  // participant ends up executing the throwing slots, the caller must see
  // the lowest slot's exception.
  ScopedMorselItems force(1);
  ThreadPool pool(4);
  for (int repeat = 0; repeat < 20; ++repeat) {
    try {
      pool.ParallelFor(64, [](std::size_t slot, std::size_t, std::size_t) {
        if (slot % 5 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
        if (slot == 7) throw std::runtime_error("slot-7");
        if (slot == 41) throw std::runtime_error("slot-41");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "slot-7");
    }
  }
}

TEST(ParallelForTest, EveryClaimableSlotRunsDespiteAnEarlyThrow) {
  ScopedMorselItems force(1);
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  EXPECT_THROW(
      pool.ParallelFor(hits.size(),
                       [&](std::size_t slot, std::size_t, std::size_t) {
                         ++hits[slot];
                         if (slot == 0) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ParallelForTest, PoolSurvivesAFailedLoop) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(8,
                                [](std::size_t, std::size_t, std::size_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> sum{0};
  pool.ParallelFor(8, [&](std::size_t, std::size_t begin, std::size_t end) {
    sum += static_cast<int>(end - begin);
  });
  EXPECT_EQ(sum.load(), 8);
}

TEST(ParallelForTest, NestedParallelForFromAPoolTaskIsSafe) {
  // Regression test for the old "nested ParallelFor is forbidden"
  // restriction: a morsel body that itself runs a parallel loop must
  // complete (the nested caller drives its own loop; it never blocks on a
  // worker that could be waiting for it).
  ScopedMorselItems force(1);
  std::vector<std::atomic<int>> inner_hits(40 * 8);
  std::atomic<int> outer_calls{0};
  ParallelFor(4, 8, [&](std::size_t outer, std::size_t, std::size_t) {
    ++outer_calls;
    ParallelFor(3, 40, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        ++inner_hits[outer * 40 + i];
      }
    });
  });
  EXPECT_EQ(outer_calls.load(), 8);
  for (std::size_t i = 0; i < inner_hits.size(); ++i) {
    EXPECT_EQ(inner_hits[i].load(), 1) << "inner index " << i;
  }
}

TEST(ParallelForTest, NestedSubmitFromInsideALoopBody) {
  ThreadPool pool(2);
  std::atomic<int> nested{0};
  pool.ParallelFor(4, [&](std::size_t, std::size_t, std::size_t) {
    pool.Submit([&nested] { ++nested; });
  });
  pool.Wait();
  EXPECT_EQ(nested.load(), 4);
}

TEST(SchedulerStatsTest, CountsMorselsLoopsAndStealActivity) {
  ScopedMorselItems force(1);
  ThreadPool pool(4);
  const SchedulerTotals before = pool.Stats().Totals();
  const std::uint64_t loops_before = pool.Stats().loops;
  std::atomic<int> calls{0};
  for (int repeat = 0; repeat < 5; ++repeat) {
    pool.ParallelFor(100, [&](std::size_t, std::size_t, std::size_t) {
      ++calls;
    });
  }
  const SchedulerStats stats = pool.Stats();
  const SchedulerTotals delta = stats.Totals().Minus(before);
  EXPECT_EQ(calls.load(), 500);
  EXPECT_EQ(delta.morsels, 500u);  // every slot accounted exactly once
  EXPECT_EQ(stats.loops - loops_before, 5u);
  EXPECT_EQ(stats.workers, 4u);
  // Each loop ends with every active participant failing a final scan.
  EXPECT_GT(delta.steal_failures, 0u);
}

TEST(SchedulerStatsTest, GlobalPoolIsPersistentAndObservable) {
  const SchedulerTotals before = GlobalSchedulerTotals();
  std::atomic<int> sum{0};
  ParallelFor(3, 64, [&](std::size_t, std::size_t begin, std::size_t end) {
    sum += static_cast<int>(end - begin);
  });
  const std::size_t workers_after_first = ThreadPool::Global().num_workers();
  EXPECT_GE(workers_after_first, 2u);  // 3 contexts = caller + 2 workers
  ParallelFor(3, 64, [&](std::size_t, std::size_t begin, std::size_t end) {
    sum += static_cast<int>(end - begin);
  });
  // Reused, not respawned.
  EXPECT_EQ(ThreadPool::Global().num_workers(), workers_after_first);
  EXPECT_EQ(sum.load(), 128);
  const SchedulerTotals delta = GlobalSchedulerTotals().Minus(before);
  EXPECT_EQ(delta.loops, 2u);
  EXPECT_GT(delta.morsels, 0u);
  const SchedulerStats stats = GlobalSchedulerStats();
  EXPECT_EQ(stats.per_worker.size(), stats.workers);
  EXPECT_GT(stats.uptime_micros, 0u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, NestedSubmitIsSafeAndWaited) {
  ThreadPool pool(2);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &outer, &inner] {
      ++outer;
      pool.Submit([&inner] { ++inner; });
    });
  }
  pool.Wait();
  EXPECT_EQ(outer.load(), 10);
  EXPECT_EQ(inner.load(), 10);
}

TEST(ThreadPoolTest, WaitRethrowsTaskExceptionOnce) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception is consumed; a subsequent Wait succeeds.
  pool.Submit([] {});
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, PinnedPoolStillComputesCorrectly) {
  // Pinning is best-effort (Linux affinity call); the contract under test
  // is that a pinned pool behaves identically.
  ThreadPool pool(2, /*pin_threads=*/true);
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](std::size_t, std::size_t begin, std::size_t end) {
    sum += static_cast<int>(end - begin);
  });
  EXPECT_EQ(sum.load(), 100);
}

TEST(ThreadPoolTest, PinningFlagRoundTrips) {
  EXPECT_FALSE(ThreadPinningEnabled());
  SetThreadPinning(true);
  EXPECT_TRUE(ThreadPinningEnabled());
  SetThreadPinning(false);
  EXPECT_FALSE(ThreadPinningEnabled());
}

}  // namespace
}  // namespace rulelink::util
