#include "util/thread_pool.h"

#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rulelink::util {
namespace {

// The hardware concurrency ResolveNumThreads clamps against.
std::size_t Hardware() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

TEST(ResolveNumThreadsTest, ZeroMeansHardwareAtLeastOne) {
  EXPECT_EQ(ResolveNumThreads(0), Hardware());
  EXPECT_GE(ResolveNumThreads(0), 1u);
}

TEST(ResolveNumThreadsTest, ExplicitValuesCapAtHardware) {
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  // Within the hardware budget requests pass through; beyond it they
  // clamp — oversubscribed static chunks only contend.
  EXPECT_EQ(ResolveNumThreads(Hardware()), Hardware());
  EXPECT_EQ(ResolveNumThreads(7), std::min<std::size_t>(7, Hardware()));
  EXPECT_EQ(ResolveNumThreads(Hardware() + 5), Hardware());
}

TEST(ParallelChunksTest, ClampsToRangeAndThreadsAndHardware) {
  EXPECT_EQ(ParallelChunks(4, 0), 0u);
  EXPECT_EQ(ParallelChunks(1, 100), 1u);
  EXPECT_EQ(ParallelChunks(4, 3), std::min<std::size_t>(3, Hardware()));
  EXPECT_EQ(ParallelChunks(4, 100), std::min<std::size_t>(4, Hardware()));
}

TEST(ParallelForTest, EmptyRangeNeverCallsBody) {
  std::atomic<int> calls{0};
  ParallelFor(4, 0, [&](std::size_t, std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleThreadRunsInlineOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  std::size_t calls = 0;
  ParallelFor(1, 10, [&](std::size_t chunk, std::size_t begin,
                         std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(chunk, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForTest, ChunksPartitionTheRangeExactly) {
  for (std::size_t threads : {2u, 3u, 5u, 8u}) {
    for (std::size_t n : {1u, 2u, 7u, 16u, 100u}) {
      std::mutex mutex;
      std::vector<int> hits(n, 0);
      std::set<std::size_t> chunks_seen;
      ParallelFor(threads, n,
                  [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                    std::lock_guard<std::mutex> lock(mutex);
                    EXPECT_LT(begin, end);
                    chunks_seen.insert(chunk);
                    for (std::size_t i = begin; i < end; ++i) ++hits[i];
                  });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "threads=" << threads << " n=" << n
                              << " index=" << i;
      }
      EXPECT_EQ(chunks_seen.size(), std::min(ResolveNumThreads(threads), n));
    }
  }
}

TEST(ParallelForTest, RangeSmallerThanWorkerCount) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  std::mutex mutex;
  std::set<std::pair<std::size_t, std::size_t>> ranges;
  pool.ParallelFor(3, [&](std::size_t, std::size_t begin, std::size_t end) {
    ++calls;
    std::lock_guard<std::mutex> lock(mutex);
    ranges.insert({begin, end});
  });
  // One chunk per item, not per worker.
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(ranges, (std::set<std::pair<std::size_t, std::size_t>>{
                        {0, 1}, {1, 2}, {2, 3}}));
}

TEST(ParallelForTest, PropagatesExceptionFromWorker) {
  // Chunk 0 always exists, whatever the resolved worker count.
  EXPECT_THROW(
      ParallelFor(4, 100,
                  [](std::size_t chunk, std::size_t, std::size_t) {
                    if (chunk == 0) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, RethrowsLowestChunkFirst) {
  // A directly-constructed pool is not hardware-clamped, so the four
  // chunks (and the chunk-order rethrow) exist even on a 1-core host.
  ThreadPool pool(4);
  try {
    pool.ParallelFor(100, [](std::size_t chunk, std::size_t, std::size_t) {
      if (chunk == 1) throw std::runtime_error("chunk-1");
      if (chunk == 3) throw std::runtime_error("chunk-3");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk-1");
  }
}

TEST(ParallelForTest, PoolSurvivesAFailedLoop) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(8,
                                [](std::size_t, std::size_t, std::size_t) {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> sum{0};
  pool.ParallelFor(8, [&](std::size_t, std::size_t begin, std::size_t end) {
    sum += static_cast<int>(end - begin);
  });
  EXPECT_EQ(sum.load(), 8);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, NestedSubmitIsSafeAndWaited) {
  ThreadPool pool(2);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&pool, &outer, &inner] {
      ++outer;
      pool.Submit([&inner] { ++inner; });
    });
  }
  pool.Wait();
  EXPECT_EQ(outer.load(), 10);
  EXPECT_EQ(inner.load(), 10);
}

TEST(ThreadPoolTest, WaitRethrowsTaskExceptionOnce) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The exception is consumed; a subsequent Wait succeeds.
  pool.Submit([] {});
  EXPECT_NO_THROW(pool.Wait());
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ++ran; });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace rulelink::util
