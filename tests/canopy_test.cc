#include "blocking/canopy.h"

#include <set>

#include <gtest/gtest.h>

namespace rulelink::blocking {
namespace {

core::Item MakeItem(const std::string& iri, const std::string& pn) {
  core::Item item;
  item.iri = iri;
  item.facts.push_back(core::PropertyValue{"pn", pn});
  return item;
}

TEST(CanopyTest, IdenticalValuesAlwaysPair) {
  const CanopyBlocker blocker("pn", 0.3, 0.8);
  const auto pairs = blocker.Generate({MakeItem("e0", "CRCW0805-10K")},
                                      {MakeItem("l0", "CRCW0805-10K")});
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (CandidatePair{0, 0}));
}

TEST(CanopyTest, SimilarValuesSameCanopy) {
  const std::vector<core::Item> external = {MakeItem("e0", "CRCW0805-10K")};
  const std::vector<core::Item> local = {
      MakeItem("l0", "CRCW0805-22K"),      // shares most bigrams
      MakeItem("l1", "zzz-qqq-www-xyz")};  // shares none
  const CanopyBlocker blocker("pn", 0.3, 0.9);
  const auto pairs = blocker.Generate(external, local);
  const std::set<CandidatePair> got(pairs.begin(), pairs.end());
  EXPECT_TRUE(got.count(CandidatePair{0, 0}));
  EXPECT_FALSE(got.count(CandidatePair{0, 1}));
}

TEST(CanopyTest, DeterministicAcrossRuns) {
  std::vector<core::Item> external, local;
  for (int i = 0; i < 30; ++i) {
    external.push_back(
        MakeItem("e" + std::to_string(i), "KEY" + std::to_string(i * 7)));
    local.push_back(
        MakeItem("l" + std::to_string(i), "KEY" + std::to_string(i * 7)));
  }
  const CanopyBlocker blocker("pn", 0.4, 0.8, 99);
  const auto a = blocker.Generate(external, local);
  const auto b = blocker.Generate(external, local);
  EXPECT_EQ(a, b);
}

TEST(CanopyTest, LooseThresholdWidensCanopies) {
  std::vector<core::Item> external, local;
  for (int i = 0; i < 20; ++i) {
    external.push_back(
        MakeItem("e" + std::to_string(i), "SER" + std::to_string(i) + "A"));
    local.push_back(
        MakeItem("l" + std::to_string(i), "SER" + std::to_string(i) + "B"));
  }
  const auto tight = CanopyBlocker("pn", 0.8, 0.9).Generate(external, local);
  const auto loose = CanopyBlocker("pn", 0.2, 0.9).Generate(external, local);
  EXPECT_LE(tight.size(), loose.size());
}

TEST(CanopyTest, EmptyKeysAreSkipped) {
  const CanopyBlocker blocker("pn", 0.3, 0.8);
  std::vector<core::Item> external = {MakeItem("e0", "")};
  std::vector<core::Item> local = {MakeItem("l0", "x")};
  EXPECT_TRUE(blocker.Generate(external, local).empty());
}

TEST(CanopyTest, EveryRecordEventuallyRetired) {
  // Termination check on a pathological pool where nothing is similar:
  // each record must become its own canopy and the loop must end.
  std::vector<core::Item> external, local;
  const char* keys[] = {"aaaa", "bbbb", "cccc", "dddd", "eeee"};
  for (int i = 0; i < 5; ++i) {
    external.push_back(MakeItem("e" + std::to_string(i), keys[i]));
  }
  for (int i = 0; i < 5; ++i) {
    local.push_back(MakeItem("l" + std::to_string(i),
                             std::string(keys[i]) + "zz"));
  }
  const CanopyBlocker blocker("pn", 0.99, 0.99);
  const auto pairs = blocker.Generate(external, local);
  EXPECT_TRUE(pairs.empty());
}

}  // namespace
}  // namespace rulelink::blocking
