#include "core/classifier.h"

#include <memory>

#include <gtest/gtest.h>

#include "text/segmenter.h"
#include "util/interner.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

// Shared symbol table for hand-built test rules; RuleSet re-interns
// compactly, so sharing ids across fixtures is harmless.
util::StringInterner& TestSegments() {
  static util::StringInterner* interner = new util::StringInterner();
  return *interner;
}

ClassificationRule MakeRule(PropertyId property, const std::string& segment,
                            ontology::ClassId cls, std::size_t premise,
                            std::size_t class_count, std::size_t joint,
                            std::size_t total) {
  ClassificationRule rule;
  rule.property = property;
  rule.segment = TestSegments().Intern(segment);
  rule.cls = cls;
  rule.counts = RuleCounts{premise, class_count, joint, total};
  rule.ComputeMeasures();
  return rule;
}

class ClassifierTest : public ::testing::Test {
 protected:
  ClassifierTest() {
    properties_.Intern("pn");  // id 0
    std::vector<ClassificationRule> rules;
    rules.push_back(MakeRule(0, "T83", 1, 10, 10, 10, 100));    // conf 1, cls 1
    rules.push_back(MakeRule(0, "OHM", 2, 20, 25, 15, 100));    // conf .75
    rules.push_back(MakeRule(0, "MIX", 1, 20, 10, 10, 100));    // conf .5 -> 1
    rules.push_back(MakeRule(0, "MIX", 3, 20, 40, 8, 100));     // conf .4 -> 3
    set_ = std::make_unique<RuleSet>(std::move(rules), properties_,
                                     TestSegments());
    classifier_ = std::make_unique<RuleClassifier>(set_.get(), &segmenter_);
  }

  Item MakeItem(const std::string& pn) {
    Item item;
    item.iri = "ext:x";
    item.facts.push_back(PropertyValue{"pn", pn});
    return item;
  }

  PropertyCatalog properties_;
  std::unique_ptr<RuleSet> set_;
  text::SeparatorSegmenter segmenter_;
  std::unique_ptr<RuleClassifier> classifier_;
};

TEST_F(ClassifierTest, SingleRuleFires) {
  const auto predictions = classifier_->Classify(MakeItem("T83-106"));
  ASSERT_EQ(predictions.size(), 1u);
  EXPECT_EQ(predictions[0].cls, 1u);
  EXPECT_DOUBLE_EQ(predictions[0].confidence, 1.0);
}

TEST_F(ClassifierTest, NoRuleFires) {
  EXPECT_TRUE(classifier_->Classify(MakeItem("ZZZ-999")).empty());
  EXPECT_EQ(classifier_->PredictClass(MakeItem("ZZZ-999")),
            ontology::kInvalidClassId);
}

TEST_F(ClassifierTest, PredictionsOrderedByConfidenceThenLift) {
  const auto predictions =
      classifier_->Classify(MakeItem("T83-OHM-MIX"));
  ASSERT_EQ(predictions.size(), 3u);
  EXPECT_EQ(predictions[0].cls, 1u);  // conf 1 (T83 beats MIX->1 dedupe)
  EXPECT_EQ(predictions[1].cls, 2u);  // conf .75
  EXPECT_EQ(predictions[2].cls, 3u);  // conf .4
  for (std::size_t i = 1; i < predictions.size(); ++i) {
    EXPECT_GE(predictions[i - 1].confidence, predictions[i].confidence);
  }
}

TEST_F(ClassifierTest, DuplicateSubspaceKeepsBestRule) {
  // Both T83 (conf 1) and MIX (conf .5) predict class 1: §4.4 says keep the
  // better-confidence rule only.
  const auto predictions = classifier_->Classify(MakeItem("T83-MIX"));
  std::size_t count_cls1 = 0;
  for (const auto& p : predictions) count_cls1 += p.cls == 1u;
  EXPECT_EQ(count_cls1, 1u);
  EXPECT_DOUBLE_EQ(predictions[0].confidence, 1.0);
}

TEST_F(ClassifierTest, MinConfidenceFilters) {
  const auto predictions =
      classifier_->Classify(MakeItem("T83-OHM-MIX"), 0.6);
  ASSERT_EQ(predictions.size(), 2u);
  for (const auto& p : predictions) EXPECT_GE(p.confidence, 0.6);
}

TEST_F(ClassifierTest, PredictClassReturnsTopRanked) {
  EXPECT_EQ(classifier_->PredictClass(MakeItem("OHM-MIX")), 2u);
}

TEST_F(ClassifierTest, UnknownPropertyIgnored) {
  Item item;
  item.iri = "ext:y";
  item.facts.push_back(PropertyValue{"unrelated", "T83"});
  EXPECT_TRUE(classifier_->Classify(item).empty());
}

TEST_F(ClassifierTest, RuleIndexPointsToFiredRule) {
  const auto predictions = classifier_->Classify(MakeItem("OHM-1"));
  ASSERT_EQ(predictions.size(), 1u);
  const auto& rule = set_->rules()[predictions[0].rule_index];
  EXPECT_EQ(set_->segment_text(rule), "OHM");
  EXPECT_EQ(rule.cls, predictions[0].cls);
}

TEST_F(ClassifierTest, SegmentMustMatchExactly) {
  // "T8" and "T834" are different segments; no prefix semantics.
  EXPECT_TRUE(classifier_->Classify(MakeItem("T8-X")).empty());
  EXPECT_TRUE(classifier_->Classify(MakeItem("T834-X")).empty());
}

}  // namespace
}  // namespace rulelink::core
