#include "rdf/query.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "rdf/turtle.h"
#include "rdf/vocab.h"
#include "util/string_util.h"

namespace rulelink::rdf {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto status = ParseTurtle(
        "@prefix ex: <http://e/> .\n"
        "@prefix s: <http://s/> .\n"
        "ex:r1 a ex:Resistor ; s:pn \"CRCW-1\" ; s:mfr \"Volt\" .\n"
        "ex:r2 a ex:Resistor ; s:pn \"CRCW-2\" ; s:mfr \"Tek\" .\n"
        "ex:c1 a ex:Capacitor ; s:pn \"T83-1\" ; s:mfr \"Volt\" .\n"
        "ex:c2 a ex:Capacitor ; s:pn \"T83-2\" ; s:mfr \"Volt\" .\n"
        "ex:loop ex:knows ex:loop .\n",
        &graph_);
    ASSERT_TRUE(status.ok()) << status;
  }

  std::string Lex(const Bindings& row, const std::string& var) const {
    return graph_.dict().term(row.at(var)).lexical();
  }

  Graph graph_;
};

TEST_F(QueryTest, SinglePatternAllVariables) {
  Query query;
  query.Add(Var("s"), Var("p"), Var("o"));
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), graph_.size());
}

TEST_F(QueryTest, TypeSelection) {
  Query query;
  query.Add(Var("item"), Iri(vocab::kRdfType), Iri("http://e/Resistor"));
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  std::set<std::string> items;
  for (const auto& row : *rows) items.insert(Lex(row, "item"));
  EXPECT_TRUE(items.count("http://e/r1"));
  EXPECT_TRUE(items.count("http://e/r2"));
}

TEST_F(QueryTest, TwoPatternJoin) {
  // Items of any class made by "Volt".
  Query query;
  query.Add(Var("item"), Iri(vocab::kRdfType), Var("class"))
      .Add(Var("item"), Iri("http://s/mfr"), Lit("Volt"));
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);  // r1, c1, c2
}

TEST_F(QueryTest, ThreeWayJoinAcrossItems) {
  // Pairs of distinct-variable items sharing a manufacturer.
  Query query;
  query.Add(Var("a"), Iri("http://s/mfr"), Var("m"))
      .Add(Var("b"), Iri("http://s/mfr"), Var("m"));
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  // Volt: {r1,c1,c2} -> 9 ordered pairs; Tek: {r2} -> 1.
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(QueryTest, RepeatedVariableInOnePattern) {
  Query query;
  query.Add(Var("x"), Iri("http://e/knows"), Var("x"));
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(Lex(rows->front(), "x"), "http://e/loop");
}

TEST_F(QueryTest, FilterOnBoundValue) {
  Query query;
  query.Add(Var("item"), Iri("http://s/pn"), Var("pn"))
      .Filter("pn", [](const Term& t) {
        return util::StartsWith(t.lexical(), "T83");
      });
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(QueryTest, DistinctCollapsesDuplicateProjections) {
  // Manufacturers, one row per distinct value.
  Query query;
  query.Add(Var("item"), Iri("http://s/mfr"), Var("m"));
  auto all = Evaluate(graph_, query);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 4u);
  // Projecting only ?m via a query that binds just ?m is not supported;
  // DISTINCT over full bindings still deduplicates identical rows.
  Query distinct_query;
  distinct_query.Add(Var("item"), Iri("http://s/mfr"), Var("m"))
      .Add(Var("item"), Iri("http://s/mfr"), Var("m"))
      .Distinct();
  auto rows = Evaluate(graph_, distinct_query);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
}

TEST_F(QueryTest, LimitStopsEarly) {
  Query query;
  query.Add(Var("s"), Var("p"), Var("o")).Limit(3);
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(QueryTest, MissingConstantYieldsEmpty) {
  Query query;
  query.Add(Var("s"), Iri("http://never/seen"), Var("o"));
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(QueryTest, UnsatisfiableJoinYieldsEmpty) {
  Query query;
  query.Add(Var("item"), Iri("http://s/mfr"), Lit("Tek"))
      .Add(Var("item"), Iri(vocab::kRdfType), Iri("http://e/Capacitor"));
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(QueryTest, ErrorOnEmptyQuery) {
  Query query;
  EXPECT_FALSE(Evaluate(graph_, query).ok());
}

TEST_F(QueryTest, ErrorOnFilterOverUnknownVariable) {
  Query query;
  query.Add(Var("s"), Var("p"), Var("o"))
      .Filter("nope", [](const Term&) { return true; });
  EXPECT_FALSE(Evaluate(graph_, query).ok());
}

TEST_F(QueryTest, CountAgreesWithEvaluate) {
  Query query;
  query.Add(Var("item"), Iri("http://s/mfr"), Lit("Volt"));
  auto count = Count(graph_, query);
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(count.ok());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*count, rows->size());
}

TEST_F(QueryTest, VariablesInFirstAppearanceOrder) {
  Query query;
  query.Add(Var("a"), Var("b"), Var("c")).Add(Var("c"), Var("d"), Var("a"));
  const auto vars = query.Variables();
  ASSERT_EQ(vars.size(), 4u);
  EXPECT_EQ(vars[0], "a");
  EXPECT_EQ(vars[3], "d");
}

TEST_F(QueryTest, BindingsCoverEveryVariable) {
  Query query;
  query.Add(Var("item"), Iri(vocab::kRdfType), Var("class"))
      .Add(Var("item"), Iri("http://s/pn"), Var("pn"));
  auto rows = Evaluate(graph_, query);
  ASSERT_TRUE(rows.ok());
  for (const auto& row : *rows) {
    EXPECT_EQ(row.size(), 3u);
    EXPECT_TRUE(row.count("item"));
    EXPECT_TRUE(row.count("class"));
    EXPECT_TRUE(row.count("pn"));
  }
}

}  // namespace
}  // namespace rulelink::rdf
