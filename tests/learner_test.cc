#include "core/learner.h"

#include <memory>

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "text/segmenter.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

// Fixture with a hand-built corpus whose counts are easy to verify:
// 10 examples; classes A (6 examples), B (4 examples).
//   - segment "AAA" appears in all 6 A-examples and nowhere else.
//   - segment "MIX" appears in 3 A-examples and 3 B-examples.
//   - segment "BB"  appears in 2 B-examples.
//   - serial segments S0..S9 are unique per example.
class LearnerTest : public ::testing::Test {
 protected:
  LearnerTest() {
    root_ = onto_.AddClass("ex:Root", "Root");
    a_ = onto_.AddClass("ex:A", "A");
    b_ = onto_.AddClass("ex:B", "B");
    RL_CHECK_OK(onto_.AddSubClassOf(a_, root_));
    RL_CHECK_OK(onto_.AddSubClassOf(b_, root_));
    RL_CHECK_OK(onto_.Finalize());
    ts_ = std::make_unique<TrainingSet>(onto_);

    const char* values[10] = {
        "AAA-S0",     "AAA-S1",     "AAA-S2",      "AAA-MIX-S3",
        "AAA-MIX-S4", "AAA-MIX-S5",                      // class A
        "MIX-S6",     "MIX-S7",     "BB-S8",       "BB-MIX-S9",  // class B
    };
    for (int i = 0; i < 10; ++i) {
      Item item;
      item.iri = "ext:i" + std::to_string(i);
      item.facts.push_back(PropertyValue{"pn", values[i]});
      ts_->AddExample(item, "local:l" + std::to_string(i),
                      {i < 6 ? a_ : b_});
    }
  }

  RuleSet Learn(double threshold, LearnStats* stats = nullptr) {
    LearnerOptions options;
    options.support_threshold = threshold;
    options.segmenter = &segmenter_;
    auto result = RuleLearner(options).Learn(*ts_, stats);
    RL_CHECK(result.ok()) << result.status();
    return std::move(result).value();
  }

  const ClassificationRule* FindRule(const RuleSet& rules,
                                     const std::string& segment,
                                     ontology::ClassId cls) {
    for (const auto& rule : rules.rules()) {
      if (rules.segment_text(rule) == segment && rule.cls == cls) {
        return &rule;
      }
    }
    return nullptr;
  }

  ontology::Ontology onto_;
  ontology::ClassId root_, a_, b_;
  std::unique_ptr<TrainingSet> ts_;
  text::SeparatorSegmenter segmenter_;
};

TEST_F(LearnerTest, ExactCountsForPureSegment) {
  const RuleSet rules = Learn(0.15);  // threshold count: > 1.5 examples
  const ClassificationRule* aaa = FindRule(rules, "AAA", a_);
  ASSERT_NE(aaa, nullptr);
  EXPECT_EQ(aaa->counts.premise_count, 6u);
  EXPECT_EQ(aaa->counts.class_count, 6u);
  EXPECT_EQ(aaa->counts.joint_count, 6u);
  EXPECT_EQ(aaa->counts.total, 10u);
  EXPECT_DOUBLE_EQ(aaa->support, 0.6);
  EXPECT_DOUBLE_EQ(aaa->confidence, 1.0);
  EXPECT_DOUBLE_EQ(aaa->lift, 1.0 / 0.6);
}

TEST_F(LearnerTest, AmbiguousSegmentYieldsTwoRules) {
  const RuleSet rules = Learn(0.15);
  const ClassificationRule* mix_a = FindRule(rules, "MIX", a_);
  const ClassificationRule* mix_b = FindRule(rules, "MIX", b_);
  ASSERT_NE(mix_a, nullptr);
  ASSERT_NE(mix_b, nullptr);
  EXPECT_EQ(mix_a->counts.premise_count, 6u);
  EXPECT_EQ(mix_a->counts.joint_count, 3u);
  EXPECT_DOUBLE_EQ(mix_a->confidence, 0.5);
  EXPECT_DOUBLE_EQ(mix_b->confidence, 0.5);
  // lift(MIX -> B) = 0.5 / 0.4 > lift(MIX -> A) = 0.5 / 0.6.
  EXPECT_GT(mix_b->lift, mix_a->lift);
}

TEST_F(LearnerTest, ThresholdPrunesInfrequentConjunctions) {
  // "BB" occurs twice (0.2): kept at th=0.15, dropped at th=0.25.
  EXPECT_NE(FindRule(Learn(0.15), "BB", b_), nullptr);
  EXPECT_EQ(FindRule(Learn(0.25), "BB", b_), nullptr);
}

TEST_F(LearnerTest, ThresholdIsStrict) {
  // "BB" has frequency exactly 0.2; the paper's "> th" must drop it at 0.2.
  EXPECT_EQ(FindRule(Learn(0.2), "BB", b_), nullptr);
}

TEST_F(LearnerTest, SerialsNeverBecomeRules) {
  const RuleSet rules = Learn(0.15);
  for (const auto& rule : rules.rules()) {
    const std::string_view segment = rules.segment_text(rule);
    EXPECT_NE(segment.substr(0, 1), "S") << segment;
  }
}

TEST_F(LearnerTest, StatsAreExact) {
  LearnStats stats;
  Learn(0.15, &stats);
  EXPECT_EQ(stats.num_examples, 10u);
  // Distinct segments: AAA, MIX, BB, S0..S9 = 13.
  EXPECT_EQ(stats.distinct_segments, 13u);
  // Occurrences: 6 AAA + 6 MIX + 2 BB + 10 serials = 24.
  EXPECT_EQ(stats.segment_occurrences, 24u);
  // Frequent premises: AAA (6), MIX (6), BB (2).
  EXPECT_EQ(stats.frequent_premises, 3u);
  // Occurrences of the frequent premises: 6 + 6 + 2.
  EXPECT_EQ(stats.selected_segment_occurrences, 14u);
  EXPECT_EQ(stats.frequent_classes, 2u);
  // Rules: AAA->A, MIX->A, MIX->B, BB->B.
  EXPECT_EQ(stats.num_rules, 4u);
  EXPECT_EQ(stats.classes_with_rules, 2u);
}

TEST_F(LearnerTest, MinConfidenceFilter) {
  LearnerOptions options;
  options.support_threshold = 0.15;
  options.segmenter = &segmenter_;
  options.min_confidence = 0.6;
  auto rules = RuleLearner(options).Learn(*ts_);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : rules->rules()) {
    EXPECT_GE(rule.confidence, 0.6);
  }
  // The 0.5-confidence MIX rules must be gone; the confidence-1 rules
  // (AAA -> A and BB -> B) remain.
  EXPECT_EQ(rules->size(), 2u);
}

TEST_F(LearnerTest, DuplicateSegmentInOneValueCountsOnce) {
  TrainingSet ts(onto_);
  Item item;
  item.iri = "ext:dup";
  item.facts.push_back(PropertyValue{"pn", "X-X-X"});
  ts.AddExample(item, "local:dup", {a_});
  Item other;
  other.iri = "ext:other";
  other.facts.push_back(PropertyValue{"pn", "X-Y"});
  ts.AddExample(other, "local:other", {a_});

  LearnerOptions options;
  options.support_threshold = 0.4;
  options.segmenter = &segmenter_;
  auto rules = RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok());
  const ClassificationRule* x = nullptr;
  for (const auto& rule : rules->rules()) {
    if (rules->segment_text(rule) == "X") x = &rule;
  }
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->counts.premise_count, 2u);  // two examples, not four
}

TEST_F(LearnerTest, MultiValuedPropertyCountsOncePerExample) {
  TrainingSet ts(onto_);
  Item item;
  item.iri = "ext:multi";
  item.facts.push_back(PropertyValue{"pn", "X-1"});
  item.facts.push_back(PropertyValue{"pn", "X-2"});  // same property twice
  ts.AddExample(item, "local:multi", {a_});
  Item pad;
  pad.iri = "ext:pad";
  pad.facts.push_back(PropertyValue{"pn", "X-3"});
  ts.AddExample(pad, "local:pad", {a_});

  LearnerOptions options;
  options.support_threshold = 0.4;
  options.segmenter = &segmenter_;
  auto rules = RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : rules->rules()) {
    if (rules->segment_text(rule) == "X") {
      EXPECT_EQ(rule.counts.premise_count, 2u);
    }
  }
}

TEST_F(LearnerTest, PropertySelectionRestrictsP) {
  TrainingSet ts(onto_);
  for (int i = 0; i < 4; ++i) {
    Item item;
    item.iri = "ext:i" + std::to_string(i);
    item.facts.push_back(PropertyValue{"pn", "SIG-" + std::to_string(i)});
    item.facts.push_back(PropertyValue{"mfr", "ACME"});
    ts.AddExample(item, "local:l" + std::to_string(i), {a_});
  }
  LearnerOptions options;
  options.support_threshold = 0.5;
  options.segmenter = &segmenter_;
  options.properties = {"pn"};
  auto rules = RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok());
  // "ACME" would be a perfect premise but lives on an unselected property.
  for (const auto& rule : rules->rules()) {
    EXPECT_NE(rules->segment_text(rule), "ACME");
    EXPECT_EQ(rules->properties().name(rule.property), "pn");
  }
  // Without selection, the manufacturer rule appears.
  options.properties.clear();
  auto all = RuleLearner(options).Learn(ts);
  ASSERT_TRUE(all.ok());
  bool saw_acme = false;
  for (const auto& rule : all->rules()) {
    saw_acme |= all->segment_text(rule) == "ACME";
  }
  EXPECT_TRUE(saw_acme);
}

TEST_F(LearnerTest, ErrorOnEmptyTrainingSet) {
  TrainingSet empty(onto_);
  LearnerOptions options;
  options.support_threshold = 0.1;
  options.segmenter = &segmenter_;
  EXPECT_FALSE(RuleLearner(options).Learn(empty).ok());
}

TEST_F(LearnerTest, ErrorOnMissingSegmenter) {
  LearnerOptions options;
  options.support_threshold = 0.1;
  EXPECT_FALSE(RuleLearner(options).Learn(*ts_).ok());
}

TEST_F(LearnerTest, ErrorOnBadThreshold) {
  LearnerOptions options;
  options.segmenter = &segmenter_;
  options.support_threshold = 0.0;
  EXPECT_FALSE(RuleLearner(options).Learn(*ts_).ok());
  options.support_threshold = 1.0;
  EXPECT_FALSE(RuleLearner(options).Learn(*ts_).ok());
  options.support_threshold = -0.5;
  EXPECT_FALSE(RuleLearner(options).Learn(*ts_).ok());
}

TEST_F(LearnerTest, ErrorOnUnknownSelectedProperties) {
  LearnerOptions options;
  options.support_threshold = 0.1;
  options.segmenter = &segmenter_;
  options.properties = {"no-such-property"};
  EXPECT_FALSE(RuleLearner(options).Learn(*ts_).ok());
}

TEST_F(LearnerTest, AllRuleCountsAreConsistent) {
  const RuleSet rules = Learn(0.05);
  for (const auto& rule : rules.rules()) {
    EXPECT_TRUE(CountsAreConsistent(rule.counts));
    EXPECT_GT(rule.support, 0.05);  // strict threshold respected
  }
}

}  // namespace
}  // namespace rulelink::core
