#include "rdf/graph_algebra.h"

#include <gtest/gtest.h>

#include "rdf/ntriples.h"

namespace rulelink::rdf {
namespace {

Graph Parse(const char* ntriples) {
  Graph g;
  const auto status = ParseNTriples(ntriples, &g);
  EXPECT_TRUE(status.ok()) << status;
  return g;
}

class GraphAlgebraTest : public ::testing::Test {
 protected:
  GraphAlgebraTest()
      : a_(Parse("<http://s> <http://p> <http://x> .\n"
                 "<http://s> <http://p> \"shared\" .\n"
                 "<http://s> <http://q> <http://y> .\n")),
        b_(Parse("<http://s> <http://p> \"shared\" .\n"
                 "<http://s> <http://q> <http://z> .\n")) {}

  Graph a_, b_;
};

TEST_F(GraphAlgebraTest, Union) {
  const Graph u = Union(a_, b_);
  EXPECT_EQ(u.size(), 4u);  // 3 + 2 - 1 shared
  EXPECT_TRUE(IsSubgraphOf(a_, u));
  EXPECT_TRUE(IsSubgraphOf(b_, u));
}

TEST_F(GraphAlgebraTest, Difference) {
  const Graph d = Difference(a_, b_);
  EXPECT_EQ(d.size(), 2u);
  // The shared literal triple is gone.
  EXPECT_EQ(d.dict().Find(Term::Literal("shared")), kInvalidTermId);
}

TEST_F(GraphAlgebraTest, DifferenceIsAsymmetric) {
  EXPECT_EQ(Difference(a_, b_).size(), 2u);
  EXPECT_EQ(Difference(b_, a_).size(), 1u);
}

TEST_F(GraphAlgebraTest, Intersection) {
  const Graph i = Intersection(a_, b_);
  ASSERT_EQ(i.size(), 1u);
  EXPECT_NE(i.dict().Find(Term::Literal("shared")), kInvalidTermId);
  // Intersection commutes (as a triple set).
  EXPECT_TRUE(Isomorphic(i, Intersection(b_, a_)));
}

TEST_F(GraphAlgebraTest, IsomorphismIgnoresDictionaryIds) {
  // Same triples inserted in a different order intern different ids.
  const Graph c = Parse(
      "<http://s> <http://q> <http://y> .\n"
      "<http://s> <http://p> \"shared\" .\n"
      "<http://s> <http://p> <http://x> .\n");
  EXPECT_TRUE(Isomorphic(a_, c));
  EXPECT_FALSE(Isomorphic(a_, b_));
}

TEST_F(GraphAlgebraTest, SubgraphChecks) {
  EXPECT_TRUE(IsSubgraphOf(Intersection(a_, b_), a_));
  EXPECT_TRUE(IsSubgraphOf(Intersection(a_, b_), b_));
  EXPECT_FALSE(IsSubgraphOf(a_, b_));
  Graph empty;
  EXPECT_TRUE(IsSubgraphOf(empty, a_));
  EXPECT_TRUE(Isomorphic(empty, empty));
}

TEST_F(GraphAlgebraTest, DeliveryDiffScenario) {
  // Yesterday's delivery vs today's: what changed?
  const Graph yesterday = Parse(
      "<http://p/d1> <http://s/pn> \"CRCW-1\" .\n"
      "<http://p/d2> <http://s/pn> \"T83-9\" .\n");
  const Graph today = Parse(
      "<http://p/d1> <http://s/pn> \"CRCW-1\" .\n"
      "<http://p/d2> <http://s/pn> \"T83-9b\" .\n"  // corrected value
      "<http://p/d3> <http://s/pn> \"NEW-7\" .\n");
  const Graph added = Difference(today, yesterday);
  const Graph retracted = Difference(yesterday, today);
  EXPECT_EQ(added.size(), 2u);      // corrected + new
  EXPECT_EQ(retracted.size(), 1u);  // the old wrong value
  EXPECT_TRUE(
      Isomorphic(Union(Difference(today, yesterday),
                       Intersection(today, yesterday)),
                 today));
}

}  // namespace
}  // namespace rulelink::rdf
