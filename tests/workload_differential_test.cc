// Scale-down differential test for the workload suite: the request-replay
// path must not diverge from the batch linker at realistic scale. A
// generated 50k-item catalog plus a skewed, dirty provider query stream
// goes through StreamingLinker over a StandardBlocker index and must be
// byte-identical — same links, same order, same scores — to
// Linker::RunCached over the same blocker's materialized candidates, at
// every thread count and for two generator seeds.
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/standard_blocking.h"
#include "datagen/workload.h"
#include "linking/feature_cache.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/streaming_linker.h"
#include "util/logging.h"

namespace rulelink {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr double kThreshold = 0.6;

struct Workload {
  datagen::WorkloadCatalog catalog;
  datagen::QueryStream stream;
};

const Workload& GetWorkload(std::uint64_t seed) {
  static std::map<std::uint64_t, std::unique_ptr<Workload>>* cache =
      new std::map<std::uint64_t, std::unique_ptr<Workload>>();
  auto it = cache->find(seed);
  if (it == cache->end()) {
    datagen::WorkloadConfig catalog_config;
    catalog_config.seed = seed;
    catalog_config.catalog_size = 50000;
    auto catalog = datagen::GenerateWorkloadCatalog(catalog_config);
    RL_CHECK(catalog.ok()) << catalog.status();

    datagen::QueryStreamConfig query_config;
    query_config.seed = seed + 1;
    query_config.num_queries = 1500;
    query_config.chooser.distribution = datagen::Distribution::kZipfian;
    query_config.typo_prob = 0.1;     // dirty regime: edits and truncation
    query_config.truncate_prob = 0.05;
    auto stream =
        datagen::GenerateQueryStream(catalog.value(), query_config);
    RL_CHECK(stream.ok()) << stream.status();

    auto workload = std::make_unique<Workload>();
    workload->catalog = std::move(catalog).value();
    workload->stream = std::move(stream).value();
    it = cache->emplace(seed, std::move(workload)).first;
  }
  return *it->second;
}

linking::ItemMatcher WorkloadMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 2.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kExact, 0.5},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 0.5},
  });
}

struct Caches {
  linking::FeatureDictionary dict;
  linking::FeatureCache external;
  linking::FeatureCache local;

  Caches(const Workload& workload, const linking::ItemMatcher& matcher,
         std::size_t num_threads) {
    external = linking::FeatureCache::Build(
        workload.stream.queries, matcher,
        linking::FeatureCache::Side::kExternal, &dict, num_threads);
    local = linking::FeatureCache::Build(
        workload.catalog.items, matcher, linking::FeatureCache::Side::kLocal,
        &dict, num_threads);
  }
};

class WorkloadDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  const Workload& workload() const { return GetWorkload(GetParam()); }
};

TEST_P(WorkloadDifferential, StreamingMatchesRunCachedAtScale) {
  const Workload& workload = this->workload();
  const linking::ItemMatcher matcher = WorkloadMatcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  const auto candidates =
      blocker.Generate(workload.stream.queries, workload.catalog.items);
  ASSERT_GT(candidates.size(), 0u);
  const auto index =
      blocker.BuildIndex(workload.stream.queries, workload.catalog.items);
  ASSERT_EQ(index->num_external(), workload.stream.queries.size());

  const linking::Linker cached_linker(&matcher, kThreshold);
  const linking::StreamingLinker streaming(&matcher, kThreshold);
  const Caches ref_caches(workload, matcher, /*num_threads=*/1);
  linking::LinkerStats ref_stats;
  const auto reference =
      cached_linker.RunCached(ref_caches.external, ref_caches.local,
                              candidates, &ref_stats, /*num_threads=*/1);
  // The skewed dirty stream still links a substantial share of the
  // queries — the workload is a linking workload, not noise. (Not a
  // majority bound: typos and reformats inside the 4-char blocking prefix
  // cost recall by design, and the zipf head amplifies whichever hot
  // items happen to be fragile.)
  EXPECT_GT(reference.size(), workload.stream.queries.size() / 5);

  linking::LinkerStats serial_stats;
  for (const std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    // Caches are rebuilt per thread count on purpose: id numbering may
    // differ across builds, the links must not.
    const Caches caches(workload, matcher, threads);
    linking::LinkerStats stats;
    const auto links =
        streaming.Run(*index, caches.external, caches.local, &stats, threads);
    ASSERT_EQ(links.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(links[i].external_index, reference[i].external_index) << i;
      ASSERT_EQ(links[i].local_index, reference[i].local_index) << i;
      ASSERT_EQ(links[i].score, reference[i].score) << i;  // bit-identical
    }
    EXPECT_EQ(stats.pairs_scored + stats.pairs_pruned_by_filter,
              candidates.size());
    if (threads == kThreadCounts[0]) {
      serial_stats = stats;
    } else {
      EXPECT_EQ(stats.pairs_scored, serial_stats.pairs_scored);
      EXPECT_EQ(stats.pairs_pruned_by_filter,
                serial_stats.pairs_pruned_by_filter);
      EXPECT_EQ(stats.peak_candidate_run, serial_stats.peak_candidate_run);
    }
  }
}

TEST_P(WorkloadDifferential, EmittedLinksHitTheGoldTargets) {
  // End-to-end sanity of the generated workload: when the pipeline links
  // a (dirty, skewed) query at all, it almost always links it to the gold
  // catalog item — the generator's noise erodes recall, never precision.
  const Workload& workload = this->workload();
  const linking::ItemMatcher matcher = WorkloadMatcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/4);
  const auto index =
      blocker.BuildIndex(workload.stream.queries, workload.catalog.items);
  const Caches caches(workload, matcher, /*num_threads=*/1);
  const linking::StreamingLinker streaming(&matcher, kThreshold);
  const auto links =
      streaming.Run(*index, caches.external, caches.local, nullptr,
                    /*num_threads=*/0);
  ASSERT_GT(links.size(), workload.stream.queries.size() / 5);
  std::size_t correct = 0;
  for (const linking::Link& link : links) {
    if (workload.stream.gold[link.external_index].catalog_index ==
        link.local_index) {
      ++correct;
    }
  }
  EXPECT_GT(static_cast<double>(correct),
            0.95 * static_cast<double>(links.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadDifferential,
                         ::testing::Values(42, 1789));

}  // namespace
}  // namespace rulelink
