// Temporal-drift regression test for the workload generator: a two-epoch
// catalog where a fraction of part series first appears in epoch 1 (and
// immediately dominates its epoch's popularity skew). A batch RuleLearner
// trained on epoch-0 links only cannot know the new series; the
// IncrementalRuleLearner that kept ingesting through epoch 1 must learn
// rules concluding the drifted leaves from their series segments — the
// regime src/core/incremental exists for.
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental.h"
#include "core/learner.h"
#include "core/training_set.h"
#include "datagen/workload.h"
#include "text/segmenter.h"

namespace rulelink {
namespace {

constexpr double kSupportThreshold = 0.005;

datagen::WorkloadConfig DriftConfig() {
  datagen::WorkloadConfig config;
  config.seed = 77;
  config.catalog_size = 6000;
  config.num_classes = 60;
  config.num_leaves = 30;
  config.num_epochs = 2;
  config.drift_leaf_fraction = 0.4;
  return config;
}

TEST(WorkloadDriftTest, IncrementalLearnsSecondEpochSeriesThatBatchMisses) {
  auto result = datagen::GenerateWorkloadCatalog(DriftConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  const datagen::WorkloadCatalog& catalog = result.value();
  const text::SeparatorSegmenter segmenter;

  // Epoch 0 is what the batch learner saw when it was trained; the
  // incremental learner kept ingesting the expert's links through epoch 1.
  core::TrainingSet epoch0(catalog.ontology());
  core::IncrementalRuleLearner incremental(
      &catalog.ontology(), &segmenter, {datagen::props::kPartNumber});
  std::size_t epoch0_examples = 0;
  for (std::size_t i = 0; i < catalog.items.size(); ++i) {
    if (catalog.epochs[i] == 0) {
      epoch0.AddExample(catalog.items[i], catalog.items[i].iri,
                        {catalog.classes[i]});
      ++epoch0_examples;
    }
    incremental.AddExample(catalog.items[i], {catalog.classes[i]});
  }
  ASSERT_GT(epoch0_examples, 0u);
  ASSERT_LT(epoch0_examples, catalog.items.size());

  core::LearnerOptions options;
  options.support_threshold = kSupportThreshold;
  options.segmenter = &segmenter;
  options.properties = {datagen::props::kPartNumber};
  auto batch = core::RuleLearner(options).Learn(epoch0);
  ASSERT_TRUE(batch.ok()) << batch.status();
  auto online = incremental.BuildRules(kSupportThreshold);
  ASSERT_TRUE(online.ok()) << online.status();

  const auto conclusions = [](const core::RuleSet& rules) {
    std::set<ontology::ClassId> out;
    for (const auto& rule : rules.rules()) out.insert(rule.cls);
    return out;
  };
  const auto batch_classes = conclusions(*batch);
  const auto online_classes = conclusions(*online);

  // Every drifted leaf (first epoch 1) whose series rules the incremental
  // learner found is invisible to the epoch-0 batch rule set.
  std::size_t drift_leaves_learned = 0;
  for (std::size_t leaf = 0; leaf < catalog.taxonomy.leaves.size(); ++leaf) {
    if (catalog.first_epoch_of_leaf[leaf] == 0) continue;
    const ontology::ClassId cls = catalog.taxonomy.leaves[leaf];
    EXPECT_EQ(batch_classes.count(cls), 0u)
        << "batch learner concluded a leaf whose series only exists in "
           "epoch 1";
    if (online_classes.count(cls) == 0) continue;
    ++drift_leaves_learned;

    // The incremental rules for this leaf are grounded in its generated
    // series tokens — the generator's ground truth.
    const std::set<std::string> series(catalog.series_of_leaf[leaf].begin(),
                                       catalog.series_of_leaf[leaf].end());
    bool series_rule = false;
    for (const auto& rule : online->rules()) {
      if (rule.cls != cls) continue;
      if (series.count(std::string(online->segment_text(rule))) > 0) {
        series_rule = true;
        break;
      }
    }
    EXPECT_TRUE(series_rule)
        << "no series-segment rule for drifted leaf " << leaf;
  }
  // Drifted leaves head epoch 1's popularity skew, so several of them must
  // clear the support threshold — the drift is learnable, not noise.
  EXPECT_GE(drift_leaves_learned, 4u);

  // Non-drifted signal persists alongside the new series. (Not all of it:
  // support is relative to |TS|, so an epoch-0 class whose leaf stopped
  // selling in epoch 1 can legitimately dilute below the threshold.)
  std::size_t retained = 0;
  for (const ontology::ClassId cls : batch_classes) {
    retained += online_classes.count(cls);
  }
  EXPECT_GE(retained * 2, batch_classes.size())
      << "incremental learner lost most of the batch-visible classes";
}

TEST(WorkloadDriftTest, IncrementalOnEpochZeroMatchesBatch) {
  // Control: restricted to the same epoch-0 examples, the incremental
  // learner is exactly the batch learner — the drift difference above is
  // the data, not learner divergence.
  auto result = datagen::GenerateWorkloadCatalog(DriftConfig());
  ASSERT_TRUE(result.ok()) << result.status();
  const datagen::WorkloadCatalog& catalog = result.value();
  const text::SeparatorSegmenter segmenter;

  core::TrainingSet epoch0(catalog.ontology());
  core::IncrementalRuleLearner incremental(
      &catalog.ontology(), &segmenter, {datagen::props::kPartNumber});
  for (std::size_t i = 0; i < catalog.items.size(); ++i) {
    if (catalog.epochs[i] != 0) continue;
    epoch0.AddExample(catalog.items[i], catalog.items[i].iri,
                      {catalog.classes[i]});
    incremental.AddExample(catalog.items[i], {catalog.classes[i]});
  }

  core::LearnerOptions options;
  options.support_threshold = kSupportThreshold;
  options.segmenter = &segmenter;
  options.properties = {datagen::props::kPartNumber};
  auto batch = core::RuleLearner(options).Learn(epoch0);
  ASSERT_TRUE(batch.ok()) << batch.status();
  auto online = incremental.BuildRules(kSupportThreshold);
  ASSERT_TRUE(online.ok()) << online.status();

  using Key = std::tuple<std::string, std::string, ontology::ClassId>;
  const auto keys = [](const core::RuleSet& rules) {
    std::set<Key> out;
    for (const auto& rule : rules.rules()) {
      out.insert({rules.properties().name(rule.property),
                  std::string(rules.segment_text(rule)), rule.cls});
    }
    return out;
  };
  EXPECT_EQ(keys(*batch), keys(*online));
}

}  // namespace
}  // namespace rulelink
