#include "linking/fusion.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace rulelink::linking {
namespace {

core::Item MakeItem(const std::string& iri,
                    std::vector<core::PropertyValue> facts) {
  core::Item item;
  item.iri = iri;
  item.facts = std::move(facts);
  return item;
}

std::vector<std::string> ValuesOf(const FusedItem& fused,
                                  const std::string& property) {
  std::vector<std::string> out;
  for (const auto& pv : fused.facts) {
    if (pv.property == property) out.push_back(pv.value);
  }
  return out;
}

class FusionTest : public ::testing::Test {
 protected:
  FusionTest() {
    external_ = {MakeItem("ext:0", {{"pn", "CRCW-0805-EXT"},
                                    {"mfr", "Voltron"},
                                    {"datasheet", "http://ds/1"}})};
    local_ = {MakeItem("cat:0", {{"pn", "CRCW0805"},
                                 {"mfr", "Voltron"},
                                 {"label", "resistor"}})};
    links_ = {Link{0, 0, 0.97}};
  }

  std::vector<core::Item> external_, local_;
  std::vector<Link> links_;
};

TEST_F(FusionTest, CanonicalIriAndProvenance) {
  const auto fused =
      FuseLinks(external_, local_, links_, ConflictPolicy::kPreferLocal);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].iri, "cat:0");
  ASSERT_EQ(fused[0].sources.size(), 2u);
  EXPECT_EQ(fused[0].sources[0], "cat:0");
  EXPECT_EQ(fused[0].sources[1], "ext:0");
}

TEST_F(FusionTest, OneSidedPropertiesAlwaysKept) {
  const auto fused =
      FuseLinks(external_, local_, links_, ConflictPolicy::kPreferLocal);
  EXPECT_EQ(ValuesOf(fused[0], "datasheet"),
            std::vector<std::string>{"http://ds/1"});
  EXPECT_EQ(ValuesOf(fused[0], "label"),
            std::vector<std::string>{"resistor"});
}

TEST_F(FusionTest, AgreementIsNotAConflict) {
  const auto fused =
      FuseLinks(external_, local_, links_, ConflictPolicy::kPreferExternal);
  EXPECT_EQ(ValuesOf(fused[0], "mfr"), std::vector<std::string>{"Voltron"});
}

TEST_F(FusionTest, PreferLocalWinsConflicts) {
  const auto fused =
      FuseLinks(external_, local_, links_, ConflictPolicy::kPreferLocal);
  EXPECT_EQ(ValuesOf(fused[0], "pn"), std::vector<std::string>{"CRCW0805"});
}

TEST_F(FusionTest, PreferExternalWinsConflicts) {
  const auto fused =
      FuseLinks(external_, local_, links_, ConflictPolicy::kPreferExternal);
  EXPECT_EQ(ValuesOf(fused[0], "pn"),
            std::vector<std::string>{"CRCW-0805-EXT"});
}

TEST_F(FusionTest, LongestValueWins) {
  const auto fused =
      FuseLinks(external_, local_, links_, ConflictPolicy::kLongestValue);
  EXPECT_EQ(ValuesOf(fused[0], "pn"),
            std::vector<std::string>{"CRCW-0805-EXT"});
}

TEST_F(FusionTest, UnionKeepsBothSides) {
  const auto fused =
      FuseLinks(external_, local_, links_, ConflictPolicy::kUnion);
  const auto values = ValuesOf(fused[0], "pn");
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], "CRCW0805");  // local first
  EXPECT_EQ(values[1], "CRCW-0805-EXT");
}

TEST_F(FusionTest, DuplicateFactsEmittedOnce) {
  external_[0].facts.push_back({"mfr", "Voltron"});  // duplicate value
  const auto fused =
      FuseLinks(external_, local_, links_, ConflictPolicy::kUnion);
  EXPECT_EQ(ValuesOf(fused[0], "mfr").size(), 1u);
}

TEST_F(FusionTest, EmptyLinksYieldNothing) {
  EXPECT_TRUE(
      FuseLinks(external_, local_, {}, ConflictPolicy::kUnion).empty());
}

TEST_F(FusionTest, MultipleLinksFuseIndependently) {
  external_.push_back(MakeItem("ext:1", {{"pn", "T83"}}));
  local_.push_back(MakeItem("cat:1", {{"pn", "T83-X"}}));
  links_.push_back(Link{1, 1, 0.9});
  const auto fused =
      FuseLinks(external_, local_, links_, ConflictPolicy::kPreferLocal);
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_EQ(fused[1].iri, "cat:1");
  EXPECT_EQ(ValuesOf(fused[1], "pn"), std::vector<std::string>{"T83-X"});
}

TEST(ConflictPolicyTest, Names) {
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kPreferLocal),
               "prefer-local");
  EXPECT_STREQ(ConflictPolicyName(ConflictPolicy::kUnion), "union");
}

}  // namespace
}  // namespace rulelink::linking
