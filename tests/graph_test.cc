#include "rdf/graph.h"

#include <gtest/gtest.h>

#include "rdf/dictionary.h"

namespace rulelink::rdf {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_.InsertIri("s1", "p1", "o1");
    graph_.InsertIri("s1", "p1", "o2");
    graph_.InsertIri("s1", "p2", "o1");
    graph_.InsertIri("s2", "p1", "o1");
    graph_.InsertLiteralTriple("s2", "p3", "a literal");
  }

  TermId Id(const std::string& iri) const {
    return graph_.dict().FindIri(iri);
  }

  Graph graph_;
};

TEST_F(GraphTest, SizeAndDeduplication) {
  EXPECT_EQ(graph_.size(), 5u);
  EXPECT_FALSE(graph_.InsertIri("s1", "p1", "o1"));  // duplicate
  EXPECT_EQ(graph_.size(), 5u);
  EXPECT_TRUE(graph_.InsertIri("s3", "p1", "o1"));
  EXPECT_EQ(graph_.size(), 6u);
}

TEST_F(GraphTest, ContainsAfterInsert) {
  EXPECT_TRUE(graph_.Contains(Triple{Id("s1"), Id("p1"), Id("o1")}));
  EXPECT_FALSE(graph_.Contains(Triple{Id("s2"), Id("p2"), Id("o1")}));
}

TEST_F(GraphTest, InsertRejectsInvalidIds) {
  EXPECT_FALSE(graph_.Insert(Triple{kInvalidTermId, Id("p1"), Id("o1")}));
  EXPECT_FALSE(graph_.Insert(Triple{Id("s1"), kInvalidTermId, Id("o1")}));
  EXPECT_FALSE(graph_.Insert(Triple{Id("s1"), Id("p1"), kInvalidTermId}));
}

TEST_F(GraphTest, MatchBySubject) {
  const auto matches =
      graph_.Match(TriplePattern{Id("s1"), kInvalidTermId, kInvalidTermId});
  EXPECT_EQ(matches.size(), 3u);
}

TEST_F(GraphTest, MatchByPredicate) {
  const auto matches =
      graph_.Match(TriplePattern{kInvalidTermId, Id("p1"), kInvalidTermId});
  EXPECT_EQ(matches.size(), 3u);
}

TEST_F(GraphTest, MatchByObject) {
  const auto matches =
      graph_.Match(TriplePattern{kInvalidTermId, kInvalidTermId, Id("o1")});
  EXPECT_EQ(matches.size(), 3u);
}

TEST_F(GraphTest, MatchBySubjectAndPredicate) {
  const auto matches =
      graph_.Match(TriplePattern{Id("s1"), Id("p1"), kInvalidTermId});
  EXPECT_EQ(matches.size(), 2u);
}

TEST_F(GraphTest, MatchFullyBound) {
  EXPECT_EQ(graph_.Match(TriplePattern{Id("s1"), Id("p1"), Id("o2")}).size(),
            1u);
  EXPECT_EQ(graph_.Match(TriplePattern{Id("s2"), Id("p2"), Id("o2")}).size(),
            0u);
}

TEST_F(GraphTest, MatchUnboundScansAll) {
  EXPECT_EQ(graph_.Match(TriplePattern{}).size(), graph_.size());
}

TEST_F(GraphTest, MatchUnknownTermYieldsNothing) {
  // An id never interned cannot match anything.
  EXPECT_EQ(
      graph_.Match(TriplePattern{999999, kInvalidTermId, kInvalidTermId})
          .size(),
      0u);
}

TEST_F(GraphTest, EstimateMatchesIsAnUpperBound) {
  const TriplePattern patterns[] = {
      {},
      {Id("s1"), kInvalidTermId, kInvalidTermId},
      {kInvalidTermId, Id("p1"), kInvalidTermId},
      {Id("s1"), Id("p1"), Id("o1")},
      {Id("s2"), Id("p2"), kInvalidTermId},  // no matches
  };
  for (const auto& p : patterns) {
    EXPECT_GE(graph_.EstimateMatches(p), graph_.CountMatches(p));
  }
  // Fully unbound: estimate is the graph size.
  EXPECT_EQ(graph_.EstimateMatches(TriplePattern{}), graph_.size());
  // Unknown bound term: estimate 0.
  EXPECT_EQ(graph_.EstimateMatches(
                TriplePattern{999999, kInvalidTermId, kInvalidTermId}),
            0u);
}

TEST_F(GraphTest, CountMatchesAgreesWithMatch) {
  const TriplePattern patterns[] = {
      {},
      {Id("s1"), kInvalidTermId, kInvalidTermId},
      {kInvalidTermId, Id("p1"), kInvalidTermId},
      {Id("s1"), Id("p1"), Id("o1")},
  };
  for (const auto& p : patterns) {
    EXPECT_EQ(graph_.CountMatches(p), graph_.Match(p).size());
  }
}

TEST_F(GraphTest, ForEachMatchEarlyStop) {
  int calls = 0;
  graph_.ForEachMatch(TriplePattern{}, [&](const Triple&) {
    ++calls;
    return calls < 2;
  });
  EXPECT_EQ(calls, 2);
}

TEST_F(GraphTest, ObjectsAndSubjects) {
  const auto objects = graph_.Objects(Id("s1"), Id("p1"));
  EXPECT_EQ(objects.size(), 2u);
  const auto subjects = graph_.Subjects(Id("p1"), Id("o1"));
  EXPECT_EQ(subjects.size(), 2u);
}

TEST_F(GraphTest, FirstObject) {
  EXPECT_EQ(graph_.FirstObject(Id("s1"), Id("p2")), Id("o1"));
  EXPECT_EQ(graph_.FirstObject(Id("s1"), Id("p3")), kInvalidTermId);
}

TEST_F(GraphTest, DistinctSubjectsAndPredicates) {
  EXPECT_EQ(graph_.DistinctSubjects().size(), 2u);
  EXPECT_EQ(graph_.DistinctPredicates().size(), 3u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  const TermId a = dict.Intern(Term::Iri("x"));
  const TermId b = dict.Intern(Term::Iri("x"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidTermId);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, DistinctTermsGetDistinctIds) {
  TermDictionary dict;
  const TermId iri = dict.Intern(Term::Iri("x"));
  const TermId lit = dict.Intern(Term::Literal("x"));
  const TermId blank = dict.Intern(Term::BlankNode("x"));
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, RoundTrip) {
  TermDictionary dict;
  const Term original = Term::LangLiteral("hello", "en");
  const TermId id = dict.Intern(original);
  EXPECT_EQ(dict.term(id), original);
}

TEST(DictionaryTest, FindOnMissingTerm) {
  TermDictionary dict;
  EXPECT_EQ(dict.Find(Term::Iri("nope")), kInvalidTermId);
  EXPECT_EQ(dict.FindIri("nope"), kInvalidTermId);
  EXPECT_FALSE(dict.Contains(kInvalidTermId));
}

}  // namespace
}  // namespace rulelink::rdf
