#include "io/csv.h"

#include <gtest/gtest.h>

#include "io/item_loader.h"

namespace rulelink::io {
namespace {

TEST(CsvTest, BasicParsing) {
  auto table = ParseCsv("id,pn,mfr\n1,CRCW0805,Voltron\n2,T83,Tekdyne\n");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->header.size(), 3u);
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0][1], "CRCW0805");
  EXPECT_EQ(table->rows[1][2], "Tekdyne");
}

TEST(CsvTest, QuotedFields) {
  auto table = ParseCsv(
      "id,desc\n"
      "1,\"has, comma\"\n"
      "2,\"has \"\"quotes\"\"\"\n"
      "3,\"multi\nline\"\n");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->rows.size(), 3u);
  EXPECT_EQ(table->rows[0][1], "has, comma");
  EXPECT_EQ(table->rows[1][1], "has \"quotes\"");
  EXPECT_EQ(table->rows[2][1], "multi\nline");
}

TEST(CsvTest, CrLfLineEndings) {
  auto table = ParseCsv("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0][0], "1");
  EXPECT_EQ(table->rows[1][1], "4");
}

// Regression: a \r NOT followed by \n is field data, not a line ending.
// The parser used to swallow every unquoted \r, silently corrupting
// fields containing a bare carriage return ("a\rb" became "ab").
TEST(CsvTest, LoneCarriageReturnIsData) {
  auto table = ParseCsv("a,b\nx\ry,2\n");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][0], "x\ry");
  EXPECT_EQ(table->rows[0][1], "2");
}

// Regression: only the \r of a \r\n pair is stripped; a trailing \r with
// no newline after it stays in the final field.
TEST(CsvTest, TrailingCarriageReturnWithoutNewline) {
  auto table = ParseCsv("a,b\n1,2\r");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1], "2\r");
}

// Mixed endings in one file: CRLF records and LF records agree.
TEST(CsvTest, MixedLineEndings) {
  auto table = ParseCsv("a,b\r\n1,2\n3,4\r\n");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0][1], "2");
  EXPECT_EQ(table->rows[1][0], "3");
}

// A quoted field keeps \r\n verbatim — terminator stripping only applies
// outside quotes.
TEST(CsvTest, QuotedCrLfPreserved) {
  auto table = ParseCsv("a,b\n1,\"x\r\ny\"\n");
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1], "x\r\ny");
}

TEST(CsvTest, NoTrailingNewline) {
  auto table = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
}

TEST(CsvTest, EmptyFields) {
  auto table = ParseCsv("a,b,c\n,,\nx,,z\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[0][0], "");
  EXPECT_EQ(table->rows[1][1], "");
  EXPECT_EQ(table->rows[1][2], "z");
}

TEST(CsvTest, ShortRowsPadded) {
  auto table = ParseCsv("a,b,c\n1\n");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows[0].size(), 3u);
  EXPECT_EQ(table->rows[0][2], "");
}

TEST(CsvTest, OverlongRowRejectedWhenEnforcing) {
  EXPECT_FALSE(ParseCsv("a,b\n1,2,3\n").ok());
  CsvOptions options;
  options.enforce_width = false;
  auto table = ParseCsv("a,b\n1,2,3\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0].size(), 3u);
}

TEST(CsvTest, CustomSeparator) {
  CsvOptions options;
  options.separator = ';';
  auto table = ParseCsv("a;b\n1;2\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvTest, NoHeaderMode) {
  CsvOptions options;
  options.has_header = false;
  auto table = ParseCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->header.empty());
  EXPECT_EQ(table->rows.size(), 2u);
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n").ok());
}

// Regression: the unterminated-quote error names the line the quote
// OPENED on. The old message used the line count at end-of-scan, which
// for a quote spanning trailing lines pointed at the EOF line instead.
TEST(CsvTest, UnterminatedQuoteReportsOpeningLine) {
  const auto status = ParseCsv("a\nok\n\"oops\nmore\nlines\n").status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 3"), std::string::npos)
      << status.message();
}

TEST(CsvTest, EmptyContent) {
  EXPECT_FALSE(ParseCsv("").ok());  // header required by default
  CsvOptions options;
  options.has_header = false;
  auto table = ParseCsv("", options);
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(table->rows.empty());
}

TEST(CsvTest, ColumnIndex) {
  auto table = ParseCsv("id,pn\n1,x\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ColumnIndex("pn"), 1u);
  EXPECT_EQ(table->ColumnIndex("nope"), CsvTable::npos);
}

TEST(CsvFileTest, MissingFile) {
  EXPECT_EQ(ParseCsvFile("/nonexistent.csv").status().code(),
            util::StatusCode::kNotFound);
}

// --- Item loading ---------------------------------------------------------

constexpr char kProviderCsv[] =
    "sku,partnumber,manufacturer,notes\n"
    "D1,CRCW0805-10K-ohm,Voltron,\n"
    "D2,T83.106.16V,Tekdyne,tantalum\n";

TEST(ItemLoaderTest, AutoMapping) {
  ItemCsvMapping mapping;
  mapping.id_column = "sku";
  mapping.iri_prefix = "http://provider/";
  mapping.property_prefix = "http://provider/schema#";
  auto items = LoadItemsFromCsv(kProviderCsv, mapping);
  ASSERT_TRUE(items.ok()) << items.status();
  ASSERT_EQ(items->size(), 2u);
  EXPECT_EQ((*items)[0].iri, "http://provider/D1");
  // Empty "notes" skipped on D1, present on D2.
  EXPECT_EQ((*items)[0].facts.size(), 2u);
  EXPECT_EQ((*items)[1].facts.size(), 3u);
  EXPECT_EQ((*items)[0].ValuesOf("http://provider/schema#partnumber"),
            std::vector<std::string>{"CRCW0805-10K-ohm"});
}

TEST(ItemLoaderTest, ExplicitMapping) {
  ItemCsvMapping mapping;
  mapping.id_column = "sku";
  mapping.iri_prefix = "p:";
  mapping.columns = {{"partnumber", "http://s/pn"}};
  auto items = LoadItemsFromCsv(kProviderCsv, mapping);
  ASSERT_TRUE(items.ok());
  EXPECT_EQ((*items)[0].facts.size(), 1u);
  EXPECT_EQ((*items)[0].facts[0].property, "http://s/pn");
}

TEST(ItemLoaderTest, MissingIdColumn) {
  ItemCsvMapping mapping;
  mapping.id_column = "nope";
  EXPECT_FALSE(LoadItemsFromCsv(kProviderCsv, mapping).ok());
}

TEST(ItemLoaderTest, MissingMappedColumn) {
  ItemCsvMapping mapping;
  mapping.id_column = "sku";
  mapping.columns = {{"nope", "p"}};
  EXPECT_FALSE(LoadItemsFromCsv(kProviderCsv, mapping).ok());
}

TEST(ItemLoaderTest, DuplicateIdsRejected) {
  ItemCsvMapping mapping;
  mapping.id_column = "id";
  EXPECT_FALSE(
      LoadItemsFromCsv("id,pn\nX,1\nX,2\n", mapping).ok());
}

TEST(ItemLoaderTest, EmptyIdRejected) {
  ItemCsvMapping mapping;
  mapping.id_column = "id";
  EXPECT_FALSE(LoadItemsFromCsv("id,pn\n,1\n", mapping).ok());
}

}  // namespace
}  // namespace rulelink::io
