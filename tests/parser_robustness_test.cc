// Parser robustness: random mutations of valid inputs must never crash or
// corrupt state — every outcome is either a parsed graph or a clean
// InvalidArgument status. (The library is exception-free; a throw or
// abort anywhere in the parsing path fails the test run itself.)
#include <string>

#include <gtest/gtest.h>

#include "io/csv.h"
#include "rdf/nquads.h"
#include "rdf/ntriples.h"
#include "rdf/sparql.h"
#include "rdf/turtle.h"
#include "util/rng.h"

namespace rulelink {
namespace {

constexpr char kValidNTriples[] =
    "<http://e/a> <http://e/p> <http://e/b> .\n"
    "<http://e/a> <http://e/q> \"literal with \\\"escapes\\\"\" .\n"
    "_:b1 <http://e/p> \"42\"^^<http://e/int> .\n"
    "<http://e/c> <http://e/p> \"lang\"@en-GB .\n";

constexpr char kValidTurtle[] =
    "@prefix ex: <http://e/> .\n"
    "ex:a a ex:Class ; ex:p ex:b , \"v\" ;\n"
    "     ex:q \"x\"@fr .\n"
    "_:n ex:p \"5\"^^ex:int .\n";

constexpr char kValidSparql[] =
    "PREFIX ex: <http://e/>\n"
    "SELECT DISTINCT ?s ?o WHERE {\n"
    "  ?s ex:p ?o . FILTER regex(?o, \"v\")\n"
    "} LIMIT 5";

constexpr char kValidCsv[] =
    "id,pn,desc\n"
    "1,CRCW0805,\"has, comma\"\n"
    "2,T83,\"quote \"\" inside\"\n";

std::string Mutate(std::string input, util::Rng* rng) {
  const std::size_t edits = 1 + rng->UniformUint64(4);
  for (std::size_t e = 0; e < edits && !input.empty(); ++e) {
    const std::size_t pos = rng->UniformUint64(input.size());
    switch (rng->UniformUint64(4)) {
      case 0:  // substitute with a random byte (printable-ish range)
        input[pos] = static_cast<char>(32 + rng->UniformUint64(95));
        break;
      case 1:  // delete
        input.erase(input.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
      case 2:  // duplicate a byte
        input.insert(input.begin() + static_cast<std::ptrdiff_t>(pos),
                     input[pos]);
        break;
      case 3:  // insert a structural character
        input.insert(pos, 1, "<>\"\\.;,@{}()?#\n"[rng->UniformUint64(15)]);
        break;
    }
  }
  return input;
}

class ParserRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserRobustness, NTriplesNeverCrashes) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    rdf::Graph g;
    const auto status = rdf::ParseNTriples(Mutate(kValidNTriples, &rng), &g);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
    }
  }
}

TEST_P(ParserRobustness, TurtleNeverCrashes) {
  util::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 300; ++i) {
    rdf::Graph g;
    const auto status = rdf::ParseTurtle(Mutate(kValidTurtle, &rng), &g);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
    }
  }
}

TEST_P(ParserRobustness, NQuadsNeverCrashes) {
  util::Rng rng(GetParam() + 2000);
  for (int i = 0; i < 300; ++i) {
    rdf::Dataset dataset;
    const auto status =
        rdf::ParseNQuads(Mutate(kValidNTriples, &rng), &dataset);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
    }
  }
}

TEST_P(ParserRobustness, SparqlNeverCrashes) {
  util::Rng rng(GetParam() + 3000);
  rdf::Graph g;
  ASSERT_TRUE(rdf::ParseNTriples(kValidNTriples, &g).ok());
  for (int i = 0; i < 300; ++i) {
    const auto result = rdf::RunSparql(g, Mutate(kValidSparql, &rng));
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(),
                util::StatusCode::kInvalidArgument);
    }
  }
}

TEST_P(ParserRobustness, CsvNeverCrashes) {
  util::Rng rng(GetParam() + 4000);
  for (int i = 0; i < 300; ++i) {
    const auto result = io::ParseCsv(Mutate(kValidCsv, &rng));
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(),
                util::StatusCode::kInvalidArgument);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness,
                         ::testing::Values(1, 42, 777));

}  // namespace
}  // namespace rulelink
