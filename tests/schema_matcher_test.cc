#include "linking/schema_matcher.h"

#include <gtest/gtest.h>

namespace rulelink::linking {
namespace {

core::Item MakeItem(const std::string& iri,
                    std::vector<core::PropertyValue> facts) {
  core::Item item;
  item.iri = iri;
  item.facts = std::move(facts);
  return item;
}

class SchemaMatcherTest : public ::testing::Test {
 protected:
  SchemaMatcherTest() {
    // Provider uses "pn"/"maker"; catalog uses "partNumber"/"manufacturer".
    for (int i = 0; i < 10; ++i) {
      const std::string serial = "S" + std::to_string(i * 37);
      external_.push_back(MakeItem(
          "e" + std::to_string(i),
          {{"pn", "CRCW0805-" + serial}, {"maker", "Voltron"}}));
      local_.push_back(MakeItem(
          "l" + std::to_string(i),
          {{"partNumber", "CRCW0805-" + serial},
           {"manufacturer", "Voltron"},
           {"stock", std::to_string(1000 + i)}}));
    }
  }

  std::vector<core::Item> external_, local_;
};

TEST_F(SchemaMatcherTest, AlignsByValueOverlap) {
  const auto alignments = MatchSchemas(external_, local_);
  ASSERT_EQ(alignments.size(), 2u);
  // Both alignments found with high similarity.
  for (const auto& alignment : alignments) {
    if (alignment.external_property == "pn") {
      EXPECT_EQ(alignment.local_property, "partNumber");
      EXPECT_GT(alignment.similarity, 0.9);
    } else {
      EXPECT_EQ(alignment.external_property, "maker");
      EXPECT_EQ(alignment.local_property, "manufacturer");
      EXPECT_GT(alignment.similarity, 0.9);
    }
  }
}

TEST_F(SchemaMatcherTest, SortedBySimilarity) {
  const auto alignments = MatchSchemas(external_, local_);
  for (std::size_t i = 1; i < alignments.size(); ++i) {
    EXPECT_GE(alignments[i - 1].similarity, alignments[i].similarity);
  }
}

TEST_F(SchemaMatcherTest, MinSimilarityDropsWeakAlignments) {
  // An external property with no local counterpart.
  external_[0].facts.push_back({"internal-code", "zzz-qqq-987654"});
  SchemaMatcherOptions options;
  options.min_similarity = 0.2;
  const auto alignments = MatchSchemas(external_, local_, options);
  for (const auto& alignment : alignments) {
    EXPECT_NE(alignment.external_property, "internal-code");
  }
}

TEST_F(SchemaMatcherTest, WholeValueModeIsStricter) {
  // Provider renders the same part numbers with different separators:
  // token mode still aligns, whole-value mode does not.
  std::vector<core::Item> reformatted;
  for (int i = 0; i < 10; ++i) {
    reformatted.push_back(MakeItem(
        "e" + std::to_string(i),
        {{"pn", "CRCW0805/S" + std::to_string(i * 37)}}));
  }
  SchemaMatcherOptions tokens;
  tokens.tokenize = true;
  const auto with_tokens = MatchSchemas(reformatted, local_, tokens);
  ASSERT_FALSE(with_tokens.empty());
  EXPECT_EQ(with_tokens[0].local_property, "partNumber");

  SchemaMatcherOptions whole;
  whole.tokenize = false;
  whole.min_similarity = 0.5;
  EXPECT_TRUE(MatchSchemas(reformatted, local_, whole).empty());
}

TEST_F(SchemaMatcherTest, EmptyInputs) {
  EXPECT_TRUE(MatchSchemas({}, local_).empty());
  EXPECT_TRUE(MatchSchemas(external_, {}).empty());
}

TEST_F(SchemaMatcherTest, SampleLimitStillFindsAlignment) {
  SchemaMatcherOptions options;
  options.sample_limit = 3;
  const auto alignments = MatchSchemas(external_, local_, options);
  ASSERT_FALSE(alignments.empty());
}

}  // namespace
}  // namespace rulelink::linking
