#include "core/generalizer.h"

#include <memory>

#include <gtest/gtest.h>

#include "text/segmenter.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

// Taxonomy: Root -> Resistor -> {FilmR, WireR}; Root -> Capacitor.
// Segment "ohm" appears on every resistor (both leaves) but on no
// capacitor: at leaf level its confidence is ~0.5 per leaf, while at
// Resistor level it is 1.0 — exactly the paper's §6 generalization case.
class GeneralizerTest : public ::testing::Test {
 protected:
  GeneralizerTest() {
    root_ = onto_.AddClass("ex:Root", "Root");
    resistor_ = onto_.AddClass("ex:Resistor", "Resistor");
    film_ = onto_.AddClass("ex:FilmR", "Film resistor");
    wire_ = onto_.AddClass("ex:WireR", "Wirewound resistor");
    cap_ = onto_.AddClass("ex:Cap", "Capacitor");
    RL_CHECK_OK(onto_.AddSubClassOf(resistor_, root_));
    RL_CHECK_OK(onto_.AddSubClassOf(film_, resistor_));
    RL_CHECK_OK(onto_.AddSubClassOf(wire_, resistor_));
    RL_CHECK_OK(onto_.AddSubClassOf(cap_, root_));
    RL_CHECK_OK(onto_.Finalize());
    ts_ = std::make_unique<TrainingSet>(onto_);

    // 4 film + 4 wire resistors, all with "ohm"; film also carry "F77",
    // 4 capacitors with "uF".
    for (int i = 0; i < 4; ++i) {
      AddExample("ohm-F77-S" + std::to_string(i), film_);
    }
    for (int i = 0; i < 4; ++i) {
      AddExample("ohm-W-S" + std::to_string(i), wire_);
    }
    for (int i = 0; i < 4; ++i) {
      AddExample("uF-S" + std::to_string(i), cap_);
    }
  }

  void AddExample(const std::string& pn, ontology::ClassId cls) {
    Item item;
    item.iri = "ext:" + std::to_string(ts_->size());
    item.facts.push_back(PropertyValue{"pn", pn});
    ts_->AddExample(item, "local:" + std::to_string(ts_->size()), {cls});
  }

  const ClassificationRule* FindRule(const RuleSet& rules,
                                     const std::string& segment,
                                     ontology::ClassId cls) {
    for (const auto& rule : rules.rules()) {
      if (rules.segment_text(rule) == segment && rule.cls == cls) {
        return &rule;
      }
    }
    return nullptr;
  }

  GeneralizerOptions Options(double min_confidence,
                             std::size_t levels = 3) {
    GeneralizerOptions options;
    options.support_threshold = 0.1;
    options.min_confidence = min_confidence;
    options.max_levels_up = levels;
    options.segmenter = &segmenter_;
    return options;
  }

  ontology::Ontology onto_;
  ontology::ClassId root_, resistor_, film_, wire_, cap_;
  std::unique_ptr<TrainingSet> ts_;
  text::SeparatorSegmenter segmenter_;
};

TEST_F(GeneralizerTest, GeneralizesAmbiguousSegmentToParent) {
  auto rules = LearnGeneralizedRules(*ts_, Options(0.9));
  ASSERT_TRUE(rules.ok()) << rules.status();
  // "ohm" cannot reach 0.9 on either leaf (0.5 each) but is perfect on
  // Resistor.
  EXPECT_EQ(FindRule(*rules, "ohm", film_), nullptr);
  EXPECT_EQ(FindRule(*rules, "ohm", wire_), nullptr);
  const ClassificationRule* ohm = FindRule(*rules, "ohm", resistor_);
  ASSERT_NE(ohm, nullptr);
  EXPECT_DOUBLE_EQ(ohm->confidence, 1.0);
  EXPECT_EQ(ohm->counts.premise_count, 8u);
  EXPECT_EQ(ohm->counts.class_count, 8u);   // widened membership
  EXPECT_EQ(ohm->counts.joint_count, 8u);
}

TEST_F(GeneralizerTest, LeafRuleSuppressesItsAncestors) {
  auto rules = LearnGeneralizedRules(*ts_, Options(0.9));
  ASSERT_TRUE(rules.ok());
  // "F77" is perfect on the FilmR leaf already; Resistor/Root rules for it
  // must be suppressed as less specific.
  EXPECT_NE(FindRule(*rules, "F77", film_), nullptr);
  EXPECT_EQ(FindRule(*rules, "F77", resistor_), nullptr);
  EXPECT_EQ(FindRule(*rules, "F77", root_), nullptr);
}

TEST_F(GeneralizerTest, MaxLevelsUpLimitsClimb) {
  // With 0 levels the generalizer can only use leaf conclusions: "ohm"
  // finds no home at 0.9 confidence.
  auto rules = LearnGeneralizedRules(*ts_, Options(0.9, 0));
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(FindRule(*rules, "ohm", resistor_), nullptr);
  EXPECT_EQ(FindRule(*rules, "ohm", film_), nullptr);
}

TEST_F(GeneralizerTest, GeneralizedLiftUsesWidenedPrior) {
  auto rules = LearnGeneralizedRules(*ts_, Options(0.9));
  ASSERT_TRUE(rules.ok());
  const ClassificationRule* ohm = FindRule(*rules, "ohm", resistor_);
  ASSERT_NE(ohm, nullptr);
  // prior(Resistor) = 8/12 -> lift = 1 / (8/12) = 1.5.
  EXPECT_NEAR(ohm->lift, 1.5, 1e-9);
}

TEST_F(GeneralizerTest, UfStaysOnLeaf) {
  auto rules = LearnGeneralizedRules(*ts_, Options(0.9));
  ASSERT_TRUE(rules.ok());
  EXPECT_NE(FindRule(*rules, "uF", cap_), nullptr);
}

TEST_F(GeneralizerTest, ErrorHandling) {
  GeneralizerOptions options;  // no segmenter
  EXPECT_FALSE(LearnGeneralizedRules(*ts_, options).ok());
  options.segmenter = &segmenter_;
  options.support_threshold = 0.0;
  EXPECT_FALSE(LearnGeneralizedRules(*ts_, options).ok());
  options.support_threshold = 0.1;
  TrainingSet empty(onto_);
  EXPECT_FALSE(LearnGeneralizedRules(empty, options).ok());
}

TEST_F(GeneralizerTest, LowConfidenceTargetKeepsLeaves) {
  // With a 0.4 bar the leaf "ohm" rules qualify directly and, being more
  // specific, suppress the Resistor generalization.
  auto rules = LearnGeneralizedRules(*ts_, Options(0.4));
  ASSERT_TRUE(rules.ok());
  EXPECT_NE(FindRule(*rules, "ohm", film_), nullptr);
  EXPECT_NE(FindRule(*rules, "ohm", wire_), nullptr);
  EXPECT_EQ(FindRule(*rules, "ohm", resistor_), nullptr);
}

}  // namespace
}  // namespace rulelink::core
