#include "rdf/sparql.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "rdf/turtle.h"

namespace rulelink::rdf {
namespace {

class SparqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto status = ParseTurtle(
        "@prefix ex: <http://e/> .\n"
        "@prefix s: <http://s/> .\n"
        "ex:r1 a ex:Resistor ; s:pn \"CRCW-1\" ; s:mfr \"Volt\" .\n"
        "ex:r2 a ex:Resistor ; s:pn \"CRCW-2\" ; s:mfr \"Tek\" .\n"
        "ex:c1 a ex:Capacitor ; s:pn \"T83-1\" ; s:mfr \"Volt\" .\n",
        &graph_);
    ASSERT_TRUE(status.ok()) << status;
  }

  Graph graph_;
};

TEST_F(SparqlTest, BasicSelect) {
  auto rows = RunSparql(graph_,
                        "PREFIX ex: <http://e/>\n"
                        "SELECT ?item WHERE { ?item a ex:Resistor . }");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  std::set<std::string> items;
  for (const auto& row : *rows) items.insert(row[0]);
  EXPECT_TRUE(items.count("<http://e/r1>"));
  EXPECT_TRUE(items.count("<http://e/r2>"));
}

TEST_F(SparqlTest, JoinWithProjectionOrder) {
  auto rows = RunSparql(
      graph_,
      "PREFIX ex: <http://e/> PREFIX s: <http://s/>\n"
      "SELECT ?pn ?item WHERE {\n"
      "  ?item a ex:Capacitor .\n"
      "  ?item s:pn ?pn .\n"
      "}");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "T83-1");            // literal lexical form
  EXPECT_EQ((*rows)[0][1], "<http://e/c1>");    // IRI in N-Triples form
}

TEST_F(SparqlTest, SelectStarProjectsAllVariables) {
  auto parsed = ParseSparql("SELECT * WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->projection.empty());
  auto rows = RunSparql(graph_, "SELECT * WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), graph_.size());
  EXPECT_EQ((*rows)[0].size(), 3u);
}

TEST_F(SparqlTest, LiteralConstantInObjectPosition) {
  auto rows = RunSparql(graph_,
                        "PREFIX s: <http://s/>\n"
                        "SELECT ?item WHERE { ?item s:mfr \"Volt\" . }");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(SparqlTest, FullIriTerm) {
  auto rows = RunSparql(
      graph_,
      "SELECT ?pn WHERE { <http://e/r1> <http://s/pn> ?pn . }");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "CRCW-1");
}

TEST_F(SparqlTest, DistinctAndLimit) {
  auto parsed = ParseSparql(
      "SELECT DISTINCT ?s WHERE { ?s ?p ?o . } LIMIT 2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->query.distinct());
  EXPECT_EQ(parsed->query.limit(), 2u);
}

TEST_F(SparqlTest, CommentsAndWhitespaceTolerated) {
  auto rows = RunSparql(graph_,
                        "# find resistors\n"
                        "PREFIX ex: <http://e/>   # ns\n"
                        "SELECT ?i\n"
                        "WHERE {\n"
                        "   ?i a ex:Resistor .   # pattern\n"
                        "}\n");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(SparqlTest, TrailingDotOptionalBeforeBrace) {
  auto rows = RunSparql(graph_,
                        "PREFIX ex: <http://e/>\n"
                        "SELECT ?i WHERE { ?i a ex:Resistor }");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(SparqlTest, KeywordsAreCaseInsensitive) {
  auto rows = RunSparql(graph_,
                        "prefix ex: <http://e/>\n"
                        "select ?i where { ?i a ex:Resistor . } limit 1");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(SparqlTest, RegexFilter) {
  auto rows = RunSparql(graph_,
                        "PREFIX s: <http://s/>\n"
                        "SELECT ?item WHERE {\n"
                        "  ?item s:pn ?pn .\n"
                        "  FILTER regex(?pn, \"^T83\")\n"
                        "}");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "<http://e/c1>");
}

TEST_F(SparqlTest, RegexFilterCaseInsensitiveFlag) {
  auto rows = RunSparql(graph_,
                        "PREFIX s: <http://s/>\n"
                        "SELECT ?item WHERE {\n"
                        "  ?item s:pn ?pn .\n"
                        "  FILTER regex(?pn, \"t83\", \"i\")\n"
                        "}");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 1u);
  // Without the flag, nothing matches.
  auto strict = RunSparql(graph_,
                          "PREFIX s: <http://s/>\n"
                          "SELECT ?item WHERE { ?item s:pn ?pn . "
                          "FILTER regex(?pn, \"t83\") }");
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->empty());
}

TEST_F(SparqlTest, NotEqualFilter) {
  // Distinct items sharing a manufacturer: the dedup query shape.
  auto rows = RunSparql(graph_,
                        "PREFIX s: <http://s/>\n"
                        "SELECT ?a ?b WHERE {\n"
                        "  ?a s:mfr ?m .\n"
                        "  ?b s:mfr ?m .\n"
                        "  FILTER (?a != ?b)\n"
                        "}");
  ASSERT_TRUE(rows.ok()) << rows.status();
  // Volt: {r1, c1} -> 2 ordered pairs; Tek alone -> none.
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(SparqlTest, FilterErrors) {
  Graph g;
  EXPECT_FALSE(
      RunSparql(g, "SELECT ?s WHERE { ?s ?p ?o . FILTER regex(?s, \"[\") }")
          .ok());  // bad regex
  EXPECT_FALSE(
      RunSparql(g, "SELECT ?s WHERE { ?s ?p ?o . FILTER (?s = ?o) }")
          .ok());  // only != supported
  EXPECT_FALSE(
      RunSparql(g,
                "SELECT ?s WHERE { ?s ?p ?o . FILTER bound(?s) }")
          .ok());  // unsupported function
  EXPECT_FALSE(
      RunSparql(g,
                "SELECT ?s WHERE { ?s ?p ?o . "
                "FILTER regex(?s, \"x\", \"gms\") }")
          .ok());  // unsupported flags
}

struct BadQuery {
  const char* name;
  const char* text;
};

class SparqlErrorTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(SparqlErrorTest, Rejected) {
  Graph g;
  EXPECT_FALSE(RunSparql(g, GetParam().text).ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Bad, SparqlErrorTest,
    ::testing::Values(
        BadQuery{"no_select", "WHERE { ?s ?p ?o . }"},
        BadQuery{"no_where", "SELECT ?s { ?s ?p ?o . }"},
        BadQuery{"empty_projection", "SELECT WHERE { ?s ?p ?o . }"},
        BadQuery{"unterminated_block", "SELECT ?s WHERE { ?s ?p ?o ."},
        BadQuery{"undeclared_prefix",
                 "SELECT ?s WHERE { ?s ex:p ?o . }"},
        BadQuery{"literal_predicate",
                 "SELECT ?s WHERE { ?s \"p\" ?o . }"},
        BadQuery{"projection_not_in_where",
                 "SELECT ?nope WHERE { ?s ?p ?o . }"},
        BadQuery{"optional_unsupported",
                 "SELECT ?s WHERE { ?s ?p ?o . } OPTIONAL { ?s ?q ?r }"},
        BadQuery{"zero_limit", "SELECT ?s WHERE { ?s ?p ?o . } LIMIT 0"},
        BadQuery{"bad_limit", "SELECT ?s WHERE { ?s ?p ?o . } LIMIT x"}),
    [](const ::testing::TestParamInfo<BadQuery>& info) {
      return info.param.name;
    });

TEST_F(SparqlTest, TypedAndLangLiterals) {
  Graph g;
  ASSERT_TRUE(ParseTurtle(
                  "@prefix ex: <http://e/> .\n"
                  "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
                  "ex:a ex:v \"42\"^^xsd:integer ; ex:l \"hi\"@en .\n",
                  &g)
                  .ok());
  auto typed = RunSparql(
      g,
      "PREFIX ex: <http://e/>\n"
      "SELECT ?s WHERE { ?s ex:v "
      "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer> . }");
  ASSERT_TRUE(typed.ok()) << typed.status();
  EXPECT_EQ(typed->size(), 1u);
  auto lang = RunSparql(g,
                        "PREFIX ex: <http://e/>\n"
                        "SELECT ?s WHERE { ?s ex:l \"hi\"@en . }");
  ASSERT_TRUE(lang.ok()) << lang.status();
  EXPECT_EQ(lang->size(), 1u);
}

}  // namespace
}  // namespace rulelink::rdf
