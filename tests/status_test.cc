#include "util/status.h"

#include <gtest/gtest.h>

namespace rulelink::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkStatusFactory) { EXPECT_TRUE(OkStatus().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllFactoriesMapToTheirCode) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), OkStatus());
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusCodeTest, ToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDataLoss), "DATA_LOSS");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(NotFoundError("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  ASSERT_TRUE(r.ok());
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return InvalidArgumentError("not positive");
  return x;
}

Status UsesReturnIfError(int x) {
  RL_RETURN_IF_ERROR(ParsePositive(x).status());
  return OkStatus();
}

Result<int> UsesAssignOrReturn(int x) {
  RL_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  return v + 1;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnBindsOrPropagates) {
  auto ok = UsesAssignOrReturn(41);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

}  // namespace
}  // namespace rulelink::util
