#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace rulelink::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformUint64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformUint64(17), 17u);
  }
}

TEST(RngTest, UniformUint64CoversRange) {
  Rng rng(7);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) ++hits[rng.UniformUint64(5)];
  for (int h : hits) EXPECT_GT(h, 800);  // expected 1000 each
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeProbabilities) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(19);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 20000; ++i) ++hits[rng.WeightedIndex(weights)];
  EXPECT_EQ(hits[2], 0);  // zero weight never drawn
  EXPECT_NEAR(hits[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(hits[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(hits[3] / 20000.0, 0.6, 0.02);
}

TEST(RngTest, AlnumStringHasRequestedLengthAndAlphabet) {
  Rng rng(23);
  const std::string s = rng.AlnumString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_TRUE((c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) << c;
  }
  EXPECT_TRUE(rng.AlnumString(0).empty());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  const ZipfSampler zipf(100, 1.1);
  double total = 0;
  for (std::size_t r = 0; r < zipf.size(); ++r) {
    total += zipf.Probability(r);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, HeadIsHeavier) {
  const ZipfSampler zipf(50, 1.0);
  EXPECT_GT(zipf.Probability(0), zipf.Probability(1));
  EXPECT_GT(zipf.Probability(1), zipf.Probability(10));
  EXPECT_GT(zipf.Probability(10), zipf.Probability(49));
}

TEST(ZipfTest, SampleMatchesHeadProbability) {
  Rng rng(31);
  const ZipfSampler zipf(20, 1.0);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += zipf.Sample(&rng) == 0;
  EXPECT_NEAR(head / static_cast<double>(n), zipf.Probability(0), 0.02);
}

// Property sweep: rejection sampling must be unbiased for awkward bounds.
class RngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundSweep, UniformUint64MeanIsCentered) {
  Rng rng(GetParam() * 977 + 1);
  const std::uint64_t bound = GetParam();
  double sum = 0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.UniformUint64(bound));
  }
  const double expected = (static_cast<double>(bound) - 1.0) / 2.0;
  EXPECT_NEAR(sum / n, expected, std::max(0.5, expected * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundSweep,
                         ::testing::Values(1, 2, 3, 7, 10, 100, 1000,
                                           1ull << 33));

}  // namespace
}  // namespace rulelink::util
