#include "core/linking_space.h"

#include <memory>

#include <gtest/gtest.h>

#include "rdf/turtle.h"
#include "text/segmenter.h"
#include "util/interner.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

// Shared symbol table for hand-built test rules; RuleSet re-interns
// compactly, so sharing ids across fixtures is harmless.
util::StringInterner& TestSegments() {
  static util::StringInterner* interner = new util::StringInterner();
  return *interner;
}

ClassificationRule MakeRule(PropertyId property, const std::string& segment,
                            ontology::ClassId cls, double confidence_num,
                            double confidence_den) {
  ClassificationRule rule;
  rule.property = property;
  rule.segment = TestSegments().Intern(segment);
  rule.cls = cls;
  rule.counts = RuleCounts{static_cast<std::size_t>(confidence_den),
                           10, static_cast<std::size_t>(confidence_num),
                           100};
  rule.ComputeMeasures();
  return rule;
}

// Local source: class A {l1,l2}, class B {l3}, subclass A1 of A {l4}.
class LinkingSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(rdf::ParseTurtle(
                    "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
                    "@prefix ex: <http://e/> .\n"
                    "ex:A rdfs:subClassOf ex:Root .\n"
                    "ex:B rdfs:subClassOf ex:Root .\n"
                    "ex:A1 rdfs:subClassOf ex:A .\n"
                    "ex:l1 a ex:A .\n"
                    "ex:l2 a ex:A .\n"
                    "ex:l3 a ex:B .\n"
                    "ex:l4 a ex:A1 .\n",
                    &local_)
                    .ok());
    auto onto_or = ontology::Ontology::FromGraph(local_);
    ASSERT_TRUE(onto_or.ok());
    onto_ = std::move(onto_or).value();
    index_ = std::make_unique<ontology::InstanceIndex>(
        ontology::InstanceIndex::Build(local_, onto_));

    properties_.Intern("pn");
    std::vector<ClassificationRule> rules;
    rules.push_back(MakeRule(0, "AAA", onto_.FindByIri("http://e/A"), 10, 10));
    rules.push_back(MakeRule(0, "BBB", onto_.FindByIri("http://e/B"), 8, 10));
    set_ = std::make_unique<RuleSet>(std::move(rules), properties_,
                                     TestSegments());
    classifier_ = std::make_unique<RuleClassifier>(set_.get(), &segmenter_);
    analyzer_ = std::make_unique<LinkingSpaceAnalyzer>(classifier_.get(),
                                                       index_.get());
  }

  Item MakeItem(const std::string& pn) {
    Item item;
    item.iri = "ext:x";
    item.facts.push_back(PropertyValue{"pn", pn});
    return item;
  }

  rdf::Graph local_;
  ontology::Ontology onto_;
  std::unique_ptr<ontology::InstanceIndex> index_;
  PropertyCatalog properties_;
  std::unique_ptr<RuleSet> set_;
  text::SeparatorSegmenter segmenter_;
  std::unique_ptr<RuleClassifier> classifier_;
  std::unique_ptr<LinkingSpaceAnalyzer> analyzer_;
};

TEST_F(LinkingSpaceTest, SubspaceIncludesSubclassInstances) {
  // Class A's transitive extent: l1, l2 and A1's l4.
  EXPECT_EQ(analyzer_->SubspaceSize(MakeItem("AAA-1"), 0.0,
                                    UnclassifiedPolicy::kSkip),
            3u);
}

TEST_F(LinkingSpaceTest, SubspaceOfLeafClass) {
  EXPECT_EQ(analyzer_->SubspaceSize(MakeItem("BBB-1"), 0.0,
                                    UnclassifiedPolicy::kSkip),
            1u);
}

TEST_F(LinkingSpaceTest, UnionOfTwoPredictions) {
  EXPECT_EQ(analyzer_->SubspaceSize(MakeItem("AAA-BBB"), 0.0,
                                    UnclassifiedPolicy::kSkip),
            4u);
}

TEST_F(LinkingSpaceTest, UnclassifiedPolicies) {
  const Item unknown = MakeItem("ZZZ");
  EXPECT_EQ(analyzer_->SubspaceSize(unknown, 0.0,
                                    UnclassifiedPolicy::kSkip),
            0u);
  EXPECT_EQ(analyzer_->SubspaceSize(unknown, 0.0,
                                    UnclassifiedPolicy::kCompareAll),
            4u);  // whole local source
}

TEST_F(LinkingSpaceTest, MinConfidenceChangesSubspace) {
  // BBB rule has confidence 0.8; at min_confidence 0.9 it no longer fires.
  EXPECT_EQ(analyzer_->SubspaceSize(MakeItem("AAA-BBB"), 0.9,
                                    UnclassifiedPolicy::kSkip),
            3u);
}

TEST_F(LinkingSpaceTest, CandidatesAreRankedAndDeduplicated) {
  const auto candidates = analyzer_->Candidates(MakeItem("BBB-AAA"), 0.0);
  ASSERT_EQ(candidates.size(), 4u);
  // AAA rule (confidence 1) outranks BBB (0.8): A's instances come first.
  EXPECT_EQ(index_->IriOf(candidates[0]), "http://e/l1");
}

TEST_F(LinkingSpaceTest, AnalyzeAggregates) {
  const std::vector<Item> external = {MakeItem("AAA-1"), MakeItem("BBB-2"),
                                      MakeItem("ZZZ-3")};
  const auto report = analyzer_->Analyze(external, 0.0,
                                         UnclassifiedPolicy::kSkip);
  EXPECT_EQ(report.num_external_items, 3u);
  EXPECT_EQ(report.local_size, 4u);
  EXPECT_EQ(report.naive_pairs, 12u);
  EXPECT_EQ(report.reduced_pairs, 3u + 1u);  // A-subspace + B-subspace
  EXPECT_EQ(report.classified_items, 2u);
  EXPECT_EQ(report.unclassified_items, 1u);
  EXPECT_NEAR(report.reduction_ratio, 1.0 - 4.0 / 12.0, 1e-12);
  EXPECT_NEAR(report.mean_subspace_fraction, (3.0 / 4 + 1.0 / 4) / 2, 1e-12);
}

TEST_F(LinkingSpaceTest, AnalyzeCompareAllPolicy) {
  const std::vector<Item> external = {MakeItem("ZZZ")};
  const auto report = analyzer_->Analyze(external, 0.0,
                                         UnclassifiedPolicy::kCompareAll);
  EXPECT_EQ(report.reduced_pairs, 4u);
  EXPECT_NEAR(report.reduction_ratio, 0.0, 1e-12);
}

TEST_F(LinkingSpaceTest, EmptyExternalSource) {
  const auto report =
      analyzer_->Analyze({}, 0.0, UnclassifiedPolicy::kSkip);
  EXPECT_EQ(report.naive_pairs, 0u);
  EXPECT_DOUBLE_EQ(report.reduction_ratio, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_subspace_fraction, 0.0);
}

}  // namespace
}  // namespace rulelink::core
