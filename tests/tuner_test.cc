#include "eval/tuner.h"

#include <memory>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "util/logging.h"

namespace rulelink::eval {
namespace {

class TunerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::DatasetConfig config;
    config.seed = 31;
    config.num_classes = 60;
    config.num_leaves = 25;
    config.catalog_size = 1800;
    config.num_links = 600;
    config.num_signal_classes = 5;
    config.num_other_frequent_classes = 7;
    config.signal_class_min_links = 35;
    config.signal_class_max_links = 70;
    config.frequent_class_min_links = 8;
    config.frequent_class_max_links = 14;
    config.tail_class_cap_links = 5;
    auto dataset = datagen::DatasetGenerator(config).Generate();
    RL_CHECK(dataset.ok());
    dataset_ = new datagen::Dataset(std::move(dataset).value());
    ts_ = new core::TrainingSet(datagen::BuildTrainingSet(*dataset_));
  }
  static void TearDownTestSuite() {
    delete ts_;
    delete dataset_;
    ts_ = nullptr;
    dataset_ = nullptr;
  }

  TunerOptions Options() const {
    TunerOptions options;
    options.segmenter = &segmenter_;
    options.support_thresholds = {0.005, 0.01, 0.05};
    options.confidence_floors = {0.0, 0.8};
    return options;
  }

  static datagen::Dataset* dataset_;
  static core::TrainingSet* ts_;
  text::SeparatorSegmenter segmenter_;
};

datagen::Dataset* TunerTest::dataset_ = nullptr;
core::TrainingSet* TunerTest::ts_ = nullptr;

TEST_F(TunerTest, EvaluatesFullGridRankedByFBeta) {
  auto candidates = TuneThresholds(*ts_, Options());
  ASSERT_TRUE(candidates.ok()) << candidates.status();
  EXPECT_EQ(candidates->size(), 6u);  // 3 thresholds x 2 floors
  for (std::size_t i = 1; i < candidates->size(); ++i) {
    EXPECT_GE((*candidates)[i - 1].f_beta, (*candidates)[i].f_beta);
  }
  // The best configuration must actually decide something.
  EXPECT_GT(candidates->front().holdout.decided, 0u);
  EXPECT_GT(candidates->front().f_beta, 0.0);
}

TEST_F(TunerTest, ExtremeThresholdLosesToModerate) {
  TunerOptions options = Options();
  options.support_thresholds = {0.01, 0.4};  // 0.4: nothing is frequent
  auto candidates = TuneThresholds(*ts_, options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_DOUBLE_EQ(candidates->front().support_threshold, 0.01);
  // The starved configuration scores zero.
  EXPECT_DOUBLE_EQ(candidates->back().f_beta, 0.0);
}

TEST_F(TunerTest, BetaShiftsTheWinner) {
  // Precision-weighted tuning should prefer a configuration with a
  // confidence floor at least as high as the recall-weighted winner's.
  TunerOptions precision_weighted = Options();
  precision_weighted.beta = 0.25;
  TunerOptions recall_weighted = Options();
  recall_weighted.beta = 4.0;
  auto p = TuneThresholds(*ts_, precision_weighted);
  auto r = TuneThresholds(*ts_, recall_weighted);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_GE(p->front().holdout.precision, r->front().holdout.precision);
  EXPECT_LE(p->front().holdout.recall, r->front().holdout.recall + 1e-12);
}

TEST_F(TunerTest, DeterministicSplitAcrossCells) {
  auto a = TuneThresholds(*ts_, Options());
  auto b = TuneThresholds(*ts_, Options());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].holdout.correct, (*b)[i].holdout.correct);
  }
}

TEST_F(TunerTest, Errors) {
  TunerOptions bad = Options();
  bad.segmenter = nullptr;
  EXPECT_FALSE(TuneThresholds(*ts_, bad).ok());
  bad = Options();
  bad.support_thresholds.clear();
  EXPECT_FALSE(TuneThresholds(*ts_, bad).ok());
}

}  // namespace
}  // namespace rulelink::eval
