#include "core/training_set.h"

#include <memory>

#include <gtest/gtest.h>

#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

class TrainingSetTest : public ::testing::Test {
 protected:
  TrainingSetTest() {
    root_ = onto_.AddClass("ex:Root");
    a_ = onto_.AddClass("ex:A");
    b_ = onto_.AddClass("ex:B");
    RL_CHECK_OK(onto_.AddSubClassOf(a_, root_));
    RL_CHECK_OK(onto_.AddSubClassOf(b_, root_));
    RL_CHECK_OK(onto_.Finalize());
  }

  ontology::Ontology onto_;
  ontology::ClassId root_, a_, b_;
};

TEST_F(TrainingSetTest, AddExampleInternsProperties) {
  TrainingSet ts(onto_);
  Item item;
  item.iri = "ext:1";
  item.facts.push_back(PropertyValue{"pn", "X-1"});
  item.facts.push_back(PropertyValue{"mfr", "ACME"});
  ts.AddExample(item, "local:1", {a_});

  ASSERT_EQ(ts.size(), 1u);
  const TrainingExample& example = ts.examples()[0];
  EXPECT_EQ(example.external_iri, "ext:1");
  EXPECT_EQ(example.local_iri, "local:1");
  ASSERT_EQ(example.facts.size(), 2u);
  EXPECT_EQ(ts.properties().name(example.facts[0].first), "pn");
  EXPECT_EQ(ts.properties().name(example.facts[1].first), "mfr");
  EXPECT_EQ(example.facts[0].second, "X-1");
}

TEST_F(TrainingSetTest, ClassesReducedToMostSpecific) {
  TrainingSet ts(onto_);
  Item item;
  item.iri = "ext:1";
  item.facts.push_back(PropertyValue{"pn", "X"});
  ts.AddExample(item, "local:1", {root_, a_});
  ASSERT_EQ(ts.examples()[0].classes.size(), 1u);
  EXPECT_EQ(ts.examples()[0].classes[0], a_);
}

TEST_F(TrainingSetTest, SharedPropertyIdsAcrossExamples) {
  TrainingSet ts(onto_);
  for (int i = 0; i < 3; ++i) {
    Item item;
    item.iri = "ext:" + std::to_string(i);
    item.facts.push_back(PropertyValue{"pn", "V" + std::to_string(i)});
    ts.AddExample(item, "local:" + std::to_string(i), {a_});
  }
  EXPECT_EQ(ts.properties().size(), 1u);
  EXPECT_EQ(ts.examples()[0].facts[0].first,
            ts.examples()[2].facts[0].first);
}

class FromGraphsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(rdf::ParseTurtle(
                    "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
                    "@prefix ex: <http://e/> .\n"
                    "ex:A rdfs:subClassOf ex:Root .\n"
                    "ex:B rdfs:subClassOf ex:Root .\n"
                    "ex:l1 a ex:A .\n"
                    "ex:l2 a ex:B .\n"
                    "ex:l3 a ex:A .\n",
                    &local_)
                    .ok());
    auto onto_or = ontology::Ontology::FromGraph(local_);
    ASSERT_TRUE(onto_or.ok());
    onto_ = std::move(onto_or).value();
    index_ = std::make_unique<ontology::InstanceIndex>(
        ontology::InstanceIndex::Build(local_, onto_));

    ASSERT_TRUE(
        rdf::ParseNTriples(
            "<http://p/d1> <http://p/pn> \"T83-1\" .\n"
            "<http://p/d2> <http://p/pn> \"T83-2\" .\n"
            // d3 has only an IRI-valued fact: no literal facts -> skipped.
            "<http://p/d3> <http://p/rel> <http://p/other> .\n",
            &external_)
            .ok());
  }

  rdf::Graph local_, external_, links_;
  ontology::Ontology onto_;
  std::unique_ptr<ontology::InstanceIndex> index_;
};

TEST_F(FromGraphsTest, BuildsExamplesFromSameAsLinks) {
  ASSERT_TRUE(rdf::ParseNTriples(
                  "<http://p/d1> <http://www.w3.org/2002/07/owl#sameAs> "
                  "<http://e/l1> .\n"
                  "<http://p/d2> <http://www.w3.org/2002/07/owl#sameAs> "
                  "<http://e/l2> .\n",
                  &links_)
                  .ok());
  std::size_t skipped = 0;
  auto ts = TrainingSet::FromGraphs(external_, links_, *index_, &skipped);
  ASSERT_TRUE(ts.ok()) << ts.status();
  EXPECT_EQ(ts->size(), 2u);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(ts->examples()[0].facts.size(), 1u);
  EXPECT_EQ(ts->examples()[0].facts[0].second, "T83-1");
  ASSERT_EQ(ts->examples()[0].classes.size(), 1u);
  EXPECT_EQ(onto_.iri(ts->examples()[0].classes[0]), "http://e/A");
}

TEST_F(FromGraphsTest, SkipsLinksWithoutFactsOrClasses) {
  ASSERT_TRUE(rdf::ParseNTriples(
                  // d3 has no literal facts.
                  "<http://p/d3> <http://www.w3.org/2002/07/owl#sameAs> "
                  "<http://e/l1> .\n"
                  // l-untyped is not a typed instance.
                  "<http://p/d1> <http://www.w3.org/2002/07/owl#sameAs> "
                  "<http://e/l-untyped> .\n"
                  // good link, to keep the set non-empty.
                  "<http://p/d2> <http://www.w3.org/2002/07/owl#sameAs> "
                  "<http://e/l3> .\n",
                  &links_)
                  .ok());
  std::size_t skipped = 0;
  auto ts = TrainingSet::FromGraphs(external_, links_, *index_, &skipped);
  ASSERT_TRUE(ts.ok()) << ts.status();
  EXPECT_EQ(ts->size(), 1u);
  EXPECT_EQ(skipped, 2u);
}

TEST_F(FromGraphsTest, ErrorWhenNoSameAsTriples) {
  rdf::Graph empty_links;
  auto ts = TrainingSet::FromGraphs(external_, empty_links, *index_, nullptr);
  EXPECT_FALSE(ts.ok());
}

}  // namespace
}  // namespace rulelink::core
