#include "text/phonetic.h"

#include <gtest/gtest.h>

namespace rulelink::text {
namespace {

TEST(SoundexTest, ClassicVectors) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // h is transparent
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseAndPunctuationInsensitive) {
  EXPECT_EQ(Soundex("ROBERT"), Soundex("robert"));
  EXPECT_EQ(Soundex("O'Brien"), Soundex("OBrien"));
  EXPECT_EQ(Soundex("Smith-Jones"), Soundex("SmithJones"));
}

TEST(SoundexTest, PadsShortCodes) {
  EXPECT_EQ(Soundex("Lee"), "L000");
  EXPECT_EQ(Soundex("A"), "A000");
}

TEST(SoundexTest, EmptyAndNonAlpha) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("12345"), "");
  EXPECT_EQ(Soundex("---"), "");
}

TEST(SoundexTest, SimilarNamesCollide) {
  // The blocking property: spelling variants share a code.
  EXPECT_EQ(Soundex("Smith"), Soundex("Smyth"));
  EXPECT_EQ(Soundex("Jackson"), Soundex("Jaxon"));
  // Same-sounding names with different first letters keep distinct codes
  // (Soundex's known first-letter weakness).
  EXPECT_NE(Soundex("Catherine"), Soundex("Katherine"));
}

TEST(SoundexTest, DifferentNamesDiverge) {
  EXPECT_NE(Soundex("Washington"), Soundex("Lee"));
  EXPECT_NE(Soundex("Garcia"), Soundex("Martinez"));
}

TEST(NysiisTest, BasicProperties) {
  // Uppercase, bounded length, deterministic.
  const std::string code = Nysiis("Macintosh");
  EXPECT_LE(code.size(), 6u);
  for (char c : code) {
    EXPECT_TRUE(c >= 'A' && c <= 'Z') << code;
  }
  EXPECT_EQ(Nysiis("Macintosh"), Nysiis("macintosh"));
  EXPECT_EQ(Nysiis(""), "");
  EXPECT_EQ(Nysiis("99"), "");
}

TEST(NysiisTest, SpellingVariantsCollide) {
  EXPECT_EQ(Nysiis("Stevenson"), Nysiis("Stephenson"));
  EXPECT_EQ(Nysiis("Knight"), Nysiis("Night"));
  EXPECT_EQ(Nysiis("Lawson"), Nysiis("Lawsen"));
  // Unlike Soundex, canonical NYSIIS keeps 'Y' distinct from vowels, so
  // Smith and Smyth deliberately diverge (SNAT vs SNYT).
  EXPECT_NE(Nysiis("Smith"), Nysiis("Smyth"));
}

TEST(NysiisTest, DistinctNamesDiverge) {
  EXPECT_NE(Nysiis("Washington"), Nysiis("Jefferson"));
  EXPECT_NE(Nysiis("Brown"), Nysiis("Green"));
}

TEST(NysiisTest, NoAdjacentDuplicatesInCode) {
  for (const char* name :
       {"Mississippi", "Bennett", "Harrell", "Schaeffer", "Lloyd"}) {
    const std::string code = Nysiis(name);
    for (std::size_t i = 1; i < code.size(); ++i) {
      EXPECT_NE(code[i], code[i - 1]) << name << " -> " << code;
    }
  }
}

}  // namespace
}  // namespace rulelink::text
