// Differential tests for the batched SIMD filter cascade (DESIGN.md §5h):
// StreamingLinker must emit byte-identical links and identical
// FilterStats under every SIMD dispatch mode — "off" (the per-pair legacy
// cascade), "scalar" (the batch layout at the baseline ISA), SSE4.2 and
// AVX2 — at every thread count, down to 1-item morsels, on the
// paper-shaped corpus AND a dirty 50k workload catalog. PruneBatch is
// additionally pinned pair-for-pair against Prune. Modes the CPU lacks
// clamp down, so the suite runs (possibly redundantly) everywhere.
#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/standard_blocking.h"
#include "datagen/generator.h"
#include "datagen/workload.h"
#include "linking/feature_cache.h"
#include "linking/filters.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/streaming_linker.h"
#include "util/logging.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace rulelink {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr double kThreshold = 0.6;
constexpr util::SimdMode kModes[] = {
    util::SimdMode::kOff,    // per-pair legacy cascade: the reference
    util::SimdMode::kScalar, // batch layout, baseline ISA
    util::SimdMode::kSSE42,  // 128-bit lanes (clamped where unavailable)
    util::SimdMode::kAVX2,   // 256-bit lanes (clamped where unavailable)
};

// Exercises every filter in the cascade at once, like the streaming
// differential suite: Levenshtein (length bound + capped probe), Jaccard
// and Dice (count bounds), kExact (id equality) and Monge-Elkan as the
// unboundable measure the cascade treats optimistically.
linking::ItemMatcher FilteredMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 2.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kExact, 0.5},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 0.5},
  });
}

const datagen::Dataset& PaperCorpus() {
  static datagen::Dataset* corpus = [] {
    datagen::DatasetConfig config;
    config.seed = 23;
    config.num_classes = 50;
    config.num_leaves = 20;
    config.catalog_size = 700;
    config.num_links = 320;
    config.num_signal_classes = 5;
    config.num_other_frequent_classes = 5;
    config.signal_class_min_links = 20;
    config.signal_class_max_links = 40;
    config.frequent_class_min_links = 6;
    config.frequent_class_max_links = 11;
    config.tail_class_cap_links = 4;
    auto dataset = datagen::DatasetGenerator(config).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    return new datagen::Dataset(std::move(dataset).value());
  }();
  return *corpus;
}

struct Workload {
  datagen::WorkloadCatalog catalog;
  datagen::QueryStream stream;
};

// Dirty 50k regime from the workload differential suite: Zipf-skewed
// queries with typos and truncations against a 50k-item catalog.
const Workload& DirtyWorkload() {
  static Workload* workload = [] {
    datagen::WorkloadConfig catalog_config;
    catalog_config.seed = 77;
    catalog_config.catalog_size = 50000;
    auto catalog = datagen::GenerateWorkloadCatalog(catalog_config);
    RL_CHECK(catalog.ok()) << catalog.status();

    datagen::QueryStreamConfig query_config;
    query_config.seed = 78;
    query_config.num_queries = 800;
    query_config.chooser.distribution = datagen::Distribution::kZipfian;
    query_config.typo_prob = 0.1;
    query_config.truncate_prob = 0.05;
    auto stream =
        datagen::GenerateQueryStream(catalog.value(), query_config);
    RL_CHECK(stream.ok()) << stream.status();

    auto* w = new Workload();
    w->catalog = std::move(catalog).value();
    w->stream = std::move(stream).value();
    return w;
  }();
  return *workload;
}

struct Caches {
  linking::FeatureDictionary dict;
  linking::FeatureCache external;
  linking::FeatureCache local;

  Caches(const std::vector<core::Item>& external_items,
         const std::vector<core::Item>& local_items,
         const linking::ItemMatcher& matcher, std::size_t num_threads) {
    external = linking::FeatureCache::Build(
        external_items, matcher, linking::FeatureCache::Side::kExternal,
        &dict, num_threads);
    local = linking::FeatureCache::Build(local_items, matcher,
                                         linking::FeatureCache::Side::kLocal,
                                         &dict, num_threads);
  }
};

void ExpectLinksIdentical(const std::vector<linking::Link>& actual,
                          const std::vector<linking::Link>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].external_index, expected[i].external_index) << i;
    EXPECT_EQ(actual[i].local_index, expected[i].local_index) << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << i;  // bit-identical
  }
}

void ExpectFilterStatsIdentical(const linking::LinkerStats& actual,
                                const linking::LinkerStats& expected) {
  EXPECT_EQ(actual.pairs_scored, expected.pairs_scored);
  EXPECT_EQ(actual.pairs_pruned_by_filter, expected.pairs_pruned_by_filter);
  EXPECT_EQ(actual.pruned_by_length, expected.pruned_by_length);
  EXPECT_EQ(actual.pruned_by_token_count, expected.pruned_by_token_count);
  EXPECT_EQ(actual.pruned_by_exact, expected.pruned_by_exact);
  EXPECT_EQ(actual.pruned_by_distance_cap, expected.pruned_by_distance_cap);
  EXPECT_EQ(actual.links_emitted, expected.links_emitted);
}

// Streaming links and FilterStats under every mode x thread count must be
// byte-identical to the "off" (legacy per-pair) serial run.
void RunModeDifferential(const std::vector<core::Item>& external_items,
                         const std::vector<core::Item>& local_items,
                         std::size_t blocker_prefix,
                         bool one_item_morsels) {
  const linking::ItemMatcher matcher = FilteredMatcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          blocker_prefix);
  const auto index = blocker.BuildIndex(external_items, local_items);
  ASSERT_EQ(index->num_external(), external_items.size());
  const linking::StreamingLinker streaming(&matcher, kThreshold);

  std::vector<linking::Link> reference;
  linking::LinkerStats reference_stats;
  bool have_reference = false;
  for (const std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    // Caches are rebuilt per thread count on purpose: id numbering
    // differs across builds, the links must not. Modes share one build —
    // dispatch cannot touch the cache contents.
    const Caches caches(external_items, local_items, matcher, threads);
    for (const util::SimdMode mode : kModes) {
      SCOPED_TRACE(util::SimdModeName(mode));
      const util::ScopedSimdMode scoped(mode);
      std::unique_ptr<util::ScopedMorselItems> morsels;
      if (one_item_morsels) {
        morsels = std::make_unique<util::ScopedMorselItems>(1);
      }
      const util::SimdTotals before = util::GlobalSimdTotals();
      linking::LinkerStats stats;
      const auto links = streaming.Run(*index, caches.external,
                                       caches.local, &stats, threads);
      const util::SimdTotals delta =
          util::GlobalSimdTotals().Minus(before);
      if (mode == util::SimdMode::kOff) {
        // The legacy path must not touch the batch counters.
        EXPECT_EQ(delta.cascade_batched_pairs, 0u);
        EXPECT_EQ(delta.cascade_remainder_pairs, 0u);
      } else {
        // The batch cascade really engaged (single-valued part items
        // dominate both corpora).
        EXPECT_GT(delta.cascade_batched_pairs, 0u);
      }
      if (!have_reference) {
        reference = links;
        reference_stats = stats;
        have_reference = true;
        continue;
      }
      ExpectLinksIdentical(links, reference);
      ExpectFilterStatsIdentical(stats, reference_stats);
    }
  }
}

TEST(FilterBatchDifferential, PaperCorpusAllModesAllThreadCounts) {
  const datagen::Dataset& dataset = PaperCorpus();
  RunModeDifferential(dataset.external_items, dataset.catalog_items,
                      /*blocker_prefix=*/3, /*one_item_morsels=*/false);
}

TEST(FilterBatchDifferential, PaperCorpusOneItemMorsels) {
  // 1-item morsels maximize stealing and put every external item's run in
  // its own scratch epoch — the adversarial chunking for the batch path.
  const datagen::Dataset& dataset = PaperCorpus();
  RunModeDifferential(dataset.external_items, dataset.catalog_items,
                      /*blocker_prefix=*/3, /*one_item_morsels=*/true);
}

TEST(FilterBatchDifferential, DirtyWorkloadAllModesAllThreadCounts) {
  const Workload& workload = DirtyWorkload();
  RunModeDifferential(workload.stream.queries, workload.catalog.items,
                      /*blocker_prefix=*/4, /*one_item_morsels=*/false);
}

// PruneBatch pinned pair-for-pair against Prune, per mode: decisions and
// FilterStats must replicate the per-pair cascade exactly, run by run.
TEST(FilterBatchDifferential, PruneBatchMatchesPrunePairwise) {
  const datagen::Dataset& dataset = PaperCorpus();
  const linking::ItemMatcher matcher = FilteredMatcher();
  const Caches caches(dataset.external_items, dataset.catalog_items,
                      matcher, /*num_threads=*/1);
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/3);
  const auto index =
      blocker.BuildIndex(dataset.external_items, dataset.catalog_items);
  const linking::FilterCascade cascade(&matcher, kThreshold);

  for (const util::SimdMode mode :
       {util::SimdMode::kScalar, util::SimdMode::kSSE42,
        util::SimdMode::kAVX2}) {
    SCOPED_TRACE(util::SimdModeName(mode));
    const util::ScopedSimdMode scoped(mode);
    linking::FilterBatchScratch scratch;
    linking::FilterStats batch_stats;
    linking::FilterStats pair_stats;
    std::vector<std::size_t> run;
    std::size_t runs_checked = 0;
    for (std::size_t e = 0; e < index->num_external(); ++e) {
      index->CandidatesOf(e, &run);
      if (run.empty()) continue;
      cascade.PruneBatch(caches.external, e, caches.local, run.data(),
                         run.size(), &batch_stats, &scratch);
      ASSERT_EQ(scratch.pruned.size(), run.size());
      for (std::size_t i = 0; i < run.size(); ++i) {
        const bool pruned = cascade.Prune(caches.external, e, caches.local,
                                          run[i], &pair_stats);
        ASSERT_EQ(scratch.pruned[i] != 0, pruned)
            << "external=" << e << " local=" << run[i];
      }
      ++runs_checked;
    }
    EXPECT_GT(runs_checked, 0u);
    EXPECT_EQ(batch_stats.pairs_pruned, pair_stats.pairs_pruned);
    EXPECT_EQ(batch_stats.by_length, pair_stats.by_length);
    EXPECT_EQ(batch_stats.by_token_count, pair_stats.by_token_count);
    EXPECT_EQ(batch_stats.by_exact, pair_stats.by_exact);
    EXPECT_EQ(batch_stats.by_distance_cap, pair_stats.by_distance_cap);
    EXPECT_GT(batch_stats.pairs_pruned, 0u);
  }
}

}  // namespace
}  // namespace rulelink
