// Differential tests for the interned learning pipeline: the dense-id
// learner in learner.cc must be byte-identical to the preserved
// string-keyed reference implementation (reference_learner.cc) — same
// serialized rules, same Table 1, same linking-space reduction — over
// several generated corpora and at every thread count. This is the
// acceptance bar for the SegmentId refactor: interning changes the data
// representation, never the output.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "core/learner.h"
#include "core/linking_space.h"
#include "core/reference_learner.h"
#include "core/rule_io.h"
#include "datagen/generator.h"
#include "eval/table1.h"
#include "ontology/instance_index.h"
#include "text/segmenter.h"
#include "util/logging.h"

namespace rulelink {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr double kSupportThreshold = 0.01;

datagen::DatasetConfig DifferentialConfig(std::uint64_t seed) {
  datagen::DatasetConfig config;
  config.seed = seed;
  config.num_classes = 50;
  config.num_leaves = 20;
  config.catalog_size = 700;
  config.num_links = 320;
  config.num_signal_classes = 5;
  config.num_other_frequent_classes = 5;
  config.signal_class_min_links = 20;
  config.signal_class_max_links = 40;
  config.frequent_class_min_links = 6;
  config.frequent_class_max_links = 11;
  config.tail_class_cap_links = 4;
  return config;
}

struct Corpus {
  std::unique_ptr<datagen::Dataset> dataset;
  std::unique_ptr<core::TrainingSet> ts;
};

const Corpus& GetCorpus(std::uint64_t seed) {
  static std::map<std::uint64_t, Corpus>* cache =
      new std::map<std::uint64_t, Corpus>();
  auto it = cache->find(seed);
  if (it == cache->end()) {
    Corpus corpus;
    auto dataset =
        datagen::DatasetGenerator(DifferentialConfig(seed)).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    corpus.dataset =
        std::make_unique<datagen::Dataset>(std::move(dataset).value());
    corpus.ts = std::make_unique<core::TrainingSet>(
        datagen::BuildTrainingSet(*corpus.dataset));
    it = cache->emplace(seed, std::move(corpus)).first;
  }
  return it->second;
}

class InternedDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  const Corpus& corpus() const { return GetCorpus(GetParam()); }

  core::LearnerOptions Options(std::size_t num_threads) const {
    core::LearnerOptions options;
    options.support_threshold = kSupportThreshold;
    options.segmenter = &segmenter_;
    options.num_threads = num_threads;
    return options;
  }

  // The string-keyed reference pipeline, learned once per corpus.
  const core::RuleSet& Reference() const {
    static std::map<std::uint64_t, core::RuleSet>* cache =
        new std::map<std::uint64_t, core::RuleSet>();
    auto it = cache->find(GetParam());
    if (it == cache->end()) {
      auto rules = core::ReferenceLearn(Options(1), *corpus().ts);
      RL_CHECK(rules.ok()) << rules.status();
      it = cache->emplace(GetParam(), std::move(rules).value()).first;
    }
    return it->second;
  }

  text::SeparatorSegmenter segmenter_;
};

TEST_P(InternedDifferential, SerializedRulesAreByteIdentical) {
  const ontology::Ontology& onto = corpus().dataset->ontology();
  const std::string expected = core::WriteRules(Reference(), onto);
  ASSERT_FALSE(expected.empty());
  for (std::size_t threads : kThreadCounts) {
    auto rules = core::RuleLearner(Options(threads)).Learn(*corpus().ts);
    ASSERT_TRUE(rules.ok()) << rules.status();
    // Byte-for-byte: same rules, same order, same printed measures.
    EXPECT_EQ(core::WriteRules(*rules, onto), expected)
        << "threads=" << threads;
  }
}

TEST_P(InternedDifferential, StatsMatchReferencePipeline) {
  core::LearnStats ref_stats;
  auto ref = core::ReferenceLearn(Options(1), *corpus().ts, &ref_stats);
  ASSERT_TRUE(ref.ok());
  for (std::size_t threads : kThreadCounts) {
    core::LearnStats stats;
    auto rules =
        core::RuleLearner(Options(threads)).Learn(*corpus().ts, &stats);
    ASSERT_TRUE(rules.ok());
    EXPECT_EQ(stats.num_examples, ref_stats.num_examples);
    EXPECT_EQ(stats.distinct_segments, ref_stats.distinct_segments);
    EXPECT_EQ(stats.segment_occurrences, ref_stats.segment_occurrences);
    EXPECT_EQ(stats.selected_segment_occurrences,
              ref_stats.selected_segment_occurrences);
    EXPECT_EQ(stats.frequent_premises, ref_stats.frequent_premises);
    EXPECT_EQ(stats.frequent_classes, ref_stats.frequent_classes);
    EXPECT_EQ(stats.num_rules, ref_stats.num_rules);
    EXPECT_EQ(stats.classes_with_rules, ref_stats.classes_with_rules);
    // The interned pipeline additionally reports its symbol table: one
    // symbol per distinct segment string in the corpus.
    EXPECT_GT(stats.interner_bytes, 0u);
    EXPECT_EQ(stats.interner_symbols, stats.distinct_segments);
  }
}

TEST_P(InternedDifferential, Table1IsIdenticalToReference) {
  const std::vector<double> bands = {1.0, 0.8, 0.6, 0.4};
  const eval::Table1Evaluator ref_eval(&Reference(), &segmenter_,
                                       kSupportThreshold);
  const auto expected = ref_eval.Evaluate(*corpus().ts, bands, 1);

  for (std::size_t threads : kThreadCounts) {
    auto rules = core::RuleLearner(Options(threads)).Learn(*corpus().ts);
    ASSERT_TRUE(rules.ok());
    const eval::Table1Evaluator evaluator(&*rules, &segmenter_,
                                          kSupportThreshold);
    const auto actual = evaluator.Evaluate(*corpus().ts, bands, threads);
    ASSERT_EQ(actual.rows.size(), expected.rows.size());
    for (std::size_t b = 0; b < expected.rows.size(); ++b) {
      EXPECT_EQ(actual.rows[b].num_rules, expected.rows[b].num_rules);
      EXPECT_EQ(actual.rows[b].decisions, expected.rows[b].decisions);
      EXPECT_EQ(actual.rows[b].correct, expected.rows[b].correct);
      EXPECT_EQ(actual.rows[b].precision_band,
                expected.rows[b].precision_band);
      EXPECT_EQ(actual.rows[b].precision_cumulative,
                expected.rows[b].precision_cumulative);
      EXPECT_EQ(actual.rows[b].recall_cumulative,
                expected.rows[b].recall_cumulative);
      EXPECT_EQ(actual.rows[b].avg_lift, expected.rows[b].avg_lift);
    }
    EXPECT_EQ(actual.classifiable_items, expected.classifiable_items);
    EXPECT_EQ(actual.frequent_classes, expected.frequent_classes);
    EXPECT_EQ(actual.undecided_items, expected.undecided_items);
  }
}

TEST_P(InternedDifferential, LinkingSpaceIsIdenticalToReference) {
  const auto& dataset = *corpus().dataset;
  const rdf::Graph local_graph = datagen::BuildLocalGraph(dataset);
  const auto index =
      ontology::InstanceIndex::Build(local_graph, dataset.ontology());

  const core::RuleClassifier ref_classifier(&Reference(), &segmenter_);
  const core::LinkingSpaceAnalyzer ref_analyzer(&ref_classifier, &index);
  const auto expected = ref_analyzer.Analyze(
      dataset.external_items, 0.4, core::UnclassifiedPolicy::kCompareAll, 1);

  for (std::size_t threads : kThreadCounts) {
    auto rules = core::RuleLearner(Options(threads)).Learn(*corpus().ts);
    ASSERT_TRUE(rules.ok());
    const core::RuleClassifier classifier(&*rules, &segmenter_);

    // Item-level classification parity feeds the linking comparison.
    const auto ref_top =
        ref_classifier.PredictClassBatch(dataset.external_items, 0.4, 1);
    const auto top = classifier.PredictClassBatch(dataset.external_items,
                                                  0.4, threads);
    EXPECT_EQ(top, ref_top) << "threads=" << threads;

    const core::LinkingSpaceAnalyzer analyzer(&classifier, &index);
    const auto actual =
        analyzer.Analyze(dataset.external_items, 0.4,
                         core::UnclassifiedPolicy::kCompareAll, threads);
    EXPECT_EQ(actual.num_external_items, expected.num_external_items);
    EXPECT_EQ(actual.local_size, expected.local_size);
    EXPECT_EQ(actual.naive_pairs, expected.naive_pairs);
    EXPECT_EQ(actual.reduced_pairs, expected.reduced_pairs);
    EXPECT_EQ(actual.classified_items, expected.classified_items);
    EXPECT_EQ(actual.unclassified_items, expected.unclassified_items);
    EXPECT_EQ(actual.reduction_ratio, expected.reduction_ratio);
    EXPECT_EQ(actual.mean_subspace_fraction,
              expected.mean_subspace_fraction);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InternedDifferential,
                         ::testing::Values(17, 101, 919, 4201, 77017));

}  // namespace
}  // namespace rulelink
