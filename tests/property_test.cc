// Randomized property tests: invariants that must hold on ANY corpus the
// generator can produce, swept across seeds — and, since the parallel
// execution layer, also across thread counts: every invariant below is
// checked both on the serial path (num_threads=1) and on the sharded
// parallel path, which must be indistinguishable.
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "core/incremental.h"
#include "core/learner.h"
#include "core/rule_io.h"
#include "datagen/generator.h"
#include "eval/table1.h"
#include "text/segmenter.h"
#include "util/logging.h"

namespace rulelink {
namespace {

datagen::DatasetConfig PropertyConfig(std::uint64_t seed) {
  datagen::DatasetConfig config;
  config.seed = seed;
  config.num_classes = 70;
  config.num_leaves = 28;
  config.catalog_size = 1500;
  config.num_links = 600;
  config.num_signal_classes = 6;
  config.num_other_frequent_classes = 8;
  config.signal_class_min_links = 30;
  config.signal_class_max_links = 60;
  config.frequent_class_min_links = 8;
  config.frequent_class_max_links = 14;
  config.tail_class_cap_links = 5;
  return config;
}

struct PropertyCorpus {
  std::unique_ptr<datagen::Dataset> dataset;
  std::unique_ptr<core::TrainingSet> ts;
};

// The corpus depends only on the seed, not the thread count; cache it so
// the thread-count sweep does not regenerate it.
const PropertyCorpus& GetPropertyCorpus(std::uint64_t seed) {
  static std::map<std::uint64_t, PropertyCorpus>* cache =
      new std::map<std::uint64_t, PropertyCorpus>();
  auto it = cache->find(seed);
  if (it == cache->end()) {
    auto dataset =
        datagen::DatasetGenerator(PropertyConfig(seed)).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    PropertyCorpus corpus;
    corpus.dataset =
        std::make_unique<datagen::Dataset>(std::move(dataset).value());
    corpus.ts = std::make_unique<core::TrainingSet>(
        datagen::BuildTrainingSet(*corpus.dataset));
    it = cache->emplace(seed, std::move(corpus)).first;
  }
  return it->second;
}

// (seed, num_threads): every invariant runs on the serial path (1) and on
// the parallel path (4 shards regardless of host core count).
class CorpusProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
 protected:
  CorpusProperty() {
    const PropertyCorpus& corpus = GetPropertyCorpus(std::get<0>(GetParam()));
    dataset_ = corpus.dataset.get();
    ts_ = corpus.ts.get();
  }

  std::size_t threads() const { return std::get<1>(GetParam()); }

  core::RuleSet Learn(double threshold) {
    core::LearnerOptions options;
    options.support_threshold = threshold;
    options.segmenter = &segmenter_;
    options.num_threads = threads();
    auto rules = core::RuleLearner(options).Learn(*ts_);
    RL_CHECK(rules.ok()) << rules.status();
    return std::move(rules).value();
  }

  core::Item ItemOf(const core::TrainingExample& example) const {
    core::Item item;
    item.iri = example.external_iri;
    for (const auto& [property, value] : example.facts) {
      item.facts.push_back(
          core::PropertyValue{ts_->properties().name(property), value});
    }
    return item;
  }

  const datagen::Dataset* dataset_ = nullptr;
  const core::TrainingSet* ts_ = nullptr;
  text::SeparatorSegmenter segmenter_;
};

TEST_P(CorpusProperty, LearnerInvariants) {
  const double th = 0.01;
  const core::RuleSet rules = Learn(th);
  ASSERT_GT(rules.size(), 0u);
  const double total = static_cast<double>(ts_->size());
  for (const auto& rule : rules.rules()) {
    EXPECT_TRUE(CountsAreConsistent(rule.counts));
    // Strict threshold on every counted conjunction.
    EXPECT_GT(rule.counts.joint_count, th * total);
    EXPECT_GT(rule.counts.premise_count, th * total);
    EXPECT_GT(rule.counts.class_count, th * total);
    // Measure ranges and relations.
    EXPECT_GT(rule.confidence, 0.0);
    EXPECT_LE(rule.confidence, 1.0);
    EXPECT_GT(rule.lift, 0.0);
    EXPECT_LE(rule.support, rule.confidence + 1e-12);
    // Lift cross-check against the definition.
    const double prior = static_cast<double>(rule.counts.class_count) / total;
    EXPECT_NEAR(rule.lift, rule.confidence / prior, 1e-9);
  }
  // Sorted best-first.
  for (std::size_t i = 1; i < rules.size(); ++i) {
    EXPECT_FALSE(core::ClassificationRule::BetterThan(
        rules.rules()[i], rules.rules()[i - 1], rules.segments()));
  }
}

TEST_P(CorpusProperty, ConfidenceOneRulesArePerfectOnTs) {
  const core::RuleSet rules = Learn(0.01);
  const core::RuleClassifier classifier(&rules, &segmenter_);
  for (const auto& example : ts_->examples()) {
    for (const auto& prediction :
         classifier.Classify(ItemOf(example), 1.0)) {
      EXPECT_NE(std::find(example.classes.begin(), example.classes.end(),
                          prediction.cls),
                example.classes.end());
    }
  }
}

TEST_P(CorpusProperty, ClassifierIsDeterministicAndOrdered) {
  const core::RuleSet rules = Learn(0.01);
  const core::RuleClassifier classifier(&rules, &segmenter_);
  // The batch entry point at the swept thread count must agree with the
  // per-item one.
  std::vector<core::Item> items;
  for (std::size_t i = 0; i < 50 && i < ts_->size(); ++i) {
    items.push_back(ItemOf(ts_->examples()[i]));
  }
  const auto batch = classifier.ClassifyBatch(items, 0.0, threads());
  ASSERT_EQ(batch.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto single = classifier.Classify(items[i]);
    ASSERT_EQ(batch[i].size(), single.size()) << "item " << i;
    for (std::size_t k = 0; k < single.size(); ++k) {
      EXPECT_EQ(batch[i][k].cls, single[k].cls);
      EXPECT_EQ(batch[i][k].rule_index, single[k].rule_index);
    }
  }
  for (std::size_t i = 0; i < 50 && i < ts_->size(); ++i) {
    const core::Item item = ItemOf(ts_->examples()[i]);
    const auto a = classifier.Classify(item);
    const auto b = classifier.Classify(item);
    ASSERT_EQ(a.size(), b.size());
    std::set<ontology::ClassId> seen;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].cls, b[k].cls);
      EXPECT_EQ(a[k].rule_index, b[k].rule_index);
      EXPECT_TRUE(seen.insert(a[k].cls).second) << "duplicate subspace";
      if (k > 0) {
        EXPECT_LE(a[k].confidence, a[k - 1].confidence + 1e-12);
      }
    }
  }
}

TEST_P(CorpusProperty, IncrementalMatchesBatch) {
  core::IncrementalRuleLearner incremental(&dataset_->ontology(),
                                           &segmenter_);
  for (const auto& example : ts_->examples()) {
    incremental.AddExample(ItemOf(example), example.classes);
  }
  auto online = incremental.BuildRules(0.01);
  ASSERT_TRUE(online.ok());
  const core::RuleSet batch = Learn(0.01);
  ASSERT_EQ(online->size(), batch.size());
  // Rule-by-rule equality modulo ordering of equal-measure rules.
  using Key = std::tuple<std::string, ontology::ClassId, std::size_t,
                         std::size_t>;
  std::set<Key> a, b;
  for (const auto& rule : online->rules()) {
    a.insert({std::string(online->segment_text(rule)), rule.cls,
              rule.counts.premise_count, rule.counts.joint_count});
  }
  for (const auto& rule : batch.rules()) {
    b.insert({std::string(batch.segment_text(rule)), rule.cls,
              rule.counts.premise_count, rule.counts.joint_count});
  }
  EXPECT_EQ(a, b);
}

TEST_P(CorpusProperty, RuleIoRoundTripsLearnedRules) {
  const core::RuleSet rules = Learn(0.01);
  const std::string serialized =
      core::WriteRules(rules, dataset_->ontology());
  auto loaded = core::ReadRules(serialized, dataset_->ontology());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), rules.size());
  for (std::size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(loaded->segment_text(loaded->rules()[i]),
              rules.segment_text(rules.rules()[i]));
    EXPECT_EQ(loaded->rules()[i].cls, rules.rules()[i].cls);
    EXPECT_DOUBLE_EQ(loaded->rules()[i].confidence,
                     rules.rules()[i].confidence);
  }
}

TEST_P(CorpusProperty, Table1ColumnsAreMonotone) {
  const core::RuleSet rules = Learn(0.01);
  const eval::Table1Evaluator evaluator(&rules, &segmenter_, 0.01);
  const auto result =
      evaluator.Evaluate(*ts_, {1.0, 0.8, 0.6, 0.4}, threads());
  std::size_t decided = 0;
  for (std::size_t b = 0; b < result.rows.size(); ++b) {
    const auto& row = result.rows[b];
    EXPECT_GE(row.correct, 0u);
    EXPECT_LE(row.correct, row.decisions);
    decided += row.decisions;
    if (b > 0) {
      EXPECT_LE(row.precision_cumulative,
                result.rows[b - 1].precision_cumulative + 1e-12);
      EXPECT_GE(row.recall_cumulative,
                result.rows[b - 1].recall_cumulative - 1e-12);
    }
  }
  EXPECT_EQ(decided + result.undecided_items, ts_->size());
  if (result.rows[0].decisions > 0) {
    EXPECT_DOUBLE_EQ(result.rows[0].precision_band, 1.0);
  }
}

TEST_P(CorpusProperty, GoldLinksAreWellFormed) {
  std::set<std::size_t> seen;
  for (const auto& link : dataset_->links) {
    EXPECT_LT(link.external_index, dataset_->external_items.size());
    EXPECT_LT(link.catalog_index, dataset_->catalog_items.size());
    EXPECT_TRUE(seen.insert(link.catalog_index).second);
  }
  EXPECT_EQ(dataset_->links.size(), dataset_->external_items.size());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreads, CorpusProperty,
    ::testing::Combine(::testing::Values(1, 7, 42, 99, 12345, 777777),
                       ::testing::Values(1, 4)));

}  // namespace
}  // namespace rulelink
