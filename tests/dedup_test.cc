#include "linking/dedup.h"

#include <gtest/gtest.h>

#include "blocking/standard_blocking.h"
#include "util/union_find.h"

namespace rulelink::linking {
namespace {

core::Item MakeItem(const std::string& iri, const std::string& pn) {
  core::Item item;
  item.iri = iri;
  item.facts.push_back(core::PropertyValue{"pn", pn});
  return item;
}

TEST(UnionFindTest, BasicOperations) {
  util::UnionFind uf(5);
  EXPECT_FALSE(uf.Connected(0, 1));
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(0, 1));  // already joined
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_TRUE(uf.Connected(0, 2));  // transitivity
  EXPECT_EQ(uf.SetSize(0), 3u);
  EXPECT_EQ(uf.SetSize(3), 1u);
}

TEST(UnionFindTest, Groups) {
  util::UnionFind uf(6);
  uf.Union(0, 2);
  uf.Union(2, 4);
  uf.Union(1, 5);
  const auto all = uf.Groups(1);
  ASSERT_EQ(all.size(), 3u);  // {0,2,4}, {1,5}, {3}
  EXPECT_EQ(all[0], (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(all[1], (std::vector<std::size_t>{1, 5}));
  EXPECT_EQ(all[2], (std::vector<std::size_t>{3}));
  EXPECT_EQ(uf.Groups(2).size(), 2u);
  EXPECT_EQ(uf.Groups(3).size(), 1u);
}

class DedupTest : public ::testing::Test {
 protected:
  DedupTest()
      : blocker_("pn", 4),
        matcher_({{"pn", "pn", SimilarityMeasure::kJaroWinkler, 1.0}}) {
    // Items 0 and 2 are near-duplicates; 1 and 3 are unique; 4 duplicates
    // 0 exactly (a transitive chain 0-2, 0-4).
    items_ = {MakeItem("d0", "CRCW0805-10K"), MakeItem("d1", "T83-106"),
              MakeItem("d2", "CRCW0805-10k"), MakeItem("d3", "ZZZ-999"),
              MakeItem("d4", "CRCW0805-10K")};
  }

  blocking::StandardBlocker blocker_;
  ItemMatcher matcher_;
  std::vector<core::Item> items_;
};

TEST_F(DedupTest, ClustersNearDuplicates) {
  const DedupResult result = Deduplicate(items_, blocker_, matcher_, 0.95);
  ASSERT_EQ(result.duplicate_clusters.size(), 1u);
  EXPECT_EQ(result.duplicate_clusters[0],
            (std::vector<std::size_t>{0, 2, 4}));
}

TEST_F(DedupTest, RepresentativesAndSurvivors) {
  const DedupResult result = Deduplicate(items_, blocker_, matcher_, 0.95);
  EXPECT_EQ(result.representative[0], 0u);
  EXPECT_EQ(result.representative[2], 0u);
  EXPECT_EQ(result.representative[4], 0u);
  EXPECT_EQ(result.representative[1], 1u);
  EXPECT_EQ(result.representative[3], 3u);
  EXPECT_EQ(result.survivors, (std::vector<std::size_t>{0, 1, 3}));
}

TEST_F(DedupTest, ThresholdOneKeepsOnlyExactDuplicates) {
  const DedupResult result = Deduplicate(items_, blocker_, matcher_, 1.0);
  ASSERT_EQ(result.duplicate_clusters.size(), 1u);
  // Only the bit-identical pair {0, 4} survives the 1.0 threshold.
  EXPECT_EQ(result.duplicate_clusters[0],
            (std::vector<std::size_t>{0, 4}));
  EXPECT_EQ(result.survivors.size(), 4u);
}

TEST_F(DedupTest, NoDuplicatesFound) {
  const std::vector<core::Item> unique = {MakeItem("a", "AAAA-1"),
                                          MakeItem("b", "BBBB-2")};
  const DedupResult result = Deduplicate(unique, blocker_, matcher_, 0.9);
  EXPECT_TRUE(result.duplicate_clusters.empty());
  EXPECT_EQ(result.survivors.size(), 2u);
}

TEST_F(DedupTest, SelfPairsIgnored) {
  const std::vector<core::Item> one = {MakeItem("solo", "CRCW0805")};
  const DedupResult result = Deduplicate(one, blocker_, matcher_, 0.0);
  EXPECT_TRUE(result.duplicate_clusters.empty());
  EXPECT_EQ(result.comparisons, 0u);
}

TEST_F(DedupTest, ComparisonsBoundedByBlocking) {
  const DedupResult result = Deduplicate(items_, blocker_, matcher_, 0.95);
  // Only the "crcw" block produces intra-source pairs: C(3,2) = 3.
  EXPECT_EQ(result.comparisons, 3u);
}

}  // namespace
}  // namespace rulelink::linking
