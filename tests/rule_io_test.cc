#include "core/rule_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>

#include <gtest/gtest.h>

#include "util/interner.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

util::StringInterner& TestSegments() {
  static util::StringInterner* interner = new util::StringInterner();
  return *interner;
}

class RuleIoTest : public ::testing::Test {
 protected:
  RuleIoTest() {
    a_ = onto_.AddClass("http://e/A", "A");
    b_ = onto_.AddClass("http://e/B", "B");
    RL_CHECK_OK(onto_.Finalize());

    PropertyCatalog properties;
    properties.Intern("http://s/pn");
    properties.Intern("http://s/label");
    std::vector<ClassificationRule> rules;
    rules.push_back(Make(0, "CRCW0805", a_, 40, 50, 40, 1000));
    rules.push_back(Make(0, "with\ttab and \\slash", b_, 30, 60, 24, 1000));
    rules.push_back(Make(1, "ohm", a_, 100, 50, 45, 1000));
    set_ = std::make_unique<RuleSet>(std::move(rules), properties,
                                     TestSegments());
  }

  static ClassificationRule Make(PropertyId property,
                                 const std::string& segment,
                                 ontology::ClassId cls, std::size_t premise,
                                 std::size_t class_count, std::size_t joint,
                                 std::size_t total) {
    ClassificationRule rule;
    rule.property = property;
    rule.segment = TestSegments().Intern(segment);
    rule.cls = cls;
    rule.counts = RuleCounts{premise, class_count, joint, total};
    rule.ComputeMeasures();
    return rule;
  }

  ontology::Ontology onto_;
  ontology::ClassId a_, b_;
  std::unique_ptr<RuleSet> set_;
};

TEST_F(RuleIoTest, RoundTripPreservesEverything) {
  const std::string serialized = WriteRules(*set_, onto_);
  auto loaded = ReadRules(serialized, onto_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), set_->size());
  for (std::size_t i = 0; i < set_->size(); ++i) {
    const ClassificationRule& original = set_->rules()[i];
    const ClassificationRule& copy = loaded->rules()[i];
    EXPECT_EQ(loaded->properties().name(copy.property),
              set_->properties().name(original.property));
    EXPECT_EQ(loaded->segment_text(copy), set_->segment_text(original));
    EXPECT_EQ(copy.cls, original.cls);
    EXPECT_EQ(copy.counts.premise_count, original.counts.premise_count);
    EXPECT_DOUBLE_EQ(copy.confidence, original.confidence);
    EXPECT_DOUBLE_EQ(copy.lift, original.lift);
    EXPECT_DOUBLE_EQ(copy.support, original.support);
  }
}

TEST_F(RuleIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/rules_io_test.tsv";
  ASSERT_TRUE(WriteRulesToFile(*set_, onto_, path).ok());
  auto loaded = ReadRulesFromFile(path, onto_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), set_->size());
  std::remove(path.c_str());
}

TEST_F(RuleIoTest, CommentsAndBlankLinesIgnored) {
  auto loaded = ReadRules(
      "# comment\n\n"
      "http://s/pn\tT83\thttp://e/A\t10\t20\t10\t100\n",
      onto_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_DOUBLE_EQ(loaded->rules()[0].confidence, 1.0);
}

// Regression for the v2 measure columns: save -> load -> save must be
// byte-identical, including the shortest-round-trip doubles, across rule
// counts chosen to produce awkward fractions (1/3, 1/7, ...). A fixed
// seed keeps the test deterministic.
TEST_F(RuleIoTest, RandomizedSaveLoadSaveIsByteIdentical) {
  std::mt19937 rng(20260805u);
  std::uniform_int_distribution<std::size_t> count_dist(1, 997);
  PropertyCatalog properties;
  properties.Intern("http://s/pn");
  properties.Intern("http://s/label");
  std::vector<ClassificationRule> rules;
  for (int i = 0; i < 200; ++i) {
    const std::size_t total = 1000;
    std::size_t premise = count_dist(rng);
    std::size_t class_count = count_dist(rng);
    const std::size_t joint =
        std::uniform_int_distribution<std::size_t>(
            1, std::min({premise, class_count}))(rng);
    rules.push_back(Make(i % 2, "seg-" + std::to_string(i), i % 2 ? b_ : a_,
                         premise, class_count, joint, total));
  }
  const RuleSet original(std::move(rules), properties, TestSegments());

  const std::string first = WriteRules(original, onto_);
  auto loaded = ReadRules(first, onto_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const std::string second = WriteRules(*loaded, onto_);
  EXPECT_EQ(first, second);
  // Bit-exact measures, not just approximately equal.
  ASSERT_EQ(loaded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded->rules()[i].confidence, original.rules()[i].confidence);
    EXPECT_EQ(loaded->rules()[i].lift, original.rules()[i].lift);
  }
}

// v1 files (7 columns, no version header or a v1 header) still load, with
// measures recomputed from the counts.
TEST_F(RuleIoTest, ReadsLegacyV1Format) {
  auto loaded = ReadRules(
      "# rulelink classification rules v1\n"
      "http://s/pn\tT83\thttp://e/A\t10\t20\t10\t100\n",
      onto_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_DOUBLE_EQ(loaded->rules()[0].confidence, 1.0);
}

TEST_F(RuleIoTest, WriterEmitsV2Header) {
  EXPECT_NE(WriteRules(*set_, onto_).find(
                "# rulelink classification rules v2"),
            std::string::npos);
}

TEST_F(RuleIoTest, RejectsBadV2MeasureFields) {
  const std::string header = "# rulelink classification rules v2\n";
  // Unparsable confidence.
  EXPECT_FALSE(
      ReadRules(header +
                    "http://s/pn\tT83\thttp://e/A\t10\t20\t10\t100\tx\t2\n",
                onto_)
          .ok());
  // Confidence outside [0, 1].
  EXPECT_FALSE(
      ReadRules(header +
                    "http://s/pn\tT83\thttp://e/A\t10\t20\t10\t100\t1.5\t2\n",
                onto_)
          .ok());
  // Non-finite lift.
  EXPECT_FALSE(ReadRules(
                   header +
                       "http://s/pn\tT83\thttp://e/A\t10\t20\t10\t100\t1\tnan\n",
                   onto_)
                   .ok());
  // v2 requires 9 fields.
  EXPECT_FALSE(
      ReadRules(header + "http://s/pn\tT83\thttp://e/A\t10\t20\t10\t100\n",
                onto_)
          .ok());
}

TEST_F(RuleIoTest, RejectsUnknownClass) {
  auto loaded = ReadRules(
      "http://s/pn\tT83\thttp://e/Nope\t10\t20\t10\t100\n", onto_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unknown class"),
            std::string::npos);
}

TEST_F(RuleIoTest, RejectsWrongFieldCount) {
  auto loaded = ReadRules("http://s/pn\tT83\thttp://e/A\t10\n", onto_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
}

TEST_F(RuleIoTest, RejectsBadCounts) {
  EXPECT_FALSE(ReadRules(
                   "http://s/pn\tT83\thttp://e/A\tten\t20\t10\t100\n", onto_)
                   .ok());
  // joint > premise is inconsistent.
  EXPECT_FALSE(ReadRules(
                   "http://s/pn\tT83\thttp://e/A\t5\t20\t10\t100\n", onto_)
                   .ok());
}

TEST_F(RuleIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadRulesFromFile("/nonexistent/rules.tsv", onto_)
                .status()
                .code(),
            util::StatusCode::kNotFound);
}

TEST_F(RuleIoTest, EmptyContentYieldsEmptyRuleSet) {
  auto loaded = ReadRules("", onto_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace rulelink::core
