#include "util/hash.h"

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

namespace rulelink::util {
namespace {

TEST(Fnv1aTest, KnownVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171F73967E8ULL);
}

TEST(Fnv1aTest, DeterministicAndSensitive) {
  EXPECT_EQ(Fnv1a64("CRCW0805"), Fnv1a64("CRCW0805"));
  EXPECT_NE(Fnv1a64("CRCW0805"), Fnv1a64("CRCW0806"));
  EXPECT_NE(Fnv1a64("ab"), Fnv1a64("ba"));
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
  EXPECT_NE(HashCombine(0, 0), 0u);
}

TEST(PairHashTest, WorksAsUnorderedKeyHasher) {
  std::unordered_map<std::pair<int, std::string>, int, PairHash> map;
  map[{1, "a"}] = 10;
  map[{1, "b"}] = 20;
  map[{2, "a"}] = 30;
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ((map[{1, "a"}]), 10);
  EXPECT_EQ((map[{2, "a"}]), 30);
}

TEST(PairHashTest, FewCollisionsOnGrid) {
  PairHash hasher;
  std::unordered_set<std::size_t> hashes;
  for (int a = 0; a < 100; ++a) {
    for (int b = 0; b < 100; ++b) {
      hashes.insert(hasher(std::make_pair(a, b)));
    }
  }
  // A perfect hash would give 10000; demand near-perfection.
  EXPECT_GT(hashes.size(), 9900u);
}

}  // namespace
}  // namespace rulelink::util
