#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/status.h"

namespace rulelink::util {
namespace {

TEST(LoggingTest, MinSeverityRoundTrip) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  SetMinLogSeverity(original);
}

TEST(LoggingTest, BelowThresholdLogsAreSuppressed) {
  const LogSeverity original = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  ::testing::internal::CaptureStderr();
  RL_LOG(Info) << "invisible";
  RL_LOG(Warning) << "also invisible";
  RL_LOG(Error) << "visible";
  const std::string err = ::testing::internal::GetCapturedStderr();
  SetMinLogSeverity(original);
  EXPECT_EQ(err.find("invisible"), std::string::npos);
  EXPECT_NE(err.find("visible"), std::string::npos);
  EXPECT_NE(err.find("[E "), std::string::npos);
  EXPECT_NE(err.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, CheckPassesSilently) {
  RL_CHECK(1 + 1 == 2) << "never evaluated";
  RL_CHECK_OK(OkStatus());
  RL_DCHECK(true);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(RL_CHECK(false) << "boom message",
               "Check failed: false.*boom message");
}

TEST(LoggingDeathTest, CheckOkFailureAborts) {
  EXPECT_DEATH(RL_CHECK_OK(InternalError("bad state")), "bad state");
}

}  // namespace
}  // namespace rulelink::util
