#include "core/measures.h"

#include <gtest/gtest.h>

namespace rulelink::core {
namespace {

RuleCounts Counts(std::size_t premise, std::size_t cls, std::size_t joint,
                  std::size_t total) {
  RuleCounts c;
  c.premise_count = premise;
  c.class_count = cls;
  c.joint_count = joint;
  c.total = total;
  return c;
}

TEST(MeasuresTest, PaperFormulas) {
  // 50 premise matches, 100 class members, 40 joint, 1000 examples.
  const RuleCounts c = Counts(50, 100, 40, 1000);
  EXPECT_DOUBLE_EQ(Support(c), 0.04);      // joint / total
  EXPECT_DOUBLE_EQ(Confidence(c), 0.8);    // joint / premise
  EXPECT_DOUBLE_EQ(Lift(c), 0.8 / 0.1);    // confidence / prior
  EXPECT_DOUBLE_EQ(Coverage(c), 0.05);     // premise / total
}

TEST(MeasuresTest, PerfectRule) {
  const RuleCounts c = Counts(40, 40, 40, 1000);
  EXPECT_DOUBLE_EQ(Confidence(c), 1.0);
  EXPECT_DOUBLE_EQ(Lift(c), 25.0);  // 1 / (40/1000)
  EXPECT_DOUBLE_EQ(Conviction(c), kMaxConviction);
}

TEST(MeasuresTest, IndependenceGivesLiftOne) {
  // premise and class independent: joint/total = (premise/total)(class/total)
  const RuleCounts c = Counts(100, 200, 20, 1000);
  EXPECT_DOUBLE_EQ(Lift(c), 1.0);
}

TEST(MeasuresTest, ZeroDenominators) {
  EXPECT_DOUBLE_EQ(Support(Counts(0, 0, 0, 0)), 0.0);
  EXPECT_DOUBLE_EQ(Confidence(Counts(0, 5, 0, 10)), 0.0);
  EXPECT_DOUBLE_EQ(Lift(Counts(5, 0, 0, 10)), 0.0);
  EXPECT_DOUBLE_EQ(Coverage(Counts(0, 0, 0, 0)), 0.0);
  EXPECT_DOUBLE_EQ(Specificity(Counts(5, 10, 5, 10)), 0.0);  // all in class
  EXPECT_DOUBLE_EQ(Conviction(Counts(0, 0, 0, 0)), 0.0);
}

TEST(MeasuresTest, Specificity) {
  // total 100, class 40, premise 30, joint 25:
  // TN = 100 - 30 - 40 + 25 = 55; not-class = 60.
  const RuleCounts c = Counts(30, 40, 25, 100);
  EXPECT_NEAR(Specificity(c), 55.0 / 60.0, 1e-12);
}

TEST(MeasuresTest, Conviction) {
  // prior 0.4, confidence 0.8 -> (1-0.4)/(1-0.8) = 3.
  const RuleCounts c = Counts(50, 400, 40, 1000);
  EXPECT_NEAR(Conviction(c), 3.0, 1e-12);
}

TEST(MeasuresTest, ConsistencyChecker) {
  EXPECT_TRUE(CountsAreConsistent(Counts(50, 100, 40, 1000)));
  EXPECT_FALSE(CountsAreConsistent(Counts(50, 100, 60, 1000)));  // joint > premise
  EXPECT_FALSE(CountsAreConsistent(Counts(50, 30, 40, 1000)));   // joint > class
  EXPECT_FALSE(CountsAreConsistent(Counts(2000, 100, 40, 1000)));
  EXPECT_FALSE(CountsAreConsistent(Counts(50, 2000, 40, 1000)));
}

// Property sweep: invariant relations between the measures.
struct CountCase {
  std::size_t premise, cls, joint, total;
};

class MeasureProperty : public ::testing::TestWithParam<CountCase> {};

TEST_P(MeasureProperty, Invariants) {
  const auto& p = GetParam();
  const RuleCounts c = Counts(p.premise, p.cls, p.joint, p.total);
  ASSERT_TRUE(CountsAreConsistent(c));

  // All probabilities in range.
  EXPECT_GE(Support(c), 0.0);
  EXPECT_LE(Support(c), 1.0);
  EXPECT_GE(Confidence(c), 0.0);
  EXPECT_LE(Confidence(c), 1.0);
  EXPECT_GE(Coverage(c), 0.0);
  EXPECT_LE(Coverage(c), 1.0);
  // support <= coverage (joint <= premise).
  EXPECT_LE(Support(c), Coverage(c) + 1e-12);
  // support <= confidence.
  EXPECT_LE(Support(c), Confidence(c) + 1e-12);
  // lift = confidence / prior, cross-check.
  if (p.cls > 0 && p.total > 0) {
    const double prior =
        static_cast<double>(p.cls) / static_cast<double>(p.total);
    EXPECT_NEAR(Lift(c), Confidence(c) / prior, 1e-9);
    // The paper: "lift is a value between 0 and infinity"; confidence-1
    // rules have lift = 1/prior.
    if (Confidence(c) == 1.0) EXPECT_NEAR(Lift(c), 1.0 / prior, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MeasureProperty,
    ::testing::Values(CountCase{50, 100, 40, 1000},
                      CountCase{1, 1, 1, 1},
                      CountCase{10, 10, 10, 100},
                      CountCase{200, 20, 20, 10265},
                      CountCase{21, 68, 21, 10265},
                      CountCase{100, 100, 0, 1000},
                      CountCase{0, 10, 0, 100}));

}  // namespace
}  // namespace rulelink::core
