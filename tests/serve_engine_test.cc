// linking::ServeEngine acceptance tests (DESIGN.md §5i):
//
//   * Differential: answers served query-at-a-time through Sessions are
//     byte-identical to batch StreamingLinker::Run over the same catalog
//     and query stream — both strategies, client counts {1, 2, 8}, two
//     workload seeds. The batch reference itself is checked identical at
//     thread counts {1, 2, 8} first.
//   * Allocation-free steady state: a global operator-new counter proves
//     a warmed session serves the whole stream again without a single
//     heap allocation.
//   * Swap stress (the TSan target): clients keep querying while a writer
//     alternates snapshots of two different catalogs. Every answer must
//     match the expected links of exactly the generation that served it —
//     a query that mixed two generations would produce links matching
//     neither — readers must never block, and every retired snapshot must
//     be reclaimed once the clients drain.
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/blocker.h"
#include "blocking/standard_blocking.h"
#include "datagen/key_chooser.h"
#include "datagen/workload.h"
#include "linking/feature_cache.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/serve_engine.h"
#include "linking/streaming_linker.h"
#include "util/logging.h"

// Global operator-new replacement counting every heap allocation in the
// process. The steady-state test reads the counter around a window where
// only the test thread runs, so the delta is exact.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Every variant must be replaced together: if, say, the nothrow form fell
// through to the default allocator (which std::stable_sort's temporary
// buffer uses), the matching free-based delete below would mismatch it —
// ASan's alloc-dealloc checker rightly aborts on that.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ::operator new(size, std::nothrow);
}
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align), size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace rulelink {
namespace {

constexpr double kThreshold = 0.6;

std::vector<linking::AttributeRule> ServeRules() {
  return {
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 3.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kExact, 1.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 0.5},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 0.5},
  };
}

struct Workload {
  std::vector<core::Item> catalog;
  std::vector<core::Item> queries;
};

Workload MakeWorkload(std::uint64_t seed, std::size_t catalog_size,
                      std::size_t num_queries) {
  Workload w;
  datagen::WorkloadConfig catalog_config;
  catalog_config.seed = seed;
  catalog_config.catalog_size = catalog_size;
  auto catalog = datagen::GenerateWorkloadCatalog(catalog_config);
  RL_CHECK(catalog.ok()) << catalog.status();

  datagen::QueryStreamConfig query_config;
  query_config.seed = seed + 1;
  query_config.num_queries = num_queries;
  query_config.chooser.distribution = datagen::Distribution::kZipfian;
  query_config.typo_prob = 0.08;
  query_config.truncate_prob = 0.05;
  auto stream = datagen::GenerateQueryStream(catalog.value(), query_config);
  RL_CHECK(stream.ok()) << stream.status();
  w.queries = std::move(stream).value().queries;
  w.catalog = std::move(catalog).value().items;
  return w;
}

// Batch reference, scattered per query. Asserts the batch run itself is
// identical at thread counts {1, 2, 8} along the way. The catalog is
// always a from-scratch single universe here — delta tests compact the
// served catalog down to its live items before comparing.
std::vector<std::vector<linking::Link>> BatchReference(
    const std::vector<core::Item>& catalog,
    const std::vector<core::Item>& queries,
    linking::Linker::Strategy strategy, double threshold = kThreshold,
    const blocking::CandidateGenerator* generator = nullptr) {
  const linking::ItemMatcher matcher{ServeRules()};
  linking::FeatureDictionary dict;
  const auto external = linking::FeatureCache::Build(
      queries, matcher, linking::FeatureCache::Side::kExternal, &dict);
  const auto local = linking::FeatureCache::Build(
      catalog, matcher, linking::FeatureCache::Side::kLocal, &dict);
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber, 4);
  const auto index = (generator != nullptr ? *generator : blocker)
                         .BuildIndex(queries, catalog);
  const linking::StreamingLinker streaming(&matcher, threshold, strategy);
  const auto links = streaming.Run(*index, external, local, nullptr, 1);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto again =
        streaming.Run(*index, external, local, nullptr, threads);
    EXPECT_EQ(again.size(), links.size());
    for (std::size_t i = 0; i < links.size() && i < again.size(); ++i) {
      EXPECT_EQ(again[i].external_index, links[i].external_index);
      EXPECT_EQ(again[i].local_index, links[i].local_index);
      EXPECT_EQ(again[i].score, links[i].score);
    }
  }
  std::vector<std::vector<linking::Link>> expected(queries.size());
  for (const linking::Link& link : links) {
    expected[link.external_index].push_back(link);
  }
  return expected;
}

std::unique_ptr<linking::ServeSnapshot> MakeSnapshot(
    const std::vector<core::Item>& catalog,
    linking::Linker::Strategy strategy) {
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber, 4);
  return std::make_unique<linking::ServeSnapshot>(
      catalog, linking::ItemMatcher{ServeRules()}, kThreshold, strategy,
      blocker);
}

bool SameLinks(const std::vector<linking::Link>& a,
               const std::vector<linking::Link>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].external_index != b[i].external_index ||
        a[i].local_index != b[i].local_index || a[i].score != b[i].score) {
      return false;
    }
  }
  return true;
}

// Builds the global-index -> compacted-index map over `num_items` items
// with `retired` tombstoned, and the compacted catalog itself (live items
// in index order — the order-preserving remap under which a delta-built
// snapshot must answer identically to a from-scratch one).
struct CompactedCatalog {
  std::vector<std::size_t> remap;  // SIZE_MAX for retired indices
  std::vector<core::Item> items;
};

CompactedCatalog Compact(const std::vector<core::Item>& catalog,
                         const std::vector<std::size_t>& retired) {
  std::vector<bool> dead(catalog.size(), false);
  for (const std::size_t index : retired) dead[index] = true;
  CompactedCatalog out;
  out.remap.assign(catalog.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (dead[i]) continue;
    out.remap[i] = out.items.size();
    out.items.push_back(catalog[i]);
  }
  return out;
}

// Rewrites served (global) local indices into the compacted universe. A
// served link to a retired item maps to SIZE_MAX and fails the compare
// loudly.
std::vector<linking::Link> RemapLocals(std::vector<linking::Link> links,
                                       const std::vector<std::size_t>& remap) {
  for (linking::Link& link : links) link.local_index = remap[link.local_index];
  return links;
}

TEST(ServeEngineTest, ServedAnswersMatchBatchRun) {
  for (const std::uint64_t seed : {42u, 1337u}) {
    const Workload w = MakeWorkload(seed, 3000, 600);
    for (const linking::Linker::Strategy strategy :
         {linking::Linker::Strategy::kBestPerExternal,
          linking::Linker::Strategy::kAllAboveThreshold}) {
      const auto expected = BatchReference(w.catalog, w.queries, strategy);
      linking::ServeEngine engine;
      engine.Publish(MakeSnapshot(w.catalog, strategy));
      for (const std::size_t clients :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        std::vector<std::vector<linking::Link>> answers(w.queries.size());
        std::atomic<std::size_t> ticket{0};
        auto client = [&] {
          linking::ServeEngine::Session session(&engine);
          std::size_t q;
          while ((q = ticket.fetch_add(1, std::memory_order_relaxed)) <
                 w.queries.size()) {
            const std::uint64_t generation =
                session.Query(w.queries[q], &answers[q], q);
            EXPECT_EQ(generation, 1u);
          }
        };
        if (clients == 1) {
          client();
        } else {
          std::vector<std::thread> workers;
          for (std::size_t c = 0; c < clients; ++c) {
            workers.emplace_back(client);
          }
          for (std::thread& worker : workers) worker.join();
        }
        std::size_t mismatches = 0;
        for (std::size_t q = 0; q < w.queries.size(); ++q) {
          if (!SameLinks(answers[q], expected[q])) ++mismatches;
        }
        EXPECT_EQ(mismatches, 0u)
            << "seed " << seed << ", clients " << clients;
      }
    }
  }
}

TEST(ServeEngineTest, SteadyStateQueriesAreAllocationFree) {
  const Workload w = MakeWorkload(42, 2000, 400);
  linking::ServeEngine engine;
  engine.Publish(
      MakeSnapshot(w.catalog, linking::Linker::Strategy::kBestPerExternal));
  linking::ServeEngine::Session session(&engine);
  std::vector<linking::Link> answer;
  // Warm pass: grows every per-session buffer to its high-water mark and
  // fills the overlay dictionary and score memo.
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    session.Query(w.queries[q], &answer, q);
  }
  // Steady state: the same stream again must not allocate at all.
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    session.Query(w.queries[q], &answer, q);
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state query path allocated " << (after - before)
      << " times over " << w.queries.size() << " queries";
}

TEST(ServeEngineTest, ConcurrentQueriesRacingSwaps) {
  // Two distinct catalogs alternate across generations; the queries come
  // from catalog A. An answer must match the reference of exactly the
  // generation that served it.
  const Workload a = MakeWorkload(42, 2000, 400);
  const Workload b = MakeWorkload(99, 2000, 1);
  const auto strategy = linking::Linker::Strategy::kBestPerExternal;
  const auto expected_a = BatchReference(a.catalog, a.queries, strategy);
  const auto expected_b = BatchReference(b.catalog, a.queries, strategy);

  constexpr std::size_t kClients = 4;
  constexpr std::uint64_t kSwaps = 6;
  linking::ServeEngine engine;
  engine.Publish(MakeSnapshot(a.catalog, strategy));  // generation 1 = A
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> served{0};

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      linking::ServeEngine::Session session(&engine);
      std::vector<linking::Link> answer;
      std::uint64_t bad = 0, count = 0;
      while (true) {
        const bool final_pass = done.load(std::memory_order_acquire);
        for (std::size_t q = c; q < a.queries.size(); q += kClients) {
          const std::uint64_t generation =
              session.Query(a.queries[q], &answer, q);
          // Odd generations serve catalog A, even ones catalog B. A torn
          // query (candidates from one snapshot, scores or catalog from
          // another) would match neither reference.
          const auto& expected =
              generation % 2 == 1 ? expected_a[q] : expected_b[q];
          if (!SameLinks(answer, expected)) ++bad;
          ++count;
        }
        if (final_pass) break;
      }
      mismatches.fetch_add(bad, std::memory_order_relaxed);
      served.fetch_add(count, std::memory_order_relaxed);
    });
  }
  for (std::uint64_t s = 0; s < kSwaps; ++s) {
    engine.Publish(
        MakeSnapshot(s % 2 == 0 ? b.catalog : a.catalog, strategy));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  engine.ReclaimRetired();
  const util::EpochStats epochs = engine.epoch_stats();
  EXPECT_EQ(epochs.retired, kSwaps);
  EXPECT_EQ(epochs.reclaimed, kSwaps);
  EXPECT_EQ(epochs.limbo, 0u);
  EXPECT_EQ(epochs.reader_blocks, 0u);
  EXPECT_EQ(engine.current_generation(), kSwaps + 1);
}

// The delta-publish acceptance differential (ISSUE 10): a snapshot
// reached via K = 3 delta publishes — mixed appends, retirements (from
// both the original catalog and an earlier delta's appended range), and a
// final policy hot-swap (threshold + rule set) — answers every query
// byte-identically to a from-scratch snapshot of the same final catalog
// and policy, across 2 seeds x both strategies x clients {1, 2, 8}.
TEST(ServeEngineTest, DeltaPublishesMatchFromScratchSnapshot) {
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber, 4);
  constexpr std::size_t kN0 = 2400, kN1 = 2700, kN = 3000;
  const std::vector<std::size_t> kRetired = {3, 100, 771, 5, 2500, 2950};
  const double final_threshold = kThreshold + 0.1;
  for (const std::uint64_t seed : {42u, 1337u}) {
    const Workload w = MakeWorkload(seed, kN, 600);
    for (const linking::Linker::Strategy strategy :
         {linking::Linker::Strategy::kBestPerExternal,
          linking::Linker::Strategy::kAllAboveThreshold}) {
      linking::ServeEngine engine;
      std::vector<core::Item> base(w.catalog.begin(), w.catalog.begin() + kN0);
      engine.Publish(std::make_unique<linking::ServeSnapshot>(
          std::move(base), linking::ItemMatcher{ServeRules()}, kThreshold,
          strategy, blocker));

      linking::CatalogDelta d1;
      d1.appended.assign(w.catalog.begin() + kN0, w.catalog.begin() + kN1);
      d1.retired = {3, 100, 771};
      EXPECT_EQ(engine.PublishDelta(std::move(d1), blocker), 2u);

      linking::CatalogDelta d2;  // 2500 retires out of delta 1's appends
      d2.appended.assign(w.catalog.begin() + kN1, w.catalog.end());
      d2.retired = {5, 2500};
      EXPECT_EQ(engine.PublishDelta(std::move(d2), blocker), 3u);

      // Pure hot-swap: no appends, one retirement, new threshold and an
      // attached rule set — all riding one generation stamp.
      const auto rules = std::make_shared<const core::RuleSet>();
      linking::ServePolicy policy;
      policy.threshold = final_threshold;
      policy.strategy = strategy;
      policy.rules = rules;
      linking::CatalogDelta d3;
      d3.retired = {2950};
      EXPECT_EQ(engine.PublishDelta(std::move(d3), blocker, &policy), 4u);
      EXPECT_EQ(engine.current_rules().get(), rules.get());

      const CompactedCatalog compacted = Compact(w.catalog, kRetired);
      const auto expected = BatchReference(compacted.items, w.queries,
                                           strategy, final_threshold);
      for (const std::size_t clients :
           {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        std::vector<std::vector<linking::Link>> answers(w.queries.size());
        std::atomic<std::size_t> ticket{0};
        auto client = [&] {
          linking::ServeEngine::Session session(&engine);
          std::size_t q;
          while ((q = ticket.fetch_add(1, std::memory_order_relaxed)) <
                 w.queries.size()) {
            const std::uint64_t generation =
                session.Query(w.queries[q], &answers[q], q);
            EXPECT_EQ(generation, 4u);
          }
        };
        if (clients == 1) {
          client();
        } else {
          std::vector<std::thread> workers;
          for (std::size_t c = 0; c < clients; ++c) {
            workers.emplace_back(client);
          }
          for (std::thread& worker : workers) worker.join();
        }
        std::size_t mismatches = 0;
        for (std::size_t q = 0; q < w.queries.size(); ++q) {
          if (!SameLinks(RemapLocals(answers[q], compacted.remap),
                         expected[q])) {
            ++mismatches;
          }
        }
        EXPECT_EQ(mismatches, 0u)
            << "seed " << seed << ", clients " << clients;
      }
      engine.ReclaimRetired();
      const util::EpochStats epochs = engine.epoch_stats();
      EXPECT_EQ(epochs.retired, 3u);
      EXPECT_EQ(epochs.reclaimed, 3u);
      EXPECT_EQ(epochs.limbo, 0u);
      EXPECT_EQ(epochs.reader_blocks, 0u);
    }
  }
}

// Same differential through the CartesianBlocker's extension path (the
// other ExtendItemIndex implementation).
TEST(ServeEngineTest, CartesianDeltaChainMatchesFromScratch) {
  const blocking::CartesianBlocker blocker;
  const Workload w = MakeWorkload(7, 300, 100);
  const auto strategy = linking::Linker::Strategy::kBestPerExternal;
  linking::ServeEngine engine;
  std::vector<core::Item> base(w.catalog.begin(), w.catalog.begin() + 200);
  engine.Publish(std::make_unique<linking::ServeSnapshot>(
      std::move(base), linking::ItemMatcher{ServeRules()}, kThreshold,
      strategy, blocker));
  linking::CatalogDelta d1;
  d1.appended.assign(w.catalog.begin() + 200, w.catalog.end());
  d1.retired = {10, 199};
  EXPECT_EQ(engine.PublishDelta(std::move(d1), blocker), 2u);
  linking::CatalogDelta d2;
  d2.retired = {40, 250};
  EXPECT_EQ(engine.PublishDelta(std::move(d2), blocker), 3u);

  const CompactedCatalog compacted = Compact(w.catalog, {10, 199, 40, 250});
  const auto expected = BatchReference(compacted.items, w.queries, strategy,
                                       kThreshold, &blocker);
  linking::ServeEngine::Session session(&engine);
  std::vector<linking::Link> answer;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(session.Query(w.queries[q], &answer, q), 3u);
    EXPECT_TRUE(SameLinks(RemapLocals(answer, compacted.remap), expected[q]))
        << "query " << q;
  }
}

// Satellite: one session across delta publishes. The overlay dictionary
// and score memo must rebase on every generation change — a delta
// generation's dictionary interns past exactly the universe the session's
// overlay extended, so stale overlay ids would alias the delta's new
// value ids and corrupt exact-match scoring. The cumulative counters
// (pairs_scored, FilterStats) are pinned: they double when the same
// stream replays within one generation and keep accumulating (never
// reset) across swaps.
TEST(ServeEngineTest, SessionOverlayAndCountersAcrossDeltaPublishes) {
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber, 4);
  const Workload w = MakeWorkload(42, 2000, 300);
  const auto strategy = linking::Linker::Strategy::kBestPerExternal;
  linking::ServeEngine engine;
  std::vector<core::Item> prefix(w.catalog.begin(),
                                 w.catalog.begin() + 1500);
  const auto expected1 = BatchReference(prefix, w.queries, strategy);
  engine.Publish(std::make_unique<linking::ServeSnapshot>(
      std::move(prefix), linking::ItemMatcher{ServeRules()}, kThreshold,
      strategy, blocker));

  linking::ServeEngine::Session session(&engine);
  std::vector<linking::Link> answer;
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(session.Query(w.queries[q], &answer, q), 1u);
    EXPECT_TRUE(SameLinks(answer, expected1[q])) << "query " << q;
  }
  const std::size_t scored1 = session.pairs_scored();
  const std::uint64_t pruned1 = session.filter_stats().pairs_pruned;
  ASSERT_GT(scored1, 0u);

  // Same stream, same generation: every counter advances by exactly the
  // same amount again (scored pairs are memo-independent).
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    session.Query(w.queries[q], &answer, q);
  }
  EXPECT_EQ(session.pairs_scored(), 2 * scored1);
  EXPECT_EQ(session.filter_stats().pairs_pruned, 2 * pruned1);

  // Delta publish: the remaining 500 items appear (the zipfian stream
  // queries them, so answers change) and two items retire.
  linking::CatalogDelta delta;
  delta.appended.assign(w.catalog.begin() + 1500, w.catalog.end());
  delta.retired = {7, 1600};
  EXPECT_EQ(engine.PublishDelta(std::move(delta), blocker), 2u);

  const CompactedCatalog compacted = Compact(w.catalog, {7, 1600});
  const auto expected2 = BatchReference(compacted.items, w.queries, strategy);
  for (std::size_t q = 0; q < w.queries.size(); ++q) {
    EXPECT_EQ(session.Query(w.queries[q], &answer, q), 2u);
    EXPECT_TRUE(SameLinks(RemapLocals(answer, compacted.remap), expected2[q]))
        << "query " << q;
  }
  // Counters accumulated across the swap — monotone, never reset.
  EXPECT_GT(session.pairs_scored(), 2 * scored1);
  EXPECT_GE(session.filter_stats().pairs_pruned, 2 * pruned1);
}

// Satellite: repeated publishes with no explicit ReclaimRetired keep
// limbo bounded — Publish/PublishDelta attempt reclamation themselves
// (the serve_engine.h contract). The serial phase is deterministic: with
// no reader pinned at publish time, limbo drains to zero on every swap.
// The concurrent phase paces the publisher two completed reader queries
// behind: any pin active at the next publish then began after the last
// retirement epoch, so only the just-retired snapshot can linger —
// limbo <= 1, deterministically, even under sanizer-skewed scheduling.
TEST(ServeEngineTest, RepeatedPublishesKeepLimboBounded) {
  const Workload w = MakeWorkload(7, 1000, 50);
  const auto strategy = linking::Linker::Strategy::kBestPerExternal;
  linking::ServeEngine engine;
  engine.Publish(MakeSnapshot(w.catalog, strategy));
  {
    linking::ServeEngine::Session session(&engine);
    std::vector<linking::Link> answer;
    for (int i = 0; i < 10; ++i) {
      session.Query(w.queries[i % w.queries.size()], &answer, 0);
      engine.Publish(MakeSnapshot(w.catalog, strategy));
      const util::EpochStats stats = engine.epoch_stats();
      EXPECT_EQ(stats.limbo, 0u) << "publish " << i;
      EXPECT_EQ(stats.reclaimed, stats.retired);
    }

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> queries_done{0};
    std::thread client([&] {
      linking::ServeEngine::Session worker(&engine);
      std::vector<linking::Link> links;
      std::size_t q = 0;
      while (!stop.load(std::memory_order_acquire)) {
        worker.Query(w.queries[q++ % w.queries.size()], &links, 0);
        queries_done.fetch_add(1, std::memory_order_release);
      }
    });
    for (int i = 0; i < 20; ++i) {
      engine.Publish(MakeSnapshot(w.catalog, strategy));
      EXPECT_LE(engine.epoch_stats().limbo, 1u) << "publish " << i;
      // Two full queries after this retirement: the first may have been
      // in flight (pinned before it), the second provably pinned after.
      const std::uint64_t mark =
          queries_done.load(std::memory_order_acquire);
      while (queries_done.load(std::memory_order_acquire) < mark + 2) {
        std::this_thread::yield();
      }
    }
    stop.store(true, std::memory_order_release);
    client.join();
  }
  // One more publish with every reader quiesced: the writer-side sweep
  // must drain limbo completely, with nobody ever calling ReclaimRetired.
  engine.Publish(MakeSnapshot(w.catalog, strategy));
  const util::EpochStats stats = engine.epoch_stats();
  EXPECT_EQ(stats.limbo, 0u);
  EXPECT_EQ(stats.reclaimed, stats.retired);
  EXPECT_EQ(stats.retired, 31u);
  EXPECT_EQ(stats.reader_blocks, 0u);
}

}  // namespace
}  // namespace rulelink
