#include "util/interner.h"

#include <cstddef>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rulelink::util {
namespace {

TEST(StringInternerTest, AssignsDenseFirstOccurrenceIds) {
  StringInterner interner;
  EXPECT_TRUE(interner.empty());
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.View(0), "alpha");
  EXPECT_EQ(interner.View(1), "beta");
  EXPECT_EQ(interner.View(2), "gamma");
}

TEST(StringInternerTest, DuplicateInternReturnsSameId) {
  StringInterner interner;
  const SymbolId a = interner.Intern("dup");
  EXPECT_EQ(interner.Intern("dup"), a);
  EXPECT_EQ(interner.Intern(std::string("dup")), a);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInternerTest, EmptyStringIsAValidSymbol) {
  StringInterner interner;
  const SymbolId empty = interner.Intern("");
  EXPECT_EQ(empty, 0u);
  EXPECT_EQ(interner.Intern(""), empty);
  EXPECT_EQ(interner.View(empty), "");
  EXPECT_EQ(interner.Find(""), empty);
  // The empty symbol must not collide with anything else.
  EXPECT_NE(interner.Intern("x"), empty);
}

TEST(StringInternerTest, FindNeverInterns) {
  StringInterner interner;
  EXPECT_EQ(interner.Find("missing"), kInvalidSymbolId);
  EXPECT_TRUE(interner.empty());
  interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), 0u);
  EXPECT_EQ(interner.Find("missing"), kInvalidSymbolId);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(StringInternerTest, ViewsStayValidAcrossGrowth) {
  // Views point into arena blocks that are never reallocated, so handing
  // out a view and then interning thousands more symbols must not
  // invalidate it.
  StringInterner interner;
  const std::string_view first = interner.View(interner.Intern("anchor"));
  const char* data_before = first.data();
  for (int i = 0; i < 50000; ++i) {
    interner.Intern("sym-" + std::to_string(i));
  }
  EXPECT_EQ(first.data(), data_before);
  EXPECT_EQ(first, "anchor");
  EXPECT_EQ(interner.View(0), "anchor");
}

TEST(StringInternerTest, CopyPreservesIdsAndOwnsItsArena) {
  StringInterner interner;
  interner.Intern("a");
  interner.Intern("bb");
  interner.Intern("ccc");
  const StringInterner copy(interner);
  ASSERT_EQ(copy.size(), 3u);
  for (SymbolId id = 0; id < 3; ++id) {
    EXPECT_EQ(copy.View(id), interner.View(id));
    // Deep copy: the bytes live in the copy's own arena.
    EXPECT_NE(copy.View(id).data(), interner.View(id).data());
  }
  EXPECT_EQ(copy.Find("bb"), 1u);
}

TEST(StringInternerTest, MoveKeepsViewsValid) {
  StringInterner interner;
  const SymbolId id = interner.Intern("survivor");
  const std::string_view view = interner.View(id);
  StringInterner moved(std::move(interner));
  EXPECT_EQ(moved.View(id), "survivor");
  EXPECT_EQ(moved.View(id).data(), view.data());
  EXPECT_EQ(moved.Find("survivor"), id);
}

TEST(StringInternerTest, MillionSymbolStress) {
  StringInterner interner;
  interner.Reserve(1000000);
  for (std::size_t i = 0; i < 1000000; ++i) {
    ASSERT_EQ(interner.Intern("k" + std::to_string(i)), i);
  }
  EXPECT_EQ(interner.size(), 1000000u);
  EXPECT_GT(interner.arena_bytes(), 0u);
  // Spot-check id stability and lookup at the extremes and in the middle.
  EXPECT_EQ(interner.View(0), "k0");
  EXPECT_EQ(interner.View(499999), "k499999");
  EXPECT_EQ(interner.View(999999), "k999999");
  EXPECT_EQ(interner.Find("k777777"), 777777u);
  // Re-interning is idempotent even at this size.
  EXPECT_EQ(interner.Intern("k31337"), 31337u);
  EXPECT_EQ(interner.size(), 1000000u);
}

TEST(StringInternerTest, SnapshotReadersRaceNothingWhileWriterInterns) {
  // The concurrency contract: a Snapshot taken at symbol count N can be
  // read from any number of threads while the owning interner keeps
  // interning on another thread. Run under TSan this test proves the
  // snapshot shares no mutable state with the growing interner.
  StringInterner interner;
  constexpr std::size_t kInitial = 4096;
  for (std::size_t i = 0; i < kInitial; ++i) {
    interner.Intern("base-" + std::to_string(i));
  }
  const StringInterner::Snapshot snapshot = interner.MakeSnapshot();
  ASSERT_EQ(snapshot.size(), kInitial);

  std::vector<std::thread> readers;
  std::vector<std::size_t> checksums(4, 0);
  for (std::size_t t = 0; t < 4; ++t) {
    readers.emplace_back([&snapshot, &checksums, t] {
      std::size_t sum = 0;
      for (int pass = 0; pass < 50; ++pass) {
        for (SymbolId id = 0; id < snapshot.size(); ++id) {
          sum += snapshot.View(id).size();
        }
      }
      checksums[t] = sum;
    });
  }
  // Writer thread grows the interner concurrently with the readers.
  std::thread writer([&interner] {
    for (std::size_t i = 0; i < 20000; ++i) {
      interner.Intern("grow-" + std::to_string(i));
    }
  });
  for (std::thread& reader : readers) reader.join();
  writer.join();

  for (std::size_t t = 1; t < checksums.size(); ++t) {
    EXPECT_EQ(checksums[t], checksums[0]);
  }
  EXPECT_EQ(interner.size(), kInitial + 20000);
  // The snapshot still sees exactly the prefix it was taken at.
  EXPECT_EQ(snapshot.size(), kInitial);
  EXPECT_EQ(snapshot.View(0), "base-0");
}

TEST(SymbolPackingTest, RoundTripsAndOrders) {
  const std::uint64_t packed = PackSymbolPair(7, 42);
  EXPECT_EQ(PackedHi(packed), 7u);
  EXPECT_EQ(PackedLo(packed), 42u);
  EXPECT_EQ(PackSymbolPair(0, 0), 0u);
  const std::uint64_t max = PackSymbolPair(0xFFFFFFFFu, 0xFFFFFFFFu);
  EXPECT_EQ(PackedHi(max), 0xFFFFFFFFu);
  EXPECT_EQ(PackedLo(max), 0xFFFFFFFFu);
  // Packed order is (hi, lo) lexicographic on the id pair.
  EXPECT_LT(PackSymbolPair(1, 99), PackSymbolPair(2, 0));
  EXPECT_LT(PackSymbolPair(2, 0), PackSymbolPair(2, 1));
}

}  // namespace
}  // namespace rulelink::util
