// Equivalence tests for the cached scoring path: ItemMatcher::ScoreCached
// over FeatureCache/FeatureDictionary must return exactly (bit-for-bit)
// the same score as ItemMatcher::Score on the raw items, for every
// similarity measure and for the awkward inputs the cache precomputes
// around — empty values, whitespace-only values, missing properties,
// duplicate values, multi-valued properties and sub-bigram strings.
#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "linking/feature_cache.h"
#include "linking/matcher.h"

namespace rulelink::linking {
namespace {

constexpr SimilarityMeasure kAllMeasures[] = {
    SimilarityMeasure::kExact,         SimilarityMeasure::kLevenshtein,
    SimilarityMeasure::kJaro,          SimilarityMeasure::kJaroWinkler,
    SimilarityMeasure::kJaccardTokens, SimilarityMeasure::kDiceBigram,
    SimilarityMeasure::kMongeElkan,
};

core::Item MakeItem(
    std::string iri,
    std::vector<std::pair<std::string, std::string>> facts) {
  core::Item item;
  item.iri = std::move(iri);
  for (auto& [property, value] : facts) {
    item.facts.push_back(
        core::PropertyValue{std::move(property), std::move(value)});
  }
  return item;
}

// External items covering the cache's precomputation branches: repeated
// tokens, duplicate and multi-valued properties, single characters (a
// string shorter than a bigram is its own gram), empty and whitespace-only
// values (zero tokens but a non-empty value list), and a missing property.
std::vector<core::Item> ExternalItems() {
  return {
      MakeItem("e0", {{"pn", "CRCW0805 10K ohm"}, {"mfr", "Vishay"}}),
      MakeItem("e1", {{"pn", "T83-106"}, {"mfr", "ACME corp"}}),
      MakeItem("e2", {{"pn", "X-1"}, {"pn", "X-1"}, {"mfr", "acme ACME"}}),
      MakeItem("e3", {{"pn", "WRONG"}, {"pn", "CRCW0805 10K ohm"}}),
      MakeItem("e4", {{"pn", "a"}, {"mfr", "b"}}),
      MakeItem("e5", {{"pn", ""}, {"mfr", " \t "}}),
      MakeItem("e6", {{"mfr", "Vishay"}}),  // pn missing entirely
  };
}

std::vector<core::Item> LocalItems() {
  return {
      MakeItem("l0", {{"pn", "CRCW0805 10K ohm"}, {"mfr", "Vishay"}}),
      MakeItem("l1", {{"pn", "CRCW0806 10K ohm"}, {"mfr", "vishay"}}),
      MakeItem("l2", {{"pn", "X-1"}, {"mfr", "ACME"}}),
      MakeItem("l3", {{"pn", "a b a"}, {"mfr", "b"}}),
      MakeItem("l4", {{"pn", ""}, {"mfr", ""}}),
      MakeItem("l5", {{"pn", "T83-106"}}),  // mfr missing entirely
  };
}

// The dictionary lives behind a unique_ptr so its address survives the
// struct being moved (the caches keep a pointer to it).
struct BuiltCaches {
  std::unique_ptr<FeatureDictionary> dict;
  FeatureCache external;
  FeatureCache local;
};

BuiltCaches BuildCaches(const std::vector<core::Item>& external,
                        const std::vector<core::Item>& local,
                        const ItemMatcher& matcher,
                        std::size_t num_threads = 1) {
  BuiltCaches caches;
  caches.dict = std::make_unique<FeatureDictionary>();
  caches.external =
      FeatureCache::Build(external, matcher, FeatureCache::Side::kExternal,
                          caches.dict.get(), num_threads);
  caches.local =
      FeatureCache::Build(local, matcher, FeatureCache::Side::kLocal,
                          caches.dict.get(), num_threads);
  return caches;
}

void ExpectAllPairsIdentical(const std::vector<core::Item>& external,
                             const std::vector<core::Item>& local,
                             const ItemMatcher& matcher,
                             const BuiltCaches& caches,
                             ScoreMemo* memo = nullptr) {
  for (std::size_t e = 0; e < external.size(); ++e) {
    for (std::size_t l = 0; l < local.size(); ++l) {
      // Exact double equality: the cached path must be byte-identical,
      // not merely close.
      EXPECT_EQ(matcher.ScoreCached(caches.external, e, caches.local, l,
                                    memo),
                matcher.Score(external[e], local[l]))
          << "external=" << external[e].iri << " local=" << local[l].iri;
    }
  }
}

TEST(ScoreCachedTest, MatchesScoreForEveryMeasure) {
  const auto external = ExternalItems();
  const auto local = LocalItems();
  for (SimilarityMeasure measure : kAllMeasures) {
    const ItemMatcher matcher({{"pn", "pn", measure, 2.0},
                               {"mfr", "mfr", measure, 1.0}});
    const auto caches = BuildCaches(external, local, matcher);
    SCOPED_TRACE(SimilarityMeasureName(measure));
    ExpectAllPairsIdentical(external, local, matcher, caches);
  }
}

TEST(ScoreCachedTest, MatchesScoreWithMixedMeasuresAndWeights) {
  const auto external = ExternalItems();
  const auto local = LocalItems();
  const ItemMatcher matcher({
      {"pn", "pn", SimilarityMeasure::kJaroWinkler, 3.0},
      {"pn", "pn", SimilarityMeasure::kJaccardTokens, 1.5},
      {"mfr", "mfr", SimilarityMeasure::kExact, 1.0},
      {"mfr", "mfr", SimilarityMeasure::kMongeElkan, 0.5},
  });
  const auto caches = BuildCaches(external, local, matcher);
  ExpectAllPairsIdentical(external, local, matcher, caches);
}

TEST(ScoreCachedTest, CrossPropertyMappingUsesTheRightSide) {
  const auto external = std::vector<core::Item>{
      MakeItem("e0", {{"provider:pn", "X-1"}})};
  const auto local = std::vector<core::Item>{MakeItem("l0", {{"pn", "X-1"}}),
                                             MakeItem("l1", {{"pn", "Y"}})};
  const ItemMatcher matcher(
      {{"provider:pn", "pn", SimilarityMeasure::kExact, 1.0}});
  const auto caches = BuildCaches(external, local, matcher);
  EXPECT_EQ(matcher.ScoreCached(caches.external, 0, caches.local, 0), 1.0);
  EXPECT_EQ(matcher.ScoreCached(caches.external, 0, caches.local, 1), 0.0);
  ExpectAllPairsIdentical(external, local, matcher, caches);
}

TEST(ScoreCachedTest, MemoizedScoresAreIdenticalAndCounted) {
  const auto external = ExternalItems();
  const auto local = LocalItems();
  const ItemMatcher matcher({
      {"pn", "pn", SimilarityMeasure::kJaroWinkler, 2.0},
      {"mfr", "mfr", SimilarityMeasure::kJaccardTokens, 1.0},
  });
  const auto caches = BuildCaches(external, local, matcher);

  ScoreMemo memo;
  // Two passes through the full cross product: the second pass must be
  // answered from the memo and still agree with the string path.
  ExpectAllPairsIdentical(external, local, matcher, caches, &memo);
  const ScoreMemoStats after_first = memo.stats();
  EXPECT_GT(after_first.lookups, 0u);
  ExpectAllPairsIdentical(external, local, matcher, caches, &memo);
  const ScoreMemoStats after_second = memo.stats();
  // Every value pair the second pass touched was already memoized.
  EXPECT_EQ(after_second.hits - after_first.hits,
            after_second.lookups - after_first.lookups);
  EXPECT_GT(after_second.hits, 0u);
  EXPECT_LE(after_second.hits, after_second.lookups);
  EXPECT_GT(after_second.hit_rate(), 0.0);

  memo.Clear();
  EXPECT_EQ(memo.stats().lookups, 0u);
  EXPECT_EQ(memo.stats().hits, 0u);
}

TEST(ScoreCachedTest, ParallelCacheBuildGivesIdenticalScores) {
  const auto external = ExternalItems();
  const auto local = LocalItems();
  const ItemMatcher matcher({
      {"pn", "pn", SimilarityMeasure::kDiceBigram, 1.0},
      {"mfr", "mfr", SimilarityMeasure::kMongeElkan, 1.0},
  });
  // Id numbering differs per thread count; scores must not.
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    SCOPED_TRACE(threads);
    const auto caches = BuildCaches(external, local, matcher, threads);
    ExpectAllPairsIdentical(external, local, matcher, caches);
  }
}

TEST(FeatureDictionaryTest, RepeatedValuesHitTheBuildMemo) {
  FeatureDictionary dict;
  const ValueId first = dict.AddValue("CRCW0805 10K ohm");
  const ValueId again = dict.AddValue("CRCW0805 10K ohm");
  EXPECT_EQ(first, again);
  EXPECT_EQ(dict.num_values(), 1u);
  EXPECT_EQ(dict.values_reused(), 1u);
  EXPECT_GT(dict.memory_bytes(), 0u);
}

TEST(FeatureDictionaryTest, FeaturesRecordTokensAndBigrams) {
  FeatureDictionary dict;
  const ValueId id = dict.AddValue("a b a");
  const auto features = dict.Features(id);
  EXPECT_EQ(features.text, "a b a");
  ASSERT_EQ(features.num_tokens, 3u);
  EXPECT_EQ(features.num_unique_tokens, 2u);
  // Occurrence order is preserved ("a", "b", "a"); the sorted copy is
  // non-decreasing.
  EXPECT_EQ(features.ordered_tokens[0], features.ordered_tokens[2]);
  EXPECT_NE(features.ordered_tokens[0], features.ordered_tokens[1]);
  EXPECT_LE(features.sorted_tokens[0], features.sorted_tokens[1]);
  EXPECT_LE(features.sorted_tokens[1], features.sorted_tokens[2]);
  // Bigrams of "a b a": "a ", " b", "b ", " a".
  EXPECT_EQ(features.num_bigrams, 4u);

  const ValueId empty = dict.AddValue("");
  const auto none = dict.Features(empty);
  EXPECT_EQ(none.num_tokens, 0u);
  EXPECT_EQ(none.num_bigrams, 0u);

  // A sub-bigram string is its own single gram.
  const ValueId single = dict.AddValue("x");
  EXPECT_EQ(dict.Features(single).num_bigrams, 1u);
}

TEST(FeatureCacheTest, SlotsFollowRuleOrderAndMissingPropertiesAreEmpty) {
  const ItemMatcher matcher({
      {"pn", "pn", SimilarityMeasure::kExact, 1.0},
      {"mfr", "mfr", SimilarityMeasure::kExact, 1.0},
  });
  const auto external = ExternalItems();
  FeatureDictionary dict;
  const auto cache = FeatureCache::Build(
      external, matcher, FeatureCache::Side::kExternal, &dict, 1);
  ASSERT_EQ(cache.num_items(), external.size());
  ASSERT_EQ(cache.num_rules(), 2u);

  std::size_t count = 0;
  // e2 lists "pn" twice: both occurrences are kept (value multiplicity
  // matters to best-pair semantics only through the cross product, but
  // the cache must mirror the item faithfully).
  cache.Values(2, 0, &count);
  EXPECT_EQ(count, 2u);
  // e6 has no "pn" at all.
  cache.Values(6, 0, &count);
  EXPECT_EQ(count, 0u);
  // e6's "mfr" slot holds one value.
  const ValueId* mfr = cache.Values(6, 1, &count);
  ASSERT_EQ(count, 1u);
  EXPECT_EQ(dict.View(mfr[0]), "Vishay");
}

}  // namespace
}  // namespace rulelink::linking
