// Differential coverage for the bit-parallel Myers Levenshtein kernel:
// LevenshteinDistance (Myers, single-word and blocked) must agree with the
// preserved dynamic-programming reference on arbitrary byte strings, and
// BoundedLevenshteinDistance must return the exact distance whenever it is
// within the cap and something strictly larger otherwise.
#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "text/similarity.h"
#include "util/rng.h"
#include "util/simd.h"

namespace rulelink::text {
namespace {

// Random string of `length` bytes. Mode 0: ASCII part-number-ish alphabet.
// Mode 1: raw bytes 0..255 (exercises the full Peq table). Mode 2: UTF-8
// encodings of random code points, truncated to `length` bytes, so the
// kernels see realistic multi-byte sequences (the measure is byte-based;
// the DP reference defines the expected value either way).
std::string RandomString(util::Rng& rng, std::size_t length, int mode) {
  std::string s;
  s.reserve(length + 4);
  static constexpr std::string_view kAscii =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-./ ";
  while (s.size() < length) {
    switch (mode) {
      case 0:
        s.push_back(kAscii[rng.UniformUint64(kAscii.size())]);
        break;
      case 1:
        s.push_back(static_cast<char>(rng.UniformUint64(256)));
        break;
      default: {
        const std::uint64_t cp = 0x80 + rng.UniformUint64(0x10000);
        if (cp < 0x800) {
          s.push_back(static_cast<char>(0xC0 | (cp >> 6)));
          s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
          s.push_back(static_cast<char>(0xE0 | (cp >> 12)));
          s.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
          s.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        break;
      }
    }
  }
  s.resize(length);
  return s;
}

class LevenshteinBitParallelTest : public ::testing::TestWithParam<int> {};

TEST_P(LevenshteinBitParallelTest, MatchesDPReferenceOnRandomStrings) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 600; ++iter) {
    const int mode = iter % 3;
    // Lengths 0..200 cross the 64-byte single-word boundary and need up
    // to four 64-bit blocks.
    const std::size_t la = rng.UniformUint64(201);
    const std::size_t lb = rng.UniformUint64(201);
    std::string a = RandomString(rng, la, mode);
    std::string b = RandomString(rng, lb, mode);
    // Half the time, derive b from a by a few edits so the pair is close
    // (far pairs dominate otherwise and close pairs are the hot case).
    if (rng.Bernoulli(0.5)) {
      b = a;
      const std::size_t edits = rng.UniformUint64(6);
      for (std::size_t e = 0; e < edits && !b.empty(); ++e) {
        const std::size_t pos = rng.UniformUint64(b.size());
        switch (rng.UniformUint64(3)) {
          case 0:
            b[pos] = static_cast<char>(rng.UniformUint64(256));
            break;
          case 1:
            b.erase(pos, 1);
            break;
          default:
            b.insert(pos, 1, static_cast<char>(rng.UniformUint64(256)));
            break;
        }
      }
    }
    const std::size_t expected = LevenshteinDistanceDP(a, b);
    ASSERT_EQ(LevenshteinDistance(a, b), expected)
        << "seed=" << GetParam() << " iter=" << iter << " |a|=" << a.size()
        << " |b|=" << b.size();
    // The derived similarity must be the exact same double.
    ASSERT_EQ(LevenshteinSimilarity(a, b),
              LevenshteinSimilarityFromDistance(
                  expected, std::max(a.size(), b.size())));
  }
}

TEST_P(LevenshteinBitParallelTest, BoundedContractOnRandomStrings) {
  util::Rng rng(0x9E3779B9u * static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 600; ++iter) {
    const std::size_t la = rng.UniformUint64(201);
    const std::size_t lb = rng.UniformUint64(201);
    const std::string a = RandomString(rng, la, iter % 3);
    const std::string b = RandomString(rng, lb, (iter + 1) % 3);
    const std::size_t d = LevenshteinDistanceDP(a, b);
    const std::size_t cap = rng.UniformUint64(210);
    const std::size_t bounded = BoundedLevenshteinDistance(a, b, cap);
    if (d <= cap) {
      ASSERT_EQ(bounded, d) << "seed=" << GetParam() << " iter=" << iter
                            << " cap=" << cap;
    } else {
      ASSERT_GT(bounded, cap) << "seed=" << GetParam() << " iter=" << iter
                              << " d=" << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinBitParallelTest,
                         ::testing::Values(1, 2, 3));

TEST(LevenshteinBitParallel, BlockBoundaryLengths) {
  // Exercise pattern lengths right at the 64-bit block edges.
  for (const std::size_t len : {63u, 64u, 65u, 127u, 128u, 129u, 192u}) {
    const std::string a(len, 'x');
    std::string b = a;
    b[len / 2] = 'y';
    b.push_back('z');
    EXPECT_EQ(LevenshteinDistance(a, a), 0u) << len;
    EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistanceDP(a, b)) << len;
    EXPECT_EQ(LevenshteinDistance(a, std::string()), len);
  }
}

TEST(LevenshteinBitParallel, BoundedEdgeCases) {
  const std::string long_string(100, 'a');
  // Empty vs long: the length gate alone decides.
  EXPECT_GT(BoundedLevenshteinDistance("", long_string, 3), 3u);
  EXPECT_EQ(BoundedLevenshteinDistance("", long_string, 100), 100u);
  EXPECT_EQ(BoundedLevenshteinDistance("", long_string, 500), 100u);
  EXPECT_EQ(BoundedLevenshteinDistance("", "", 0), 0u);
  // Equal strings are distance 0 under any cap, including 0.
  EXPECT_EQ(BoundedLevenshteinDistance(long_string, long_string, 0), 0u);
  EXPECT_EQ(BoundedLevenshteinDistance("abc", "abc", 0), 0u);
  // cap = 0 with any difference must report > 0.
  EXPECT_GT(BoundedLevenshteinDistance("abc", "abd", 0), 0u);
  EXPECT_GT(BoundedLevenshteinDistance("abc", "abcd", 0), 0u);
  // cap exactly at the distance: exact value comes back.
  EXPECT_EQ(BoundedLevenshteinDistance("kitten", "sitting", 3), 3u);
  EXPECT_GT(BoundedLevenshteinDistance("kitten", "sitting", 2), 2u);
}

TEST(LevenshteinBitParallel, BoundedSingleByteEdgeCases) {
  // Single-byte patterns drive last_row down to bit 0, the smallest mask
  // the word kernel ever uses; these are the stage-B probe shapes for
  // one-character part numbers.
  EXPECT_EQ(BoundedLevenshteinDistance("a", "a", 0), 0u);
  EXPECT_GT(BoundedLevenshteinDistance("a", "b", 0), 0u);
  EXPECT_EQ(BoundedLevenshteinDistance("a", "b", 1), 1u);
  EXPECT_EQ(BoundedLevenshteinDistance("a", "", 1), 1u);
  EXPECT_EQ(BoundedLevenshteinDistance("", "a", 1), 1u);
  EXPECT_GT(BoundedLevenshteinDistance("", "a", 0), 0u);
  EXPECT_EQ(BoundedLevenshteinDistance("a", "ab", 1), 1u);
  EXPECT_EQ(BoundedLevenshteinDistance("a", "bbbb", 4), 4u);
  EXPECT_GT(BoundedLevenshteinDistance("a", "bbbb", 3), 3u);
  // A cap far beyond both lengths is clamped internally before the
  // kernel's early-exit arithmetic; the exact distance still comes back.
  EXPECT_EQ(BoundedLevenshteinDistance(
                "a", "b", static_cast<std::size_t>(-2)),
            1u);
}

// The batch entry point must return, pair for pair, exactly what the
// single-pair function returns — including the cap+1 early-exit values —
// at every lane width the dispatcher can pick. Modes the CPU lacks clamp
// down, so this runs (possibly redundantly) everywhere.
TEST(LevenshteinBitParallel, BatchMatchesSinglePairAtEveryLaneWidth) {
  util::Rng rng(0xB10C5EEDu);
  std::vector<std::string> as, bs;
  std::vector<std::size_t> caps;
  for (int iter = 0; iter < 400; ++iter) {
    // Mixed shapes: short/short (interleaved kernel), >64-byte patterns
    // (blocked fallback), empties and equal strings (prologue).
    const std::size_t la = rng.UniformUint64(90);
    const std::size_t lb = rng.UniformUint64(90);
    as.push_back(RandomString(rng, la, iter % 3));
    if (rng.Bernoulli(0.25)) {
      bs.push_back(as.back());  // equal pair: prologue cap==0 shape
    } else {
      bs.push_back(RandomString(rng, lb, (iter + 1) % 3));
    }
    caps.push_back(rng.UniformUint64(12));
  }
  std::vector<std::string_view> va(as.begin(), as.end());
  std::vector<std::string_view> vb(bs.begin(), bs.end());
  std::vector<std::size_t> expected(va.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    expected[i] = BoundedLevenshteinDistance(va[i], vb[i], caps[i]);
  }
  for (const util::SimdMode mode :
       {util::SimdMode::kOff, util::SimdMode::kScalar,
        util::SimdMode::kSSE42, util::SimdMode::kAVX2}) {
    const util::ScopedSimdMode scoped(mode);
    std::vector<std::size_t> out(va.size(), ~std::size_t{0});
    BoundedLevenshteinDistanceBatch(va.data(), vb.data(), caps.data(),
                                    va.size(), out.data());
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(out[i], expected[i])
          << "mode=" << util::SimdModeName(mode) << " i=" << i
          << " cap=" << caps[i] << " |a|=" << va[i].size()
          << " |b|=" << vb[i].size();
    }
  }
}

// The cascade's shape: runs of probes sharing one a-side value, which
// the batch entry turns into shared-pattern segments for the interleaved
// kernels. Covers segment lengths that pad the final lane group, pattern
// lengths at the word-kernel extremes (1 and 64 bytes), texts shorter
// AND longer than the shared pattern (the segment path never swaps), and
// a singleton segment between two real ones (the per-pair fallback).
TEST(LevenshteinBitParallel, BatchSharedPatternSegments) {
  util::Rng rng(0x5E6A5EEDu);
  std::vector<std::string> pattern_storage, text_storage;
  std::vector<std::size_t> segment_lengths;
  const std::size_t pattern_lengths[] = {1, 3, 7, 12, 33, 64};
  for (const std::size_t pm : pattern_lengths) {
    // 1..9 spans partial, exact and multi-group segments at widths 2/4.
    for (std::size_t len = 1; len <= 9; ++len) {
      pattern_storage.push_back(RandomString(rng, pm, 0));
      segment_lengths.push_back(len);
    }
  }
  std::vector<std::string_view> va, vb;
  std::vector<std::size_t> caps;
  std::size_t probe = 0;
  for (std::size_t s = 0; s < pattern_storage.size(); ++s) {
    text_storage.reserve(text_storage.size() + segment_lengths[s]);
    for (std::size_t i = 0; i < segment_lengths[s]; ++i) {
      const std::size_t ln = 1 + rng.UniformUint64(80);
      text_storage.push_back(RandomString(rng, ln, probe++ % 3));
    }
  }
  std::size_t t = 0;
  for (std::size_t s = 0; s < pattern_storage.size(); ++s) {
    for (std::size_t i = 0; i < segment_lengths[s]; ++i) {
      va.emplace_back(pattern_storage[s]);  // one shared view per segment
      vb.emplace_back(text_storage[t++]);
      caps.push_back(rng.UniformUint64(15));
    }
  }
  std::vector<std::size_t> expected(va.size());
  for (std::size_t i = 0; i < va.size(); ++i) {
    expected[i] = BoundedLevenshteinDistance(va[i], vb[i], caps[i]);
  }
  for (const util::SimdMode mode :
       {util::SimdMode::kOff, util::SimdMode::kScalar,
        util::SimdMode::kSSE42, util::SimdMode::kAVX2}) {
    const util::ScopedSimdMode scoped(mode);
    std::vector<std::size_t> out(va.size(), ~std::size_t{0});
    BoundedLevenshteinDistanceBatch(va.data(), vb.data(), caps.data(),
                                    va.size(), out.data());
    for (std::size_t i = 0; i < va.size(); ++i) {
      ASSERT_EQ(out[i], expected[i])
          << "mode=" << util::SimdModeName(mode) << " i=" << i
          << " cap=" << caps[i] << " |a|=" << va[i].size()
          << " |b|=" << vb[i].size();
    }
  }
}

// Partial final groups (count not a multiple of the lane width) and
// segment-of-one patterns take the single-pair remainder path; make sure
// every count near the width boundaries round-trips.
TEST(LevenshteinBitParallel, BatchRemainderCounts) {
  util::Rng rng(0x5EEDCAFEu);
  for (std::size_t count = 0; count <= 9; ++count) {
    std::vector<std::string> as, bs;
    std::vector<std::size_t> caps;
    for (std::size_t i = 0; i < count; ++i) {
      as.push_back(RandomString(rng, 1 + rng.UniformUint64(20), 0));
      bs.push_back(RandomString(rng, 1 + rng.UniformUint64(20), 0));
      caps.push_back(rng.UniformUint64(6));
    }
    std::vector<std::string_view> va(as.begin(), as.end());
    std::vector<std::string_view> vb(bs.begin(), bs.end());
    std::vector<std::size_t> out(count, ~std::size_t{0});
    BoundedLevenshteinDistanceBatch(va.data(), vb.data(), caps.data(),
                                    count, out.data());
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i],
                BoundedLevenshteinDistance(va[i], vb[i], caps[i]))
          << "count=" << count << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace rulelink::text
