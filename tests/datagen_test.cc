#include <algorithm>
#include <memory>
#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "util/logging.h"

#include "datagen/dataset.h"
#include "datagen/generator.h"
#include "datagen/ontology_gen.h"
#include "datagen/typo.h"
#include "rdf/vocab.h"
#include "text/similarity.h"
#include "util/rng.h"

namespace rulelink::datagen {
namespace {

DatasetConfig SmallConfig(std::uint64_t seed = 7) {
  DatasetConfig config;
  config.seed = seed;
  config.num_classes = 60;
  config.num_leaves = 25;
  config.catalog_size = 1200;
  config.num_links = 500;
  config.num_signal_classes = 6;
  config.num_other_frequent_classes = 8;
  config.signal_class_min_links = 30;
  config.signal_class_max_links = 60;
  config.frequent_class_min_links = 8;
  config.frequent_class_max_links = 12;
  config.tail_class_cap_links = 5;
  return config;
}

TEST(OntologyGenTest, ExactClassAndLeafCounts) {
  util::Rng rng(1);
  auto result = GenerateOntology(566, 226, &rng);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->ontology.num_classes(), 566u);
  EXPECT_EQ(result->leaves.size(), 226u);
  EXPECT_EQ(result->ontology.Leaves().size(), 226u);
}

TEST(OntologyGenTest, SingleRoot) {
  util::Rng rng(2);
  auto result = GenerateOntology(100, 40, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->ontology.Roots().size(), 1u);
}

TEST(OntologyGenTest, EveryClassHasFamilyAssignment) {
  util::Rng rng(3);
  auto result = GenerateOntology(100, 40, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->family_of.size(), result->ontology.num_classes());
  for (ontology::ClassId c = 0; c < result->ontology.num_classes(); ++c) {
    EXPECT_NE(result->family_of[c], ontology::kInvalidClassId);
  }
}

TEST(OntologyGenTest, FamiliesHaveUnits) {
  util::Rng rng(4);
  auto result = GenerateOntology(100, 40, &rng);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->families.empty());
  ASSERT_EQ(result->family_units.size(), result->families.size());
  for (const auto& units : result->family_units) {
    EXPECT_GE(units.size(), 2u);
  }
}

TEST(OntologyGenTest, LabelsAreUnique) {
  util::Rng rng(5);
  auto result = GenerateOntology(300, 120, &rng);
  ASSERT_TRUE(result.ok());
  std::set<std::string> labels;
  for (ontology::ClassId c = 0; c < result->ontology.num_classes(); ++c) {
    EXPECT_TRUE(labels.insert(result->ontology.label(c)).second)
        << "duplicate label " << result->ontology.label(c);
  }
}

TEST(OntologyGenTest, RejectsInfeasibleShapes) {
  util::Rng rng(6);
  EXPECT_FALSE(GenerateOntology(10, 10, &rng).ok());   // leaves == classes
  EXPECT_FALSE(GenerateOntology(10, 1, &rng).ok());    // too few leaves
  EXPECT_FALSE(GenerateOntology(5, 4, &rng).ok());     // no room for families
}

TEST(TypoTest, ProducesSmallEdit) {
  util::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::string original = "CRCW0805";
    const std::string mutated = ApplyTypo(original, &rng);
    EXPECT_NE(mutated, original);
    EXPECT_LE(text::DamerauLevenshteinDistance(original, mutated), 2u);
  }
}

TEST(TypoTest, HandlesTinyStrings) {
  util::Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ApplyTypo("", &rng).empty());
    const std::string one = ApplyTypo("A", &rng);
    EXPECT_GE(one.size(), 1u);
  }
}

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() {
    auto result = DatasetGenerator(SmallConfig()).Generate();
    RL_CHECK(result.ok()) << result.status();
    dataset_ = std::make_unique<Dataset>(std::move(result).value());
  }

  std::unique_ptr<Dataset> dataset_;
};

TEST_F(GeneratorTest, SizesMatchConfig) {
  EXPECT_EQ(dataset_->catalog_items.size(), 1200u);
  EXPECT_EQ(dataset_->catalog_classes.size(), 1200u);
  EXPECT_EQ(dataset_->external_items.size(), 500u);
  EXPECT_EQ(dataset_->links.size(), 500u);
  EXPECT_EQ(dataset_->ontology().num_classes(), 60u);
}

TEST_F(GeneratorTest, AllCatalogClassesAreLeaves) {
  for (ontology::ClassId c : dataset_->catalog_classes) {
    EXPECT_TRUE(dataset_->ontology().IsLeaf(c));
  }
}

TEST_F(GeneratorTest, LinksReferenceDistinctCatalogItems) {
  std::unordered_set<std::size_t> seen;
  for (const GoldLink& link : dataset_->links) {
    EXPECT_LT(link.catalog_index, dataset_->catalog_items.size());
    EXPECT_TRUE(seen.insert(link.catalog_index).second)
        << "catalog item linked twice (UNA violation)";
  }
}

TEST_F(GeneratorTest, ExternalItemsHavePartNumberAndManufacturer) {
  for (const core::Item& item : dataset_->external_items) {
    EXPECT_FALSE(item.ValuesOf(props::kPartNumber).empty());
    EXPECT_FALSE(item.ValuesOf(props::kManufacturer).empty());
  }
}

TEST_F(GeneratorTest, ManufacturerPreservedAcrossLink) {
  for (const GoldLink& link : dataset_->links) {
    const auto ext =
        dataset_->external_items[link.external_index].ValuesOf(
            props::kManufacturer);
    const auto cat =
        dataset_->catalog_items[link.catalog_index].ValuesOf(
            props::kManufacturer);
    ASSERT_FALSE(ext.empty());
    ASSERT_FALSE(cat.empty());
    EXPECT_EQ(ext[0], cat[0]);
  }
}

TEST_F(GeneratorTest, SignalClassCountMatchesConfig) {
  // 6 frequent signal classes plus the tail fraction.
  EXPECT_GE(dataset_->signal_classes.size(), 6u);
}

TEST_F(GeneratorTest, DeterministicForSameSeed) {
  auto again = DatasetGenerator(SmallConfig()).Generate();
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->catalog_items.size(), dataset_->catalog_items.size());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(again->catalog_items[i].facts[0].value,
              dataset_->catalog_items[i].facts[0].value);
  }
  ASSERT_EQ(again->external_items.size(), dataset_->external_items.size());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(again->external_items[i].facts[0].value,
              dataset_->external_items[i].facts[0].value);
  }
}

TEST_F(GeneratorTest, DifferentSeedsDiffer) {
  auto other = DatasetGenerator(SmallConfig(99)).Generate();
  ASSERT_TRUE(other.ok());
  int differing = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    differing += other->catalog_items[i].facts[0].value !=
                 dataset_->catalog_items[i].facts[0].value;
  }
  EXPECT_GT(differing, 50);
}

TEST_F(GeneratorTest, ConfigValidation) {
  DatasetConfig bad = SmallConfig();
  bad.num_links = bad.catalog_size + 1;
  EXPECT_FALSE(DatasetGenerator(bad).Generate().ok());

  bad = SmallConfig();
  bad.pure_fraction = 0.9;
  bad.high_purity_fraction = 0.9;
  EXPECT_FALSE(DatasetGenerator(bad).Generate().ok());
}

TEST_F(GeneratorTest, BuildTrainingSetFlattensLinks) {
  const core::TrainingSet ts = BuildTrainingSet(*dataset_);
  EXPECT_EQ(ts.size(), dataset_->links.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const auto& example = ts.examples()[i];
    ASSERT_EQ(example.classes.size(), 1u);
    EXPECT_EQ(example.classes[0],
              dataset_->catalog_classes[dataset_->links[i].catalog_index]);
    EXPECT_FALSE(example.facts.empty());
  }
}

TEST_F(GeneratorTest, RdfProjectionsAreConsistent) {
  const rdf::Graph local = BuildLocalGraph(*dataset_);
  const rdf::Graph external = BuildExternalGraph(*dataset_);
  const rdf::Graph links = BuildLinksGraph(*dataset_);

  EXPECT_GT(local.size(), dataset_->catalog_items.size());
  EXPECT_GT(external.size(), 0u);
  EXPECT_EQ(links.CountMatches(rdf::TriplePattern{}),
            dataset_->links.size());

  // Every catalog item is typed in the local graph.
  const rdf::TermId type_id =
      local.dict().FindIri(rdf::vocab::kRdfType);
  ASSERT_NE(type_id, rdf::kInvalidTermId);
  for (std::size_t i = 0; i < 20; ++i) {
    const rdf::TermId subject =
        local.dict().FindIri(dataset_->catalog_items[i].iri);
    ASSERT_NE(subject, rdf::kInvalidTermId);
    EXPECT_NE(local.FirstObject(subject, type_id), rdf::kInvalidTermId);
  }
}

}  // namespace
}  // namespace rulelink::datagen
