#include <cmath>

#include <gtest/gtest.h>

#include "linking/evaluation.h"
#include "linking/linker.h"
#include "linking/matcher.h"

namespace rulelink::linking {
namespace {

core::Item MakeItem(const std::string& iri, const std::string& pn,
                    const std::string& mfr = "") {
  core::Item item;
  item.iri = iri;
  item.facts.push_back(core::PropertyValue{"pn", pn});
  if (!mfr.empty()) {
    item.facts.push_back(core::PropertyValue{"mfr", mfr});
  }
  return item;
}

TEST(ComputeSimilarityTest, DispatchesAllMeasures) {
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimilarityMeasure::kExact, "a", "a"), 1.0);
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimilarityMeasure::kExact, "a", "b"), 0.0);
  for (SimilarityMeasure m :
       {SimilarityMeasure::kLevenshtein, SimilarityMeasure::kJaro,
        SimilarityMeasure::kJaroWinkler, SimilarityMeasure::kJaccardTokens,
        SimilarityMeasure::kDiceBigram, SimilarityMeasure::kMongeElkan}) {
    EXPECT_DOUBLE_EQ(ComputeSimilarity(m, "same", "same"), 1.0)
        << SimilarityMeasureName(m);
    // Multi-token inputs so the token-based measures see partial overlap.
    const double s =
        ComputeSimilarity(m, "CRCW0805 10K ohm", "CRCW0806 10K ohm");
    EXPECT_GT(s, 0.0) << SimilarityMeasureName(m);
    EXPECT_LT(s, 1.0) << SimilarityMeasureName(m);
  }
}

TEST(ItemMatcherTest, SingleAttributeScore) {
  const ItemMatcher matcher({{"pn", "pn", SimilarityMeasure::kExact, 1.0}});
  EXPECT_DOUBLE_EQ(
      matcher.Score(MakeItem("e", "X-1"), MakeItem("l", "X-1")), 1.0);
  EXPECT_DOUBLE_EQ(
      matcher.Score(MakeItem("e", "X-1"), MakeItem("l", "Y-2")), 0.0);
}

TEST(ItemMatcherTest, WeightedAggregation) {
  const ItemMatcher matcher({
      {"pn", "pn", SimilarityMeasure::kExact, 3.0},
      {"mfr", "mfr", SimilarityMeasure::kExact, 1.0},
  });
  // pn matches, mfr does not: (3*1 + 1*0) / 4.
  EXPECT_DOUBLE_EQ(matcher.Score(MakeItem("e", "X", "ACME"),
                                 MakeItem("l", "X", "OTHER")),
                   0.75);
}

TEST(ItemMatcherTest, MissingAttributeRenormalizes) {
  const ItemMatcher matcher({
      {"pn", "pn", SimilarityMeasure::kExact, 3.0},
      {"mfr", "mfr", SimilarityMeasure::kExact, 1.0},
  });
  // mfr missing on one side: only pn counts.
  EXPECT_DOUBLE_EQ(
      matcher.Score(MakeItem("e", "X", "ACME"), MakeItem("l", "X")), 1.0);
  // Everything missing: zero.
  core::Item empty;
  empty.iri = "e";
  EXPECT_DOUBLE_EQ(matcher.Score(empty, MakeItem("l", "X")), 0.0);
}

TEST(ItemMatcherTest, BestValuePairWins) {
  core::Item multi;
  multi.iri = "e";
  multi.facts.push_back(core::PropertyValue{"pn", "WRONG"});
  multi.facts.push_back(core::PropertyValue{"pn", "X-1"});
  const ItemMatcher matcher({{"pn", "pn", SimilarityMeasure::kExact, 1.0}});
  EXPECT_DOUBLE_EQ(matcher.Score(multi, MakeItem("l", "X-1")), 1.0);
}

TEST(ItemMatcherTest, CrossPropertyMapping) {
  core::Item external;
  external.iri = "e";
  external.facts.push_back(
      core::PropertyValue{"provider:pn", "X-1"});
  const ItemMatcher matcher(
      {{"provider:pn", "pn", SimilarityMeasure::kExact, 1.0}});
  EXPECT_DOUBLE_EQ(matcher.Score(external, MakeItem("l", "X-1")), 1.0);
}

class LinkerTest : public ::testing::Test {
 protected:
  LinkerTest()
      : matcher_({{"pn", "pn", SimilarityMeasure::kJaroWinkler, 1.0}}) {
    external_ = {MakeItem("e0", "CRCW0805-10K"), MakeItem("e1", "T83-106")};
    local_ = {MakeItem("l0", "CRCW0805-10K"), MakeItem("l1", "CRCW0805-22K"),
              MakeItem("l2", "T83-106"), MakeItem("l3", "unrelated-zzz")};
    for (std::size_t e = 0; e < external_.size(); ++e) {
      for (std::size_t l = 0; l < local_.size(); ++l) {
        all_pairs_.push_back(blocking::CandidatePair{e, l});
      }
    }
  }

  ItemMatcher matcher_;
  std::vector<core::Item> external_, local_;
  std::vector<blocking::CandidatePair> all_pairs_;
};

TEST_F(LinkerTest, BestPerExternalKeepsArgmax) {
  const Linker linker(&matcher_, 0.9);
  LinkerStats stats;
  const auto links = linker.Run(external_, local_, all_pairs_, &stats);
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].external_index, 0u);
  EXPECT_EQ(links[0].local_index, 0u);
  EXPECT_DOUBLE_EQ(links[0].score, 1.0);
  EXPECT_EQ(links[1].external_index, 1u);
  EXPECT_EQ(links[1].local_index, 2u);
  EXPECT_EQ(stats.pairs_scored, 8u);
  // One rule, single-valued items: one kernel per pair.
  EXPECT_EQ(stats.comparisons, 8u);
  EXPECT_EQ(stats.links_emitted, 2u);
}

TEST_F(LinkerTest, ThresholdSuppressesWeakLinks) {
  const Linker strict(&matcher_, 1.0);
  const std::vector<blocking::CandidatePair> only_weak = {{0, 3}};
  EXPECT_TRUE(strict.Run(external_, local_, only_weak, nullptr).empty());
}

TEST_F(LinkerTest, AllAboveThresholdStrategy) {
  const Linker linker(&matcher_, 0.9, Linker::Strategy::kAllAboveThreshold);
  const auto links = linker.Run(external_, local_, all_pairs_, nullptr);
  // e0 matches l0 perfectly and l1 very closely (same long prefix).
  EXPECT_GE(links.size(), 3u);
}

TEST_F(LinkerTest, DuplicateCandidatesScoredOnce) {
  std::vector<blocking::CandidatePair> duplicated = {{0, 0}, {0, 0}, {0, 0}};
  const Linker linker(&matcher_, 0.5);
  LinkerStats stats;
  linker.Run(external_, local_, duplicated, &stats);
  EXPECT_EQ(stats.pairs_scored, 1u);
}

TEST_F(LinkerTest, NoCandidatesNoLinks) {
  const Linker linker(&matcher_, 0.5);
  LinkerStats stats;
  EXPECT_TRUE(linker.Run(external_, local_, {}, &stats).empty());
  EXPECT_EQ(stats.pairs_scored, 0u);
  EXPECT_EQ(stats.comparisons, 0u);
}

TEST(EvaluationTest, PerfectLinkage) {
  const std::vector<Link> links = {{0, 0, 1.0}, {1, 1, 0.95}};
  const std::vector<blocking::CandidatePair> gold = {{0, 0}, {1, 1}};
  const auto q = EvaluateLinks(links, gold);
  EXPECT_EQ(q.correct, 2u);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(EvaluationTest, PartialLinkage) {
  const std::vector<Link> links = {{0, 0, 1.0}, {1, 3, 0.9}};
  const std::vector<blocking::CandidatePair> gold = {{0, 0}, {1, 1}, {2, 2}};
  const auto q = EvaluateLinks(links, gold);
  EXPECT_EQ(q.correct, 1u);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_NEAR(q.recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.f1, 2 * 0.5 * (1.0 / 3) / (0.5 + 1.0 / 3), 1e-12);
}

TEST(EvaluationTest, EmptyCases) {
  const auto q = EvaluateLinks({}, {});
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f1, 0.0);
}

// Each empty side alone must also yield exact zeros, never NaN — these
// are the division-by-zero guards, checked one denominator at a time.
TEST(EvaluationTest, EmptyLinksAgainstNonEmptyGold) {
  const std::vector<blocking::CandidatePair> gold = {{0, 0}, {1, 1}};
  const auto q = EvaluateLinks({}, gold);
  EXPECT_EQ(q.emitted, 0u);
  EXPECT_EQ(q.gold, 2u);
  EXPECT_EQ(q.precision, 0.0);
  EXPECT_EQ(q.recall, 0.0);
  EXPECT_EQ(q.f1, 0.0);
  EXPECT_FALSE(std::isnan(q.precision) || std::isnan(q.recall) ||
               std::isnan(q.f1));
}

TEST(EvaluationTest, NonEmptyLinksAgainstEmptyGold) {
  const std::vector<Link> links = {{0, 0, 1.0}};
  const auto q = EvaluateLinks(links, {});
  EXPECT_EQ(q.emitted, 1u);
  EXPECT_EQ(q.gold, 0u);
  EXPECT_EQ(q.correct, 0u);
  EXPECT_EQ(q.precision, 0.0);
  EXPECT_EQ(q.recall, 0.0);
  EXPECT_EQ(q.f1, 0.0);
}

// Duplicate gold pairs count once: the sorted gold vector is deduplicated
// before probing, so recall's denominator is the distinct match count.
TEST(EvaluationTest, DuplicateGoldPairsCountOnce) {
  const std::vector<Link> links = {{0, 0, 1.0}};
  const std::vector<blocking::CandidatePair> gold = {{0, 0}, {0, 0}, {1, 1}};
  const auto q = EvaluateLinks(links, gold);
  EXPECT_EQ(q.gold, 2u);
  EXPECT_EQ(q.correct, 1u);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
}

}  // namespace
}  // namespace rulelink::linking
