#include "blocking/scheme_selector.h"

#include <gtest/gtest.h>

#include "blocking/standard_blocking.h"

namespace rulelink::blocking {
namespace {

// Corpus where a 4-char prefix key is clean (every gold pair shares it)
// but a full-value key fails (provider values differ in their suffix).
class SchemeSelectorTest : public ::testing::Test {
 protected:
  SchemeSelectorTest() {
    for (int i = 0; i < 30; ++i) {
      const std::string core_pn =
          "PN" + std::string(1, static_cast<char>('A' + i % 26)) +
          std::to_string(100 + i);
      core::Item external;
      external.iri = "e" + std::to_string(i);
      external.facts.push_back({"pn", core_pn + "-prov"});
      external_.push_back(std::move(external));
      core::Item local;
      local.iri = "l" + std::to_string(i);
      local.facts.push_back({"pn", core_pn + "-cat"});
      local_.push_back(std::move(local));
      gold_.push_back({static_cast<std::size_t>(i),
                       static_cast<std::size_t>(i)});
    }
  }

  std::vector<core::Item> external_, local_;
  std::vector<CandidatePair> gold_;
};

TEST_F(SchemeSelectorTest, RanksCleanKeyAboveBrokenKey) {
  const StandardBlocker prefix5("pn", 5);   // shared core prefix: works
  const StandardBlocker whole("pn", 0);     // full value: never matches
  const auto scores =
      RankSchemes({&prefix5, &whole}, external_, local_, gold_);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_EQ(scores[0].name, prefix5.name());
  EXPECT_GT(scores[0].score, scores[1].score);
  EXPECT_DOUBLE_EQ(scores[0].quality.pairs_completeness, 1.0);
  EXPECT_DOUBLE_EQ(scores[1].quality.pairs_completeness, 0.0);
}

TEST_F(SchemeSelectorTest, ScoreIsFMeasureOfPcAndRr) {
  const StandardBlocker prefix5("pn", 5);
  const auto scores = RankSchemes({&prefix5}, external_, local_, gold_);
  ASSERT_EQ(scores.size(), 1u);
  const double pc = scores[0].quality.pairs_completeness;
  const double rr = scores[0].quality.reduction_ratio;
  EXPECT_NEAR(scores[0].score, 2 * pc * rr / (pc + rr), 1e-12);
}

TEST_F(SchemeSelectorTest, SampleLimitRestrictsEvaluation) {
  SchemeSelectorOptions options;
  options.sample_limit = 10;
  const StandardBlocker prefix5("pn", 5);
  const auto scores =
      RankSchemes({&prefix5}, external_, local_, gold_, options);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_EQ(scores[0].quality.true_matches, 10u);
  EXPECT_EQ(scores[0].quality.total_pairs, 100u);
}

// Fixed-output generator for controlled quality profiles.
class FakeGenerator : public CandidateGenerator {
 public:
  FakeGenerator(std::string name, std::vector<CandidatePair> pairs)
      : name_(std::move(name)), pairs_(std::move(pairs)) {}
  std::vector<CandidatePair> Generate(
      const std::vector<core::Item>&,
      const std::vector<core::Item>&) const override {
    return pairs_;
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<CandidatePair> pairs_;
};

TEST_F(SchemeSelectorTest, BetaFlipsTheWinner) {
  // loose: all 30 gold pairs + 420 junk pairs (PC 1, RR ~0.5).
  std::vector<CandidatePair> loose_pairs = gold_;
  for (std::size_t e = 0; e < 30 && loose_pairs.size() < 450; ++e) {
    for (std::size_t l = 0; l < 30 && loose_pairs.size() < 450; ++l) {
      if (e != l) loose_pairs.push_back({e, l});
    }
  }
  const FakeGenerator loose("loose", loose_pairs);
  // tight: 15 gold pairs only (PC 0.5, RR ~0.98).
  const FakeGenerator tight(
      "tight", std::vector<CandidatePair>(gold_.begin(), gold_.begin() + 15));

  SchemeSelectorOptions completeness_weighted;
  completeness_weighted.beta = 4.0;
  auto scores = RankSchemes({&tight, &loose}, external_, local_, gold_,
                            completeness_weighted);
  EXPECT_EQ(scores[0].name, "loose");

  SchemeSelectorOptions reduction_weighted;
  reduction_weighted.beta = 0.25;
  scores = RankSchemes({&tight, &loose}, external_, local_, gold_,
                       reduction_weighted);
  EXPECT_EQ(scores[0].name, "tight");
}

TEST_F(SchemeSelectorTest, DefaultPortfolioIsNonTrivial) {
  const auto portfolio = DefaultSchemePortfolio("pn");
  ASSERT_GE(portfolio.size(), 6u);
  std::vector<const CandidateGenerator*> raw;
  for (const auto& generator : portfolio) raw.push_back(generator.get());
  const auto scores = RankSchemes(raw, external_, local_, gold_);
  ASSERT_EQ(scores.size(), portfolio.size());
  // Something in the default portfolio must find every match here.
  EXPECT_DOUBLE_EQ(scores[0].quality.pairs_completeness, 1.0);
}

}  // namespace
}  // namespace rulelink::blocking
