#include "util/string_util.h"

#include <gtest/gtest.h>

namespace rulelink::util {
namespace {

TEST(SplitAnyTest, SplitsOnAnySeparator) {
  const auto pieces = SplitAny("a-b.c d", "-. ");
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
  EXPECT_EQ(pieces[3], "d");
}

TEST(SplitAnyTest, DropsEmptyPieces) {
  const auto pieces = SplitAny("--a--b--", "-");
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(SplitAnyTest, EmptyInputYieldsNothing) {
  EXPECT_TRUE(SplitAny("", "-").empty());
  EXPECT_TRUE(SplitAny("---", "-").empty());
}

TEST(SplitAnyTest, NoSeparatorsYieldsWhole) {
  const auto pieces = SplitAny("abc", "-");
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(SplitTest, KeepsEmptyPieces) {
  const auto pieces = Split("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(Join(std::vector<std::string>{"solo"}, ","), "solo");
}

TEST(StripTest, StripsWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace(" \t "), "");
}

TEST(CaseTest, AsciiConversionsAreLocaleIndependent) {
  EXPECT_EQ(AsciiToLower("CRCW0805-Ohm"), "crcw0805-ohm");
  EXPECT_EQ(AsciiToUpper("crcw0805-ohm"), "CRCW0805-OHM");
}

TEST(AffixTest, StartsAndEndsWith) {
  EXPECT_TRUE(StartsWith("CRCW0805", "CRCW"));
  EXPECT_FALSE(StartsWith("CR", "CRCW"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("nt", ".nt"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(CharClassTest, AlnumDigitsAlpha) {
  EXPECT_TRUE(IsAsciiAlnum('a'));
  EXPECT_TRUE(IsAsciiAlnum('Z'));
  EXPECT_TRUE(IsAsciiAlnum('5'));
  EXPECT_FALSE(IsAsciiAlnum('-'));
  EXPECT_FALSE(IsAsciiAlnum(' '));
  EXPECT_TRUE(IsAsciiDigit('0'));
  EXPECT_FALSE(IsAsciiDigit('a'));
  EXPECT_TRUE(IsAsciiAlpha('q'));
  EXPECT_FALSE(IsAsciiAlpha('9'));
}

TEST(ReplaceAllTest, ReplacesEveryOccurrence) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // no overlap rescan
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");   // empty pattern: no-op
  EXPECT_EQ(ReplaceAll("", "a", "b"), "");
}

TEST(FormatTest, Doubles) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(FormatPercent(0.969), "96.9%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.12345, 2), "12.35%");
}

TEST(ParseUint64Test, ParsesValidNumbers) {
  unsigned long long v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0ull);
  EXPECT_TRUE(ParseUint64("10265", &v));
  EXPECT_EQ(v, 10265ull);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // 2^64-1
  EXPECT_EQ(v, 18446744073709551615ull);
}

TEST(ParseUint64Test, RejectsInvalid) {
  unsigned long long v = 0;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // 2^64 overflows
}

}  // namespace
}  // namespace rulelink::util
