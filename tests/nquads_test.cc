#include "rdf/nquads.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rulelink::rdf {
namespace {

TEST(NQuadsTest, DefaultAndNamedGraphs) {
  Dataset dataset;
  const auto status = ParseNQuads(
      "<http://a> <http://p> <http://b> .\n"
      "<http://a> <http://p> <http://c> <http://g1> .\n"
      "<http://a> <http://p> <http://d> <http://g2> .\n"
      "<http://a> <http://q> <http://e> <http://g1> .\n",
      &dataset);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(dataset.TotalTriples(), 4u);
  ASSERT_TRUE(dataset.HasGraph(""));
  ASSERT_TRUE(dataset.HasGraph("http://g1"));
  ASSERT_TRUE(dataset.HasGraph("http://g2"));
  EXPECT_EQ(dataset.FindGraph("")->size(), 1u);
  EXPECT_EQ(dataset.FindGraph("http://g1")->size(), 2u);
  EXPECT_EQ(dataset.FindGraph("http://g2")->size(), 1u);
  EXPECT_EQ(dataset.FindGraph("http://nope"), nullptr);
}

TEST(NQuadsTest, LiteralObjectsWithGraph) {
  Dataset dataset;
  const auto status = ParseNQuads(
      "<http://a> <http://p> \"v1\"@en <http://g> .\n"
      "<http://a> <http://p> \"42\"^^<http://dt> <http://g> .\n",
      &dataset);
  ASSERT_TRUE(status.ok()) << status;
  const Graph* g = dataset.FindGraph("http://g");
  ASSERT_NE(g, nullptr);
  EXPECT_NE(g->dict().Find(Term::LangLiteral("v1", "en")), kInvalidTermId);
  EXPECT_NE(g->dict().Find(Term::TypedLiteral("42", "http://dt")),
            kInvalidTermId);
}

TEST(NQuadsTest, ProvenanceScenario) {
  // One named graph per provider delivery of validated links (§3).
  Dataset dataset;
  const auto status = ParseNQuads(
      "<http://p/d1> <http://www.w3.org/2002/07/owl#sameAs> <http://c/1> "
      "<http://deliveries/2026-01> .\n"
      "<http://p/d2> <http://www.w3.org/2002/07/owl#sameAs> <http://c/2> "
      "<http://deliveries/2026-02> .\n",
      &dataset);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(dataset.GraphNames().size(), 2u);
  // Merging drops provenance but yields the full training link set.
  const Graph merged = dataset.Merged();
  EXPECT_EQ(merged.size(), 2u);
  const TermId sameas = merged.dict().FindIri(vocab::kOwlSameAs);
  EXPECT_EQ(merged.CountMatches(
                TriplePattern{kInvalidTermId, sameas, kInvalidTermId}),
            2u);
}

TEST(NQuadsTest, RoundTrip) {
  Dataset dataset;
  dataset.DefaultGraph().InsertIri("http://s", "http://p", "http://o");
  dataset.NamedGraph("http://g").Insert(
      Term::Iri("http://s"), Term::Iri("http://p"),
      Term::Literal("with \"quotes\" and\nnewline"));
  const std::string serialized = WriteNQuads(dataset);

  Dataset parsed;
  ASSERT_TRUE(ParseNQuads(serialized, &parsed).ok());
  EXPECT_EQ(parsed.TotalTriples(), 2u);
  EXPECT_EQ(parsed.FindGraph("")->size(), 1u);
  ASSERT_NE(parsed.FindGraph("http://g"), nullptr);
  EXPECT_NE(parsed.FindGraph("http://g")->dict().Find(
                Term::Literal("with \"quotes\" and\nnewline")),
            kInvalidTermId);
}

TEST(NQuadsTest, NTriplesContentIsValidNQuads) {
  Dataset dataset;
  ASSERT_TRUE(ParseNQuads(
                  "# comment\n"
                  "<http://a> <http://p> \"plain\" .\n",
                  &dataset)
                  .ok());
  EXPECT_EQ(dataset.FindGraph("")->size(), 1u);
}

TEST(NQuadsTest, Errors) {
  Dataset dataset;
  // Literal graph label.
  EXPECT_FALSE(
      ParseNQuads("<http://a> <http://p> <http://b> \"g\" .\n", &dataset)
          .ok());
  // Blank-node graph labels are IRIs-only in this implementation.
  EXPECT_FALSE(
      ParseNQuads("<http://a> <http://p> <http://b> _:g .\n", &dataset)
          .ok());
  // Missing dot.
  EXPECT_FALSE(
      ParseNQuads("<http://a> <http://p> <http://b> <http://g>\n", &dataset)
          .ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseNQuads(
                   "<http://a> <http://p> <http://b> <http://g> . x\n",
                   &dataset)
                   .ok());
  // Literal subject.
  EXPECT_FALSE(
      ParseNQuads("\"s\" <http://p> <http://b> .\n", &dataset).ok());
}

TEST(NQuadsTest, MissingFile) {
  Dataset dataset;
  EXPECT_EQ(ParseNQuadsFile("/nonexistent.nq", &dataset).code(),
            util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace rulelink::rdf
