#include "rdf/term.h"

#include <gtest/gtest.h>

namespace rulelink::rdf {
namespace {

TEST(TermTest, IriFactory) {
  const Term t = Term::Iri("http://example.org/a");
  EXPECT_TRUE(t.is_iri());
  EXPECT_FALSE(t.is_literal());
  EXPECT_FALSE(t.is_blank());
  EXPECT_EQ(t.lexical(), "http://example.org/a");
  EXPECT_EQ(t.ToNTriples(), "<http://example.org/a>");
}

TEST(TermTest, PlainLiteral) {
  const Term t = Term::Literal("hello");
  EXPECT_TRUE(t.is_literal());
  EXPECT_EQ(t.ToNTriples(), "\"hello\"");
  EXPECT_TRUE(t.datatype().empty());
  EXPECT_TRUE(t.language().empty());
}

TEST(TermTest, TypedLiteral) {
  const Term t = Term::TypedLiteral(
      "42", "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(t.ToNTriples(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(TermTest, LangLiteral) {
  const Term t = Term::LangLiteral("bonjour", "fr");
  EXPECT_EQ(t.ToNTriples(), "\"bonjour\"@fr");
}

TEST(TermTest, BlankNode) {
  const Term t = Term::BlankNode("b0");
  EXPECT_TRUE(t.is_blank());
  EXPECT_EQ(t.ToNTriples(), "_:b0");
}

TEST(TermTest, LiteralEscaping) {
  const Term t = Term::Literal("a\"b\\c\nd\te\rf");
  EXPECT_EQ(t.ToNTriples(), "\"a\\\"b\\\\c\\nd\\te\\rf\"");
}

TEST(TermTest, EqualityDistinguishesKindAndFields) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_NE(Term::Iri("x"), Term::Literal("x"));
  EXPECT_NE(Term::Iri("x"), Term::BlankNode("x"));
  EXPECT_NE(Term::Literal("x"), Term::LangLiteral("x", "en"));
  EXPECT_NE(Term::TypedLiteral("x", "dt1"), Term::TypedLiteral("x", "dt2"));
}

TEST(TermTest, OrderingIsTotalByKindThenFields) {
  EXPECT_LT(Term::Iri("a"), Term::Iri("b"));
  EXPECT_LT(Term::Iri("z"), Term::Literal("a"));       // kIri < kLiteral
  EXPECT_LT(Term::Literal("z"), Term::BlankNode("a"));  // kLiteral < kBlank
}

TEST(TermTest, HashConsistentWithEquality) {
  EXPECT_EQ(Term::Iri("a").Hash(), Term::Iri("a").Hash());
  EXPECT_NE(Term::Iri("a").Hash(), Term::Literal("a").Hash());
}

TEST(EscapeTest, PassesThroughPlainText) {
  EXPECT_EQ(EscapeNTriplesString("CRCW0805-10K"), "CRCW0805-10K");
}

}  // namespace
}  // namespace rulelink::rdf
