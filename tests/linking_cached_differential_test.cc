// Differential tests for the cached linking pipeline: Linker::RunCached
// over precomputed feature caches must be byte-identical to the preserved
// string-path Linker::Run — same links, same order, same scores, same
// LinkerStats — over generated corpora, at every thread count, for both
// strategies, and whether the candidates arrive sorted (the streaming
// path) or unsorted (the sort/dedup path). This is the acceptance bar for
// the feature-cache tentpole: caching changes where the string work
// happens, never the output.
#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/rule_blocker.h"
#include "blocking/standard_blocking.h"
#include "core/learner.h"
#include "datagen/generator.h"
#include "linking/evaluation.h"
#include "linking/feature_cache.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "text/segmenter.h"
#include "util/logging.h"

namespace rulelink {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr double kThreshold = 0.6;

datagen::DatasetConfig DifferentialConfig(std::uint64_t seed) {
  datagen::DatasetConfig config;
  config.seed = seed;
  config.num_classes = 50;
  config.num_leaves = 20;
  config.catalog_size = 700;
  config.num_links = 320;
  config.num_signal_classes = 5;
  config.num_other_frequent_classes = 5;
  config.signal_class_min_links = 20;
  config.signal_class_max_links = 40;
  config.frequent_class_min_links = 6;
  config.frequent_class_max_links = 11;
  config.tail_class_cap_links = 4;
  return config;
}

const datagen::Dataset& GetCorpus(std::uint64_t seed) {
  static std::map<std::uint64_t, std::unique_ptr<datagen::Dataset>>* cache =
      new std::map<std::uint64_t, std::unique_ptr<datagen::Dataset>>();
  auto it = cache->find(seed);
  if (it == cache->end()) {
    auto dataset =
        datagen::DatasetGenerator(DifferentialConfig(seed)).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    it = cache
             ->emplace(seed, std::make_unique<datagen::Dataset>(
                                 std::move(dataset).value()))
             .first;
  }
  return *it->second;
}

// A matcher that exercises every cached code path at once: token
// sort-merge measures and character measures on the part number, exact
// and Monge-Elkan (ordered float summation) on the manufacturer, where
// values repeat across the catalog and feed the memo.
linking::ItemMatcher MixedMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaroWinkler, 3.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kExact, 0.5},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 0.5},
  });
}

// Gold pairs plus pseudo-random distractors, unsorted, with every third
// pair duplicated — exercises RunCached's sort/dedup entrance.
std::vector<blocking::CandidatePair> UnsortedCandidates(
    const datagen::Dataset& dataset) {
  const std::size_t num_catalog = dataset.catalog_items.size();
  std::vector<blocking::CandidatePair> candidates;
  for (const datagen::GoldLink& link : dataset.links) {
    candidates.push_back({link.external_index, link.catalog_index});
  }
  for (std::size_t e = 0; e < dataset.external_items.size(); ++e) {
    candidates.push_back({e, (e * 7 + 3) % num_catalog});
    candidates.push_back({e, (e * 13 + 11) % num_catalog});
    if (e % 3 == 0) candidates.push_back({e, (e * 7 + 3) % num_catalog});
  }
  return candidates;
}

struct Caches {
  linking::FeatureDictionary dict;
  linking::FeatureCache external;
  linking::FeatureCache local;

  Caches(const datagen::Dataset& dataset,
         const linking::ItemMatcher& matcher, std::size_t num_threads) {
    external = linking::FeatureCache::Build(
        dataset.external_items, matcher,
        linking::FeatureCache::Side::kExternal, &dict, num_threads);
    local = linking::FeatureCache::Build(
        dataset.catalog_items, matcher, linking::FeatureCache::Side::kLocal,
        &dict, num_threads);
  }
};

void ExpectLinksIdentical(const std::vector<linking::Link>& actual,
                          const std::vector<linking::Link>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].external_index, expected[i].external_index) << i;
    EXPECT_EQ(actual[i].local_index, expected[i].local_index) << i;
    // Bit-identical scores, not approximately equal.
    EXPECT_EQ(actual[i].score, expected[i].score) << i;
  }
}

class CachedLinkingDifferential
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  const datagen::Dataset& corpus() const { return GetCorpus(GetParam()); }
};

TEST_P(CachedLinkingDifferential, RunCachedMatchesRunAtEveryThreadCount) {
  const datagen::Dataset& dataset = corpus();
  const linking::ItemMatcher matcher = MixedMatcher();
  const auto candidates = UnsortedCandidates(dataset);

  for (linking::Linker::Strategy strategy :
       {linking::Linker::Strategy::kBestPerExternal,
        linking::Linker::Strategy::kAllAboveThreshold}) {
    const linking::Linker linker(&matcher, kThreshold, strategy);
    linking::LinkerStats ref_stats;
    const auto reference =
        linker.Run(dataset.external_items, dataset.catalog_items, candidates,
                   &ref_stats, /*num_threads=*/1);
    ASSERT_GT(reference.size(), 0u);

    for (std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(threads);
      // The caches are rebuilt per thread count on purpose: id numbering
      // differs across builds, the links must not.
      const Caches caches(dataset, matcher, threads);
      linking::LinkerStats stats;
      linking::ScoreMemoStats memo;
      const auto cached = linker.RunCached(caches.external, caches.local,
                                           candidates, &stats, threads,
                                           &memo);
      ExpectLinksIdentical(cached, reference);
      EXPECT_EQ(stats.pairs_scored, ref_stats.pairs_scored);
      // Memo hits are replays, not computations, so the cached path runs
      // at most as many kernels as the string path.
      EXPECT_GT(stats.comparisons, 0u);
      EXPECT_LE(stats.comparisons, ref_stats.comparisons);
      EXPECT_EQ(stats.links_emitted, ref_stats.links_emitted);
      EXPECT_GT(memo.lookups, 0u);
      EXPECT_LE(memo.hits, memo.lookups);
    }
  }
}

TEST_P(CachedLinkingDifferential, SortedCandidatesStreamWithoutACopy) {
  const datagen::Dataset& dataset = corpus();
  const linking::ItemMatcher matcher = MixedMatcher();
  auto candidates = UnsortedCandidates(dataset);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const linking::Linker linker(&matcher, kThreshold);
  linking::LinkerStats ref_stats;
  const auto reference =
      linker.Run(dataset.external_items, dataset.catalog_items, candidates,
                 &ref_stats, /*num_threads=*/1);
  const Caches caches(dataset, matcher, /*num_threads=*/1);
  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    linking::LinkerStats stats;
    const auto cached = linker.RunCached(caches.external, caches.local,
                                         candidates, &stats, threads);
    ExpectLinksIdentical(cached, reference);
    EXPECT_EQ(stats.pairs_scored, ref_stats.pairs_scored);
    EXPECT_LE(stats.comparisons, ref_stats.comparisons);
    EXPECT_EQ(stats.links_emitted, ref_stats.links_emitted);
  }
}

TEST_P(CachedLinkingDifferential, PipelineMatchesManualGenerateAndRun) {
  const datagen::Dataset& dataset = corpus();
  const linking::ItemMatcher matcher = MixedMatcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/3);

  const auto candidates =
      blocker.Generate(dataset.external_items, dataset.catalog_items);
  ASSERT_GT(candidates.size(), 0u);
  const linking::Linker linker(&matcher, kThreshold);
  linking::LinkerStats ref_stats;
  const auto reference =
      linker.Run(dataset.external_items, dataset.catalog_items, candidates,
                 &ref_stats, /*num_threads=*/1);

  std::vector<blocking::CandidatePair> gold;
  for (const datagen::GoldLink& link : dataset.links) {
    gold.push_back({link.external_index, link.catalog_index});
  }

  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    const auto result = linking::RunCachedLinkagePipeline(
        dataset.external_items, dataset.catalog_items, blocker, matcher,
        kThreshold, linking::Linker::Strategy::kBestPerExternal, &gold,
        threads);
    ExpectLinksIdentical(result.links, reference);
    EXPECT_EQ(result.stats.pairs_scored, ref_stats.pairs_scored);
    EXPECT_LE(result.stats.comparisons, ref_stats.comparisons);
    EXPECT_EQ(result.stats.links_emitted, ref_stats.links_emitted);
    EXPECT_EQ(result.num_candidates, candidates.size());
    EXPECT_GT(result.distinct_values, 0u);
    EXPECT_GE(result.dictionary_symbols, result.distinct_values);
    EXPECT_GT(result.dictionary_bytes, 0u);
    // The quality numbers come from the same links, so they match the
    // manual evaluation exactly.
    const auto ref_quality = linking::EvaluateLinks(reference, gold);
    EXPECT_EQ(result.quality.correct, ref_quality.correct);
    EXPECT_EQ(result.quality.precision, ref_quality.precision);
    EXPECT_EQ(result.quality.recall, ref_quality.recall);
    EXPECT_EQ(result.quality.f1, ref_quality.f1);
  }
}

TEST_P(CachedLinkingDifferential, PipelineMatchesOverRuleBlocker) {
  const datagen::Dataset& dataset = corpus();
  const core::TrainingSet ts = datagen::BuildTrainingSet(dataset);
  const text::SeparatorSegmenter segmenter;

  core::LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter;
  options.num_threads = 1;
  auto rules = core::RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok()) << rules.status();
  const core::RuleClassifier classifier(&*rules, &segmenter);
  const blocking::RuleBlocker blocker(&classifier, &dataset.ontology(),
                                      &dataset.catalog_classes,
                                      /*min_confidence=*/0.4);

  const linking::ItemMatcher matcher = MixedMatcher();
  const auto candidates =
      blocker.Generate(dataset.external_items, dataset.catalog_items);
  ASSERT_GT(candidates.size(), 0u);
  const linking::Linker linker(&matcher, kThreshold);
  const auto reference =
      linker.Run(dataset.external_items, dataset.catalog_items, candidates,
                 nullptr, /*num_threads=*/1);

  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    const auto result = linking::RunCachedLinkagePipeline(
        dataset.external_items, dataset.catalog_items, blocker, matcher,
        kThreshold, linking::Linker::Strategy::kBestPerExternal,
        /*gold=*/nullptr, threads);
    ExpectLinksIdentical(result.links, reference);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedLinkingDifferential,
                         ::testing::Values(23, 509, 8089));

}  // namespace
}  // namespace rulelink
