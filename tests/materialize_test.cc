#include "ontology/materialize.h"

#include <gtest/gtest.h>

#include "rdf/turtle.h"
#include "rdf/vocab.h"

namespace rulelink::ontology {
namespace {

class MaterializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto status = rdf::ParseTurtle(
        "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
        "@prefix ex: <http://e/> .\n"
        "ex:B rdfs:subClassOf ex:A .\n"
        "ex:C rdfs:subClassOf ex:B .\n"
        "ex:i1 a ex:C .\n"
        "ex:i2 a ex:B .\n"
        "ex:i3 a ex:Unknown .\n",
        &graph_);
    ASSERT_TRUE(status.ok()) << status;
    auto onto_or = Ontology::FromGraph(graph_);
    ASSERT_TRUE(onto_or.ok());
    onto_ = std::move(onto_or).value();
  }

  std::size_t TypeCount(const std::string& instance,
                        const std::string& cls) {
    const rdf::TermId s = graph_.dict().FindIri(instance);
    const rdf::TermId p = graph_.dict().FindIri(rdf::vocab::kRdfType);
    const rdf::TermId o = graph_.dict().FindIri(cls);
    if (s == rdf::kInvalidTermId || o == rdf::kInvalidTermId) return 0;
    return graph_.CountMatches(rdf::TriplePattern{s, p, o});
  }

  rdf::Graph graph_;
  Ontology onto_;
};

TEST_F(MaterializeTest, AddsEntailedTypes) {
  // i1: C -> +B +A; i2: B -> +A. Unknown class: nothing.
  const std::size_t added = MaterializeTypes(onto_, &graph_);
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(TypeCount("http://e/i1", "http://e/B"), 1u);
  EXPECT_EQ(TypeCount("http://e/i1", "http://e/A"), 1u);
  EXPECT_EQ(TypeCount("http://e/i2", "http://e/A"), 1u);
  EXPECT_EQ(TypeCount("http://e/i3", "http://e/A"), 0u);
}

TEST_F(MaterializeTest, Idempotent) {
  MaterializeTypes(onto_, &graph_);
  const std::size_t size = graph_.size();
  EXPECT_EQ(MaterializeTypes(onto_, &graph_), 0u);
  EXPECT_EQ(graph_.size(), size);
}

TEST_F(MaterializeTest, PlainMatchingSeesTransitiveExtent) {
  MaterializeTypes(onto_, &graph_);
  const rdf::TermId type_id =
      graph_.dict().FindIri(rdf::vocab::kRdfType);
  const rdf::TermId a_id = graph_.dict().FindIri("http://e/A");
  // Both i1 and i2 are now direct instances of A.
  EXPECT_EQ(graph_.CountMatches(
                rdf::TriplePattern{rdf::kInvalidTermId, type_id, a_id}),
            2u);
}

TEST_F(MaterializeTest, GraphWithoutTypesIsNoOp) {
  rdf::Graph empty;
  empty.InsertIri("http://s", "http://p", "http://o");
  EXPECT_EQ(MaterializeTypes(onto_, &empty), 0u);
}

}  // namespace
}  // namespace rulelink::ontology
