#include "eval/report.h"

#include <gtest/gtest.h>

namespace rulelink::eval {
namespace {

TEST(FormatLearnStatsTest, IncludesEveryStatistic) {
  core::LearnStats stats;
  stats.num_examples = 10265;
  stats.distinct_segments = 7842;
  stats.segment_occurrences = 26077;
  stats.selected_segment_occurrences = 7058;
  stats.frequent_premises = 108;
  stats.frequent_classes = 68;
  stats.num_rules = 144;
  stats.classes_with_rules = 16;
  const std::string out = FormatLearnStats(stats, true);
  for (const char* expected :
       {"10265", "7842", "26077", "7058", "108", "68", "144", "16"}) {
    EXPECT_NE(out.find(expected), std::string::npos) << expected;
  }
  EXPECT_NE(out.find("paper"), std::string::npos);
  // Without the reference column there is no "paper" header.
  EXPECT_EQ(FormatLearnStats(stats, false).find("paper"),
            std::string::npos);
}

TEST(FormatLinkingSpaceTest, ReportsReductionAndDivisionFactor) {
  core::LinkingSpaceReport report;
  report.num_external_items = 100;
  report.local_size = 1000;
  report.naive_pairs = 100000;
  report.reduced_pairs = 5000;
  report.classified_items = 80;
  report.unclassified_items = 20;
  report.reduction_ratio = 0.95;
  report.mean_subspace_fraction = 0.05;
  const std::string out = FormatLinkingSpace(report);
  EXPECT_NE(out.find("95.0%"), std::string::npos);
  EXPECT_NE(out.find("20.0x"), std::string::npos);  // 1 / 0.05
  EXPECT_NE(out.find("100000"), std::string::npos);
}

TEST(FormatLinkingSpaceTest, OmitsDivisionFactorWhenUnclassifiedOnly) {
  core::LinkingSpaceReport report;  // mean_subspace_fraction = 0
  const std::string out = FormatLinkingSpace(report);
  EXPECT_EQ(out.find("division factor"), std::string::npos);
}

TEST(FormatBlockingQualityTest, OneLineSummary) {
  blocking::BlockingQuality quality;
  quality.candidate_pairs = 1234;
  quality.reduction_ratio = 0.9987;
  quality.pairs_completeness = 0.931;
  quality.pairs_quality = 0.0452;
  const std::string out =
      FormatBlockingQuality("standard(pn,5)", quality, 0.125);
  EXPECT_NE(out.find("standard(pn,5)"), std::string::npos);
  EXPECT_NE(out.find("candidates=1234"), std::string::npos);
  EXPECT_NE(out.find("RR=99.87%"), std::string::npos);
  EXPECT_NE(out.find("PC=93.1%"), std::string::npos);
  EXPECT_NE(out.find("time=0.125s"), std::string::npos);
}

}  // namespace
}  // namespace rulelink::eval
