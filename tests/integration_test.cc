// End-to-end integration tests: the full RDF-path pipeline on a small
// synthetic corpus — RDF projection, ontology loading, instance indexing,
// training-set construction from owl:sameAs links, rule learning,
// classification, linking-space reduction, and the blocking/linking stack
// on top — with cross-representation consistency checks.
#include <algorithm>
#include <memory>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "blocking/metrics.h"
#include "blocking/rule_blocker.h"
#include "core/classifier.h"
#include "core/learner.h"
#include "core/linking_space.h"
#include "datagen/generator.h"
#include "eval/table1.h"
#include "linking/evaluation.h"
#include "linking/linker.h"
#include "ontology/instance_index.h"
#include "text/segmenter.h"
#include "util/logging.h"

namespace rulelink {
namespace {

datagen::DatasetConfig TestConfig() {
  datagen::DatasetConfig config;
  config.seed = 17;
  config.num_classes = 80;
  config.num_leaves = 32;
  config.catalog_size = 2500;
  config.num_links = 1000;
  config.num_signal_classes = 8;
  config.num_other_frequent_classes = 10;
  config.signal_class_min_links = 50;
  config.signal_class_max_links = 90;
  config.frequent_class_min_links = 12;
  config.frequent_class_max_links = 20;
  config.tail_class_cap_links = 8;
  return config;
}

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto dataset_or = datagen::DatasetGenerator(TestConfig()).Generate();
    RL_CHECK(dataset_or.ok()) << dataset_or.status();
    dataset_ = new datagen::Dataset(std::move(dataset_or).value());
    local_graph_ = new rdf::Graph(datagen::BuildLocalGraph(*dataset_));
    external_graph_ = new rdf::Graph(datagen::BuildExternalGraph(*dataset_));
    links_graph_ = new rdf::Graph(datagen::BuildLinksGraph(*dataset_));
  }

  static void TearDownTestSuite() {
    delete links_graph_;
    delete external_graph_;
    delete local_graph_;
    delete dataset_;
    links_graph_ = nullptr;
    external_graph_ = nullptr;
    local_graph_ = nullptr;
    dataset_ = nullptr;
  }

  static datagen::Dataset* dataset_;
  static rdf::Graph* local_graph_;
  static rdf::Graph* external_graph_;
  static rdf::Graph* links_graph_;
};

datagen::Dataset* IntegrationTest::dataset_ = nullptr;
rdf::Graph* IntegrationTest::local_graph_ = nullptr;
rdf::Graph* IntegrationTest::external_graph_ = nullptr;
rdf::Graph* IntegrationTest::links_graph_ = nullptr;

TEST_F(IntegrationTest, OntologyRoundTripsThroughRdf) {
  auto onto_or = ontology::Ontology::FromGraph(*local_graph_);
  ASSERT_TRUE(onto_or.ok()) << onto_or.status();
  EXPECT_EQ(onto_or->num_classes(), dataset_->ontology().num_classes());
  EXPECT_EQ(onto_or->Leaves().size(),
            dataset_->ontology().Leaves().size());
  EXPECT_EQ(onto_or->MaxDepth(), dataset_->ontology().MaxDepth());
}

TEST_F(IntegrationTest, TrainingSetsAgreeAcrossRepresentations) {
  // Direct path.
  const core::TrainingSet direct = datagen::BuildTrainingSet(*dataset_);
  // RDF path.
  auto onto_or = ontology::Ontology::FromGraph(*local_graph_);
  ASSERT_TRUE(onto_or.ok());
  const auto index =
      ontology::InstanceIndex::Build(*local_graph_, *onto_or);
  std::size_t skipped = 0;
  auto rdf_ts = core::TrainingSet::FromGraphs(*external_graph_,
                                              *links_graph_, index, &skipped);
  ASSERT_TRUE(rdf_ts.ok()) << rdf_ts.status();
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(rdf_ts->size(), direct.size());

  // Same rules learnt on both (modulo class-id renaming, so compare by
  // (segment, class IRI, counts)).
  const text::SeparatorSegmenter segmenter;
  core::LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter;
  options.properties = {datagen::props::kPartNumber};
  auto direct_rules = core::RuleLearner(options).Learn(direct);
  auto rdf_rules = core::RuleLearner(options).Learn(*rdf_ts);
  ASSERT_TRUE(direct_rules.ok());
  ASSERT_TRUE(rdf_rules.ok());
  ASSERT_EQ(direct_rules->size(), rdf_rules->size());

  std::set<std::tuple<std::string, std::string, std::size_t, std::size_t>>
      direct_set, rdf_set;
  for (const auto& rule : direct_rules->rules()) {
    direct_set.insert({std::string(direct_rules->segment_text(rule)),
                       dataset_->ontology().iri(rule.cls),
                       rule.counts.premise_count, rule.counts.joint_count});
  }
  for (const auto& rule : rdf_rules->rules()) {
    rdf_set.insert({std::string(rdf_rules->segment_text(rule)),
                    onto_or->iri(rule.cls),
                    rule.counts.premise_count, rule.counts.joint_count});
  }
  EXPECT_EQ(direct_set, rdf_set);
}

TEST_F(IntegrationTest, ConfidenceOneRulesArePerfectOnTrainingSet) {
  const core::TrainingSet ts = datagen::BuildTrainingSet(*dataset_);
  const text::SeparatorSegmenter segmenter;
  core::LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter;
  auto rules = core::RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok());
  ASSERT_GT(rules->size(), 0u);

  const core::RuleClassifier classifier(&*rules, &segmenter);
  std::size_t checked = 0;
  for (const auto& example : ts.examples()) {
    core::Item item;
    item.iri = example.external_iri;
    for (const auto& [property, value] : example.facts) {
      item.facts.push_back(
          core::PropertyValue{ts.properties().name(property), value});
    }
    for (const auto& prediction : classifier.Classify(item, 1.0)) {
      // A confidence-1 rule can never misclassify a training item.
      EXPECT_NE(std::find(example.classes.begin(), example.classes.end(),
                          prediction.cls),
                example.classes.end());
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST_F(IntegrationTest, RuleBlockerNeverMissesWhatItPromises) {
  // Pairs produced by the rule blocker at min_confidence=1.0 must connect
  // each classified external item only to local items of the predicted
  // classes, and every gold match it finds must agree with the gold class.
  const core::TrainingSet ts = datagen::BuildTrainingSet(*dataset_);
  const text::SeparatorSegmenter segmenter;
  core::LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter;
  options.properties = {datagen::props::kPartNumber};
  auto rules = core::RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok());
  const core::RuleClassifier classifier(&*rules, &segmenter);
  const blocking::RuleBlocker blocker(&classifier, &dataset_->ontology(),
                                      &dataset_->catalog_classes, 1.0);
  const auto pairs =
      blocker.Generate(dataset_->external_items, dataset_->catalog_items);

  std::vector<blocking::CandidatePair> gold;
  for (const auto& link : dataset_->links) {
    gold.push_back({link.external_index, link.catalog_index});
  }
  const auto quality = blocking::EvaluateBlocking(
      pairs, gold, dataset_->external_items.size(),
      dataset_->catalog_items.size());
  // Candidate pairs only within predicted classes: massive reduction.
  EXPECT_GT(quality.reduction_ratio, 0.8);
  // At confidence 1 every proposed gold pair is genuinely reachable; the
  // found matches must be a decent share of the signal-class links.
  EXPECT_GT(quality.matches_found, 0u);
}

TEST_F(IntegrationTest, LinkingSpaceReductionIsReal) {
  const core::TrainingSet ts = datagen::BuildTrainingSet(*dataset_);
  const text::SeparatorSegmenter segmenter;
  core::LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter;
  auto rules = core::RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok());

  auto onto_or = ontology::Ontology::FromGraph(*local_graph_);
  ASSERT_TRUE(onto_or.ok());
  const auto index =
      ontology::InstanceIndex::Build(*local_graph_, *onto_or);

  // The RDF-path ontology has its own class ids; relearn on the RDF ts so
  // ids line up with the index.
  std::size_t skipped = 0;
  auto rdf_ts = core::TrainingSet::FromGraphs(*external_graph_,
                                              *links_graph_, index, &skipped);
  ASSERT_TRUE(rdf_ts.ok());
  auto rdf_rules = core::RuleLearner(options).Learn(*rdf_ts);
  ASSERT_TRUE(rdf_rules.ok());

  const core::RuleClassifier classifier(&*rdf_rules, &segmenter);
  const core::LinkingSpaceAnalyzer analyzer(&classifier, &index);
  const auto report = analyzer.Analyze(dataset_->external_items, 0.4,
                                       core::UnclassifiedPolicy::kSkip);
  EXPECT_GT(report.classified_items, 0u);
  EXPECT_LT(report.reduced_pairs, report.naive_pairs);
  EXPECT_GT(report.reduction_ratio, 0.5);
  // Subspaces are never larger than the local source.
  EXPECT_LE(report.mean_subspace_fraction, 1.0);
}

TEST_F(IntegrationTest, EndToEndLinkageThroughRuleBlocking) {
  const core::TrainingSet ts = datagen::BuildTrainingSet(*dataset_);
  const text::SeparatorSegmenter segmenter;
  core::LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter;
  options.properties = {datagen::props::kPartNumber};
  auto rules = core::RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok());
  const core::RuleClassifier classifier(&*rules, &segmenter);
  const blocking::RuleBlocker blocker(&classifier, &dataset_->ontology(),
                                      &dataset_->catalog_classes, 0.4);
  const auto candidates =
      blocker.Generate(dataset_->external_items, dataset_->catalog_items);

  const linking::ItemMatcher matcher(
      {{datagen::props::kPartNumber, datagen::props::kPartNumber,
        linking::SimilarityMeasure::kJaroWinkler, 3.0},
       {datagen::props::kManufacturer, datagen::props::kManufacturer,
        linking::SimilarityMeasure::kExact, 1.0}});
  const linking::Linker linker(&matcher, 0.9);
  const auto links = linker.Run(dataset_->external_items,
                                dataset_->catalog_items, candidates);

  std::vector<blocking::CandidatePair> gold;
  for (const auto& link : dataset_->links) {
    gold.push_back({link.external_index, link.catalog_index});
  }
  const auto quality = linking::EvaluateLinks(links, gold);
  // The linker compares only within predicted classes, so precision must
  // be high; recall is bounded by the rules' coverage.
  EXPECT_GT(quality.precision, 0.9);
  EXPECT_GT(quality.recall, 0.1);
}

TEST_F(IntegrationTest, Table1ShapeHoldsOnSmallCorpus) {
  const core::TrainingSet ts = datagen::BuildTrainingSet(*dataset_);
  const text::SeparatorSegmenter segmenter;
  core::LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter;
  auto rules = core::RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok());
  const eval::Table1Evaluator evaluator(&*rules, &segmenter, 0.01);
  const auto result = evaluator.Evaluate(ts);
  ASSERT_EQ(result.rows.size(), 4u);
  // Confidence-1 decisions are perfect.
  EXPECT_DOUBLE_EQ(result.rows[0].precision_band, 1.0);
  // Cumulative precision decreases, cumulative recall increases.
  for (std::size_t b = 1; b < result.rows.size(); ++b) {
    EXPECT_LE(result.rows[b].precision_cumulative,
              result.rows[b - 1].precision_cumulative + 1e-12);
    EXPECT_GE(result.rows[b].recall_cumulative,
              result.rows[b - 1].recall_cumulative - 1e-12);
  }
}

}  // namespace
}  // namespace rulelink
