// Differential tests for the parallel execution layer: every parallel
// entry point (Learn, ClassifyBatch, Linker::Run, Table1, linking-space
// Analyze) must produce output identical to the serial path — same values,
// same ordering, bit-identical doubles — at every thread count, across
// several generated corpora. num_threads=1 is the serial reference;
// {2, 3, 8} exercise even, odd and range-exceeding worker counts (the
// corpus is sharded the same way regardless of how many cores the machine
// actually has, so these tests are meaningful on any host).
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "core/learner.h"
#include "core/linking_space.h"
#include "datagen/generator.h"
#include "eval/table1.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "ontology/instance_index.h"
#include "text/segmenter.h"
#include "util/logging.h"

namespace rulelink {
namespace {

constexpr std::size_t kThreadCounts[] = {2, 3, 8};
constexpr double kSupportThreshold = 0.01;

datagen::DatasetConfig DifferentialConfig(std::uint64_t seed) {
  datagen::DatasetConfig config;
  config.seed = seed;
  config.num_classes = 60;
  config.num_leaves = 24;
  config.catalog_size = 900;
  config.num_links = 400;
  config.num_signal_classes = 5;
  config.num_other_frequent_classes = 6;
  config.signal_class_min_links = 25;
  config.signal_class_max_links = 45;
  config.frequent_class_min_links = 7;
  config.frequent_class_max_links = 12;
  config.tail_class_cap_links = 4;
  return config;
}

struct Corpus {
  std::unique_ptr<datagen::Dataset> dataset;
  std::unique_ptr<core::TrainingSet> ts;
};

// One corpus per seed, shared across the whole suite: the differential
// comparisons re-run the algorithms many times, the generator only once.
const Corpus& GetCorpus(std::uint64_t seed) {
  static std::map<std::uint64_t, Corpus>* cache =
      new std::map<std::uint64_t, Corpus>();
  auto it = cache->find(seed);
  if (it == cache->end()) {
    Corpus corpus;
    auto dataset =
        datagen::DatasetGenerator(DifferentialConfig(seed)).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    corpus.dataset =
        std::make_unique<datagen::Dataset>(std::move(dataset).value());
    corpus.ts = std::make_unique<core::TrainingSet>(
        datagen::BuildTrainingSet(*corpus.dataset));
    it = cache->emplace(seed, std::move(corpus)).first;
  }
  return it->second;
}

void ExpectRulesIdentical(const core::RuleSet& serial,
                          const core::RuleSet& parallel,
                          std::size_t threads) {
  ASSERT_EQ(serial.size(), parallel.size()) << "threads=" << threads;
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const core::ClassificationRule& a = serial.rules()[i];
    const core::ClassificationRule& b = parallel.rules()[i];
    EXPECT_EQ(a.property, b.property) << "rule " << i;
    EXPECT_EQ(serial.segment_text(a), parallel.segment_text(b))
        << "rule " << i;
    EXPECT_EQ(a.cls, b.cls) << "rule " << i;
    EXPECT_EQ(a.counts.premise_count, b.counts.premise_count) << "rule " << i;
    EXPECT_EQ(a.counts.class_count, b.counts.class_count) << "rule " << i;
    EXPECT_EQ(a.counts.joint_count, b.counts.joint_count) << "rule " << i;
    EXPECT_EQ(a.counts.total, b.counts.total) << "rule " << i;
    // Bit-identical measures, not just approximately equal.
    EXPECT_EQ(a.support, b.support) << "rule " << i;
    EXPECT_EQ(a.confidence, b.confidence) << "rule " << i;
    EXPECT_EQ(a.lift, b.lift) << "rule " << i;
  }
}

class ParallelDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  const Corpus& corpus() const { return GetCorpus(GetParam()); }

  core::LearnerOptions Options(std::size_t num_threads) const {
    core::LearnerOptions options;
    options.support_threshold = kSupportThreshold;
    options.segmenter = &segmenter_;
    options.num_threads = num_threads;
    return options;
  }

  text::SeparatorSegmenter segmenter_;
};

TEST_P(ParallelDifferential, LearnIsThreadCountInvariant) {
  core::LearnStats serial_stats;
  auto serial = core::RuleLearner(Options(1)).Learn(*corpus().ts,
                                                    &serial_stats);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_GT(serial->size(), 0u);

  for (std::size_t threads : kThreadCounts) {
    core::LearnStats stats;
    auto parallel =
        core::RuleLearner(Options(threads)).Learn(*corpus().ts, &stats);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ExpectRulesIdentical(*serial, *parallel, threads);
    EXPECT_EQ(stats.num_examples, serial_stats.num_examples);
    EXPECT_EQ(stats.distinct_segments, serial_stats.distinct_segments);
    EXPECT_EQ(stats.segment_occurrences, serial_stats.segment_occurrences);
    EXPECT_EQ(stats.selected_segment_occurrences,
              serial_stats.selected_segment_occurrences);
    EXPECT_EQ(stats.frequent_premises, serial_stats.frequent_premises);
    EXPECT_EQ(stats.frequent_classes, serial_stats.frequent_classes);
    EXPECT_EQ(stats.num_rules, serial_stats.num_rules);
    EXPECT_EQ(stats.classes_with_rules, serial_stats.classes_with_rules);
  }
}

TEST_P(ParallelDifferential, ClassifyBatchIsThreadCountInvariant) {
  auto rules = core::RuleLearner(Options(1)).Learn(*corpus().ts);
  ASSERT_TRUE(rules.ok());
  const core::RuleClassifier classifier(&*rules, &segmenter_);
  const auto& items = corpus().dataset->external_items;

  const auto serial = classifier.ClassifyBatch(items, 0.0, 1);
  ASSERT_EQ(serial.size(), items.size());
  // The batch must agree with the one-item entry point...
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto single = classifier.Classify(items[i]);
    ASSERT_EQ(serial[i].size(), single.size()) << "item " << i;
  }
  // ...and with every parallel partitioning, prediction by prediction.
  for (std::size_t threads : kThreadCounts) {
    const auto parallel = classifier.ClassifyBatch(items, 0.0, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i].size(), serial[i].size())
          << "threads=" << threads << " item " << i;
      for (std::size_t k = 0; k < serial[i].size(); ++k) {
        EXPECT_EQ(parallel[i][k].cls, serial[i][k].cls);
        EXPECT_EQ(parallel[i][k].rule_index, serial[i][k].rule_index);
        EXPECT_EQ(parallel[i][k].confidence, serial[i][k].confidence);
        EXPECT_EQ(parallel[i][k].lift, serial[i][k].lift);
      }
    }
    const auto top_serial = classifier.PredictClassBatch(items, 0.0, 1);
    const auto top_parallel =
        classifier.PredictClassBatch(items, 0.0, threads);
    EXPECT_EQ(top_serial, top_parallel) << "threads=" << threads;
  }
}

TEST_P(ParallelDifferential, LinkIsThreadCountInvariant) {
  const auto& dataset = *corpus().dataset;
  const std::size_t num_external = dataset.external_items.size();
  const std::size_t num_catalog = dataset.catalog_items.size();

  // Candidate pairs: the gold pair of every external item plus two pseudo-
  // random distractors, with every third pair duplicated to exercise the
  // dedup path.
  std::vector<blocking::CandidatePair> candidates;
  for (const datagen::GoldLink& link : dataset.links) {
    candidates.push_back({link.external_index, link.catalog_index});
  }
  for (std::size_t e = 0; e < num_external; ++e) {
    candidates.push_back({e, (e * 7 + 3) % num_catalog});
    candidates.push_back({e, (e * 13 + 11) % num_catalog});
    if (e % 3 == 0) candidates.push_back({e, (e * 7 + 3) % num_catalog});
  }

  const linking::ItemMatcher matcher(
      {{datagen::props::kPartNumber, datagen::props::kPartNumber,
        linking::SimilarityMeasure::kJaroWinkler, 1.0}});

  for (linking::Linker::Strategy strategy :
       {linking::Linker::Strategy::kBestPerExternal,
        linking::Linker::Strategy::kAllAboveThreshold}) {
    const linking::Linker linker(&matcher, 0.5, strategy);
    linking::LinkerStats serial_stats;
    const auto serial =
        linker.Run(dataset.external_items, dataset.catalog_items, candidates,
                   &serial_stats, /*num_threads=*/1);
    ASSERT_GT(serial.size(), 0u);

    for (std::size_t threads : kThreadCounts) {
      linking::LinkerStats stats;
      const auto parallel =
          linker.Run(dataset.external_items, dataset.catalog_items,
                     candidates, &stats, threads);
      ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
      for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(parallel[i].external_index, serial[i].external_index);
        EXPECT_EQ(parallel[i].local_index, serial[i].local_index);
        EXPECT_EQ(parallel[i].score, serial[i].score);
      }
      EXPECT_EQ(stats.pairs_scored, serial_stats.pairs_scored);
      // No memo on the string path, so even the kernel count is invariant.
      EXPECT_EQ(stats.comparisons, serial_stats.comparisons);
      EXPECT_EQ(stats.links_emitted, serial_stats.links_emitted);
    }
  }
}

TEST_P(ParallelDifferential, Table1IsThreadCountInvariant) {
  auto rules = core::RuleLearner(Options(1)).Learn(*corpus().ts);
  ASSERT_TRUE(rules.ok());
  const eval::Table1Evaluator evaluator(&*rules, &segmenter_,
                                        kSupportThreshold);
  const auto serial =
      evaluator.Evaluate(*corpus().ts, {1.0, 0.8, 0.6, 0.4}, 1);

  for (std::size_t threads : kThreadCounts) {
    const auto parallel =
        evaluator.Evaluate(*corpus().ts, {1.0, 0.8, 0.6, 0.4}, threads);
    ASSERT_EQ(parallel.rows.size(), serial.rows.size());
    for (std::size_t b = 0; b < serial.rows.size(); ++b) {
      EXPECT_EQ(parallel.rows[b].num_rules, serial.rows[b].num_rules);
      EXPECT_EQ(parallel.rows[b].decisions, serial.rows[b].decisions);
      EXPECT_EQ(parallel.rows[b].correct, serial.rows[b].correct);
      EXPECT_EQ(parallel.rows[b].precision_band,
                serial.rows[b].precision_band);
      EXPECT_EQ(parallel.rows[b].precision_cumulative,
                serial.rows[b].precision_cumulative);
      EXPECT_EQ(parallel.rows[b].recall_cumulative,
                serial.rows[b].recall_cumulative);
      EXPECT_EQ(parallel.rows[b].avg_lift, serial.rows[b].avg_lift);
    }
    EXPECT_EQ(parallel.classifiable_items, serial.classifiable_items);
    EXPECT_EQ(parallel.frequent_classes, serial.frequent_classes);
    EXPECT_EQ(parallel.undecided_items, serial.undecided_items);
  }
}

TEST_P(ParallelDifferential, LinkingSpaceAnalyzeIsThreadCountInvariant) {
  const auto& dataset = *corpus().dataset;
  auto rules = core::RuleLearner(Options(1)).Learn(*corpus().ts);
  ASSERT_TRUE(rules.ok());
  const core::RuleClassifier classifier(&*rules, &segmenter_);
  const rdf::Graph local_graph = datagen::BuildLocalGraph(dataset);
  const auto index =
      ontology::InstanceIndex::Build(local_graph, dataset.ontology());
  const core::LinkingSpaceAnalyzer analyzer(&classifier, &index);

  for (core::UnclassifiedPolicy policy :
       {core::UnclassifiedPolicy::kCompareAll,
        core::UnclassifiedPolicy::kSkip}) {
    const auto serial =
        analyzer.Analyze(dataset.external_items, 0.4, policy, 1);
    for (std::size_t threads : kThreadCounts) {
      const auto parallel =
          analyzer.Analyze(dataset.external_items, 0.4, policy, threads);
      EXPECT_EQ(parallel.num_external_items, serial.num_external_items);
      EXPECT_EQ(parallel.local_size, serial.local_size);
      EXPECT_EQ(parallel.naive_pairs, serial.naive_pairs);
      EXPECT_EQ(parallel.reduced_pairs, serial.reduced_pairs);
      EXPECT_EQ(parallel.classified_items, serial.classified_items);
      EXPECT_EQ(parallel.unclassified_items, serial.unclassified_items);
      // Bit-identical: the reduction is serial in item order.
      EXPECT_EQ(parallel.reduction_ratio, serial.reduction_ratio);
      EXPECT_EQ(parallel.mean_subspace_fraction,
                serial.mean_subspace_fraction);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferential,
                         ::testing::Values(11, 29, 347, 5081, 60013));

}  // namespace
}  // namespace rulelink
