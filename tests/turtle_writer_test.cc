#include "rdf/turtle_writer.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "rdf/graph_algebra.h"
#include "rdf/turtle.h"
#include "rdf/vocab.h"

namespace rulelink::rdf {
namespace {

TEST(TurtleWriterTest, CompactsKnownPrefixes) {
  Graph g;
  g.InsertIri("http://e/a", vocab::kRdfType, vocab::kOwlClass);
  TurtleWriterOptions options;
  options.prefixes = {{"ex", "http://e/"}};
  const std::string out = WriteTurtle(g, options);
  EXPECT_NE(out.find("@prefix ex: <http://e/> ."), std::string::npos);
  EXPECT_NE(out.find("ex:a a owl:Class ."), std::string::npos);
}

TEST(TurtleWriterTest, RdfTypeBecomesA) {
  Graph g;
  g.InsertIri("http://e/a", vocab::kRdfType, "http://e/C");
  const std::string out = WriteTurtle(g);
  EXPECT_NE(out.find(" a "), std::string::npos);
  EXPECT_EQ(out.find("rdf-syntax-ns#type"), std::string::npos);
}

TEST(TurtleWriterTest, GroupsPredicatesAndObjects) {
  Graph g;
  g.InsertLiteralTriple("http://e/a", "http://e/p", "v1");
  g.InsertLiteralTriple("http://e/a", "http://e/p", "v2");
  g.InsertLiteralTriple("http://e/a", "http://e/q", "w");
  const std::string out = WriteTurtle(g);
  EXPECT_NE(out.find("\"v1\" , \"v2\""), std::string::npos);
  EXPECT_NE(out.find(";"), std::string::npos);
  // Exactly one statement terminator for the grouped subject.
  EXPECT_EQ(std::count(out.begin(), out.end(), '.'),
            1 + 0);  // no prefixes used -> 1 dot
}

TEST(TurtleWriterTest, UngroupedModeEmitsOneTriplePerLine) {
  Graph g;
  g.InsertLiteralTriple("http://e/a", "http://e/p", "v1");
  g.InsertLiteralTriple("http://e/a", "http://e/q", "v2");
  TurtleWriterOptions options;
  options.group = false;
  const std::string out = WriteTurtle(g, options);
  EXPECT_EQ(out.find(";"), std::string::npos);
}

TEST(TurtleWriterTest, LiteralsWithLangAndDatatype) {
  Graph g;
  g.Insert(Term::Iri("http://e/a"), Term::Iri("http://e/p"),
           Term::LangLiteral("bonjour", "fr"));
  g.Insert(Term::Iri("http://e/a"), Term::Iri("http://e/q"),
           Term::TypedLiteral("42", std::string(vocab::kXsdNs) + "integer"));
  const std::string out = WriteTurtle(g);
  EXPECT_NE(out.find("\"bonjour\"@fr"), std::string::npos);
  EXPECT_NE(out.find("\"42\"^^xsd:integer"), std::string::npos);
}

TEST(TurtleWriterTest, UnsafeLocalNamesStayAngleBracketed) {
  Graph g;
  g.InsertIri("http://e/has/slash", "http://e/p", "http://e/ok");
  TurtleWriterOptions options;
  options.prefixes = {{"ex", "http://e/"}};
  const std::string out = WriteTurtle(g, options);
  EXPECT_NE(out.find("<http://e/has/slash>"), std::string::npos);
  EXPECT_NE(out.find("ex:ok"), std::string::npos);
}

TEST(TurtleWriterTest, RoundTripsThroughTheParser) {
  Graph g;
  g.InsertIri("http://e/a", vocab::kRdfType, vocab::kOwlClass);
  g.InsertIri("http://e/b", vocab::kRdfsSubClassOf, "http://e/a");
  g.InsertLiteralTriple("http://e/b", vocab::kRdfsLabel, "B class");
  g.Insert(Term::Iri("http://e/i"), Term::Iri("http://e/pn"),
           Term::Literal("CRCW0805 \"quoted\"\nline"));
  g.Insert(Term::BlankNode("x"), Term::Iri("http://e/p"),
           Term::LangLiteral("v", "en"));

  TurtleWriterOptions options;
  options.prefixes = {{"ex", "http://e/"}};
  const std::string serialized = WriteTurtle(g, options);

  Graph parsed;
  const auto status = ParseTurtle(serialized, &parsed);
  ASSERT_TRUE(status.ok()) << status << "\n" << serialized;
  EXPECT_TRUE(Isomorphic(g, parsed)) << serialized;
}

TEST(TurtleWriterTest, EmptyGraph) {
  Graph g;
  const std::string out = WriteTurtle(g);
  Graph parsed;
  EXPECT_TRUE(ParseTurtle(out, &parsed).ok());
  EXPECT_TRUE(parsed.empty());
}

}  // namespace
}  // namespace rulelink::rdf
