// Sanitizer stress for the morsel scheduler's stealing deques: many tiny
// morsels, maximal steal contention, repeated pool reuse, nested loops
// and concurrent Stats() reads. The assertions are deliberately simple —
// every item exactly once, slot ranges exact — because the point of this
// suite is what TSan/ASan observe while it runs (the per-deque locking,
// the in-limbo stolen ranges, the shared_ptr'd loop state outliving late
// helper tasks), not the arithmetic.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace rulelink::util {
namespace {

TEST(SchedulerStressTest, ContendedStealsOverTinyMorsels) {
  // 8 participants fighting over one-item slots, re-running on the same
  // pool so helper tasks from finished loops (holding the old LoopState)
  // drain while the next loop is already live.
  ScopedMorselItems force(1);
  ThreadPool pool(8);
  constexpr std::size_t kItems = 2000;
  for (int round = 0; round < 10; ++round) {
    std::vector<std::atomic<std::uint32_t>> hits(kItems);
    std::atomic<std::uint64_t> checksum{0};
    pool.ParallelFor(kItems,
                     [&](std::size_t slot, std::size_t begin,
                         std::size_t end) {
                       for (std::size_t i = begin; i < end; ++i) {
                         ++hits[i];
                         checksum.fetch_add(i * (slot + 1),
                                            std::memory_order_relaxed);
                       }
                     });
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "round " << round << " item " << i;
    }
    // slot == item for 1-item morsels, so the checksum is deterministic.
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < kItems; ++i) expected += i * (i + 1);
    ASSERT_EQ(checksum.load(), expected) << "round " << round;
  }
}

TEST(SchedulerStressTest, StatsReadsRaceWithRunningLoops) {
  // Stats() uses relaxed reads of live counters by design; TSan must see
  // no lock-order or data-race issue between a reader thread and the
  // participants flushing their counters.
  ScopedMorselItems force(1);
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const SchedulerTotals totals = pool.Stats().Totals();
      ASSERT_GE(totals.morsels, last);  // monotone
      last = totals.morsels;
    }
  });
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.ParallelFor(500, [&](std::size_t, std::size_t begin,
                              std::size_t end) {
      sum.fetch_add(end - begin, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 500u);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
}

TEST(SchedulerStressTest, NestedLoopsUnderContention) {
  // Outer morsels spawn inner parallel loops on the same global pool:
  // workers can be inner callers and outer helpers at once, which is the
  // deadlock-shaped scenario the caller-participates design must survive.
  ScopedMorselItems force(1);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<std::uint32_t>> hits(kOuter * kInner);
    ParallelFor(8, kOuter, [&](std::size_t outer, std::size_t, std::size_t) {
      ParallelFor(4, kInner,
                  [&](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                      ++hits[outer * kInner + i];
                    }
                  });
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "round " << round << " cell " << i;
    }
  }
}

TEST(SchedulerStressTest, ManyShortLoopsReuseTheGlobalPool) {
  // Loop-start/loop-end churn: hundreds of small scheduled loops back to
  // back exercise LoopState construction, helper-task drain and the
  // completion condition variable far more often than a few big loops.
  ScopedMorselItems force(2);
  const SchedulerTotals before = GlobalSchedulerTotals();
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 300; ++round) {
    ParallelFor(4, 16, [&](std::size_t, std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 300u * 16u);
  const SchedulerTotals delta = GlobalSchedulerTotals().Minus(before);
  EXPECT_EQ(delta.loops, 300u);
  EXPECT_EQ(delta.morsels, 300u * 8u);  // 16 items / 2-item morsels
}

}  // namespace
}  // namespace rulelink::util
