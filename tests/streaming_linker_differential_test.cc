// Differential tests for the streaming linker: StreamingLinker over a
// blocker's CandidateIndex must be byte-identical to Linker::RunCached
// over the same blocker's materialized candidate list — same links, same
// order, same scores — at every thread count, for both strategies, over
// StandardBlocker, RuleBlocker and the default (materializing) BuildIndex.
// The filter cascade is additionally checked directly: a pruned pair's
// real cached score must sit below the threshold, i.e. the bounds are
// sound, never heuristic. This is the acceptance bar for the streaming
// tentpole.
#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/rule_blocker.h"
#include "blocking/standard_blocking.h"
#include "core/learner.h"
#include "datagen/generator.h"
#include "linking/evaluation.h"
#include "linking/feature_cache.h"
#include "linking/filters.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/streaming_linker.h"
#include "text/segmenter.h"
#include "util/logging.h"

namespace rulelink {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};
constexpr double kThreshold = 0.6;

datagen::DatasetConfig DifferentialConfig(std::uint64_t seed) {
  datagen::DatasetConfig config;
  config.seed = seed;
  config.num_classes = 50;
  config.num_leaves = 20;
  config.catalog_size = 700;
  config.num_links = 320;
  config.num_signal_classes = 5;
  config.num_other_frequent_classes = 5;
  config.signal_class_min_links = 20;
  config.signal_class_max_links = 40;
  config.frequent_class_min_links = 6;
  config.frequent_class_max_links = 11;
  config.tail_class_cap_links = 4;
  return config;
}

const datagen::Dataset& GetCorpus(std::uint64_t seed) {
  static std::map<std::uint64_t, std::unique_ptr<datagen::Dataset>>* cache =
      new std::map<std::uint64_t, std::unique_ptr<datagen::Dataset>>();
  auto it = cache->find(seed);
  if (it == cache->end()) {
    auto dataset =
        datagen::DatasetGenerator(DifferentialConfig(seed)).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    it = cache
             ->emplace(seed, std::make_unique<datagen::Dataset>(
                                 std::move(dataset).value()))
             .first;
  }
  return *it->second;
}

// Exercises every filter in the cascade at once: a Levenshtein rule
// (length bound + capped probe), Jaccard and Dice (count bounds), kExact
// (id short-circuit), plus Monge-Elkan as an unboundable measure the
// cascade must treat optimistically.
linking::ItemMatcher FilteredMatcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 2.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 1.5},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kDiceBigram, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kExact, 0.5},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kMongeElkan, 0.5},
  });
}

struct Caches {
  linking::FeatureDictionary dict;
  linking::FeatureCache external;
  linking::FeatureCache local;

  Caches(const datagen::Dataset& dataset,
         const linking::ItemMatcher& matcher, std::size_t num_threads) {
    external = linking::FeatureCache::Build(
        dataset.external_items, matcher,
        linking::FeatureCache::Side::kExternal, &dict, num_threads);
    local = linking::FeatureCache::Build(
        dataset.catalog_items, matcher, linking::FeatureCache::Side::kLocal,
        &dict, num_threads);
  }
};

void ExpectLinksIdentical(const std::vector<linking::Link>& actual,
                          const std::vector<linking::Link>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].external_index, expected[i].external_index) << i;
    EXPECT_EQ(actual[i].local_index, expected[i].local_index) << i;
    // Bit-identical scores, not approximately equal.
    EXPECT_EQ(actual[i].score, expected[i].score) << i;
  }
}

// Runs the streaming linker against the RunCached reference over the same
// generator, for both strategies and every thread count, and checks that
// the thread-invariant stats really are invariant.
void RunDifferential(const datagen::Dataset& dataset,
                     const linking::ItemMatcher& matcher,
                     const blocking::CandidateGenerator& generator) {
  const auto candidates =
      generator.Generate(dataset.external_items, dataset.catalog_items);
  ASSERT_GT(candidates.size(), 0u);
  const auto index =
      generator.BuildIndex(dataset.external_items, dataset.catalog_items);
  ASSERT_EQ(index->num_external(), dataset.external_items.size());

  for (linking::Linker::Strategy strategy :
       {linking::Linker::Strategy::kBestPerExternal,
        linking::Linker::Strategy::kAllAboveThreshold}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    const linking::Linker cached_linker(&matcher, kThreshold, strategy);
    const linking::StreamingLinker streaming(&matcher, kThreshold, strategy);
    const Caches ref_caches(dataset, matcher, /*num_threads=*/1);
    linking::LinkerStats ref_stats;
    const auto reference =
        cached_linker.RunCached(ref_caches.external, ref_caches.local,
                                candidates, &ref_stats, /*num_threads=*/1);

    linking::LinkerStats serial_stats;
    for (std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(threads);
      // Caches are rebuilt per thread count on purpose: id numbering
      // differs across builds, the links must not.
      const Caches caches(dataset, matcher, threads);
      linking::LinkerStats stats;
      linking::ScoreMemoStats memo;
      const auto links =
          streaming.Run(*index, caches.external, caches.local, &stats,
                        threads, &memo);
      ExpectLinksIdentical(links, reference);
      EXPECT_EQ(stats.links_emitted, ref_stats.links_emitted);
      // Every candidate either reached the scorer or was pruned by a
      // provably-below-threshold bound; nothing is dropped silently.
      EXPECT_EQ(stats.pairs_scored + stats.pairs_pruned_by_filter,
                candidates.size());
      EXPECT_LE(stats.pairs_scored, ref_stats.pairs_scored);
      EXPECT_GT(stats.peak_candidate_run, 0u);
      EXPECT_LE(stats.peak_candidate_run, dataset.catalog_items.size());
      if (threads == kThreadCounts[0]) {
        serial_stats = stats;
      } else {
        // The cascade's decisions are per-pair, so every prune counter is
        // thread-count invariant (only memo-dependent `comparisons` may
        // vary across thread counts).
        EXPECT_EQ(stats.pairs_scored, serial_stats.pairs_scored);
        EXPECT_EQ(stats.pairs_pruned_by_filter,
                  serial_stats.pairs_pruned_by_filter);
        EXPECT_EQ(stats.pruned_by_length, serial_stats.pruned_by_length);
        EXPECT_EQ(stats.pruned_by_token_count,
                  serial_stats.pruned_by_token_count);
        EXPECT_EQ(stats.pruned_by_exact, serial_stats.pruned_by_exact);
        EXPECT_EQ(stats.pruned_by_distance_cap,
                  serial_stats.pruned_by_distance_cap);
        EXPECT_EQ(stats.peak_candidate_run, serial_stats.peak_candidate_run);
      }
    }
  }
}

class StreamingLinkerDifferential
    : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  const datagen::Dataset& corpus() const { return GetCorpus(GetParam()); }
};

TEST_P(StreamingLinkerDifferential, MatchesRunCachedOverStandardBlocker) {
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/3);
  RunDifferential(corpus(), FilteredMatcher(), blocker);
}

TEST_P(StreamingLinkerDifferential, MatchesRunCachedOverRuleBlocker) {
  const datagen::Dataset& dataset = corpus();
  const core::TrainingSet ts = datagen::BuildTrainingSet(dataset);
  const text::SeparatorSegmenter segmenter;

  core::LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter;
  options.num_threads = 1;
  auto rules = core::RuleLearner(options).Learn(ts);
  ASSERT_TRUE(rules.ok()) << rules.status();
  const core::RuleClassifier classifier(&*rules, &segmenter);
  const blocking::RuleBlocker blocker(&classifier, &dataset.ontology(),
                                      &dataset.catalog_classes,
                                      /*min_confidence=*/0.4);
  RunDifferential(dataset, FilteredMatcher(), blocker);
}

TEST_P(StreamingLinkerDifferential, MatchesOverDefaultMaterializedIndex) {
  // A generator that does not override BuildIndex exercises the base
  // class's CSR materialization path.
  class PlainGenerator : public blocking::CandidateGenerator {
   public:
    std::vector<blocking::CandidatePair> Generate(
        const std::vector<core::Item>& external,
        const std::vector<core::Item>& local) const override {
      return inner_.Generate(external, local);
    }
    std::string name() const override { return "plain"; }

   private:
    blocking::StandardBlocker inner_{datagen::props::kPartNumber, 3};
  };
  RunDifferential(corpus(), FilteredMatcher(), PlainGenerator());
}

TEST_P(StreamingLinkerDifferential, CascadeNeverPrunesAThresholdPair) {
  // Soundness, checked against ground truth: every pair the cascade
  // prunes must score strictly below the threshold under ScoreCached.
  const datagen::Dataset& dataset = corpus();
  const linking::ItemMatcher matcher = FilteredMatcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/3);
  const auto candidates =
      blocker.Generate(dataset.external_items, dataset.catalog_items);
  const Caches caches(dataset, matcher, /*num_threads=*/1);
  const linking::FilterCascade cascade(&matcher, kThreshold);

  linking::FilterStats stats;
  std::size_t pruned = 0;
  for (const blocking::CandidatePair& pair : candidates) {
    if (cascade.Prune(caches.external, pair.external_index, caches.local,
                      pair.local_index, &stats)) {
      ++pruned;
      const double score =
          matcher.ScoreCached(caches.external, pair.external_index,
                              caches.local, pair.local_index);
      ASSERT_LT(score, kThreshold)
          << "pruned pair (" << pair.external_index << ", "
          << pair.local_index << ") actually reaches the threshold";
    }
  }
  EXPECT_EQ(stats.pairs_pruned, pruned);
  // The corpus is adversarial enough that the cascade must catch
  // something, and the per-filter counters attribute every prune.
  EXPECT_GT(pruned, 0u);
  EXPECT_GE(stats.by_length + stats.by_token_count + stats.by_exact +
                stats.by_distance_cap,
            stats.pairs_pruned);
}

TEST_P(StreamingLinkerDifferential, StreamingPipelineMatchesCachedPipeline) {
  const datagen::Dataset& dataset = corpus();
  const linking::ItemMatcher matcher = FilteredMatcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/3);
  std::vector<blocking::CandidatePair> gold;
  for (const datagen::GoldLink& link : dataset.links) {
    gold.push_back({link.external_index, link.catalog_index});
  }
  const auto reference = linking::RunCachedLinkagePipeline(
      dataset.external_items, dataset.catalog_items, blocker, matcher,
      kThreshold, linking::Linker::Strategy::kBestPerExternal, &gold,
      /*num_threads=*/1);
  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    const auto result = linking::RunStreamingLinkagePipeline(
        dataset.external_items, dataset.catalog_items, blocker, matcher,
        kThreshold, linking::Linker::Strategy::kBestPerExternal, &gold,
        threads);
    ExpectLinksIdentical(result.links, reference.links);
    EXPECT_EQ(result.num_candidates, reference.num_candidates);
    EXPECT_EQ(result.quality.correct, reference.quality.correct);
    EXPECT_EQ(result.quality.precision, reference.quality.precision);
    EXPECT_EQ(result.quality.recall, reference.quality.recall);
    EXPECT_EQ(result.quality.f1, reference.quality.f1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingLinkerDifferential,
                         ::testing::Values(23, 509, 8089));

}  // namespace
}  // namespace rulelink
