#include "text/similarity.h"

#include <gtest/gtest.h>

namespace rulelink::text {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "abd"), 1u);
}

TEST(DamerauTest, TranspositionCostsOne) {
  EXPECT_EQ(DamerauLevenshteinDistance("ab", "ba"), 1u);
  EXPECT_EQ(LevenshteinDistance("ab", "ba"), 2u);
  EXPECT_EQ(DamerauLevenshteinDistance("CRCW", "CRWC"), 1u);
  EXPECT_EQ(DamerauLevenshteinDistance("abc", "abc"), 0u);
}

TEST(LevenshteinSimilarityTest, Normalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("abcd", "abcx"), 0.75, 1e-9);
}

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DIXON", "DICKSONX"), 0.813333, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoostsScore) {
  EXPECT_GT(JaroWinklerSimilarity("CRCW0805", "CRCW0806"),
            JaroSimilarity("CRCW0805", "CRCW0806"));
}

TEST(JaccardTest, TokenOverlap) {
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("a b c", "a b c"), 1.0);
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("a b", "c d"), 0.0);
  EXPECT_NEAR(JaccardTokenSimilarity("a b c", "b c d"), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(JaccardTokenSimilarity("", ""), 1.0);
}

TEST(DiceBigramTest, KnownValues) {
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("night", "night"), 1.0);
  EXPECT_NEAR(DiceBigramSimilarity("night", "nacht"), 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(DiceBigramSimilarity("ab", ""), 0.0);
}

TEST(CharacterBigramsTest, Extraction) {
  const auto grams = CharacterBigrams("abc");
  ASSERT_EQ(grams.size(), 2u);
  EXPECT_EQ(grams[0], "ab");
  EXPECT_EQ(grams[1], "bc");
  EXPECT_EQ(CharacterBigrams("a").size(), 1u);
  EXPECT_TRUE(CharacterBigrams("").empty());
}

TEST(NGramOverlapTest, OverlapCoefficient) {
  // trigrams of "abcd": abc, bcd; of "abce": abc, bce -> overlap 1, min 2.
  EXPECT_NEAR(NGramOverlapSimilarity("abcd", "abce", 3), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(NGramOverlapSimilarity("abcd", "abcd", 3), 1.0);
}

TEST(MongeElkanTest, TokenwiseBestMatch) {
  // Every token of the first string has a perfect counterpart.
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("louvre museum", "museum louvre"),
                   1.0);
  EXPECT_GT(MongeElkanSimilarity("louvre museum", "louvre musee"), 0.8);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity("a", ""), 0.0);
}

TEST(TfIdfTest, IdenticalDocumentsScoreOne) {
  TfIdfCosine tfidf;
  tfidf.AddDocument({"a", "b"});
  tfidf.AddDocument({"c", "d"});
  tfidf.Finalize();
  EXPECT_NEAR(tfidf.Similarity({"a", "b"}, {"a", "b"}), 1.0, 1e-9);
}

TEST(TfIdfTest, DisjointDocumentsScoreZero) {
  TfIdfCosine tfidf;
  tfidf.AddDocument({"a"});
  tfidf.AddDocument({"b"});
  tfidf.Finalize();
  EXPECT_DOUBLE_EQ(tfidf.Similarity({"a"}, {"b"}), 0.0);
}

TEST(TfIdfTest, RareTokensWeighMore) {
  TfIdfCosine tfidf;
  for (int i = 0; i < 50; ++i) tfidf.AddDocument({"common", "x"});
  tfidf.AddDocument({"rare", "common"});
  tfidf.Finalize();
  // Sharing the rare token must beat sharing the common one.
  EXPECT_GT(tfidf.Similarity({"rare", "a"}, {"rare", "b"}),
            tfidf.Similarity({"common", "a"}, {"common", "b"}));
}

TEST(TfIdfTest, EmptyDocuments) {
  TfIdfCosine tfidf;
  tfidf.AddDocument({"a"});
  tfidf.Finalize();
  EXPECT_DOUBLE_EQ(tfidf.Similarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(tfidf.Similarity({"a"}, {}), 0.0);
}

// Property sweep: every measure is in [0,1], symmetric, and 1 on identity.
struct SimPair {
  const char* a;
  const char* b;
};

class SimilarityProperty : public ::testing::TestWithParam<SimPair> {};

TEST_P(SimilarityProperty, RangeSymmetryIdentity) {
  const std::string a = GetParam().a;
  const std::string b = GetParam().b;
  const auto check = [&](double (*f)(std::string_view, std::string_view),
                         const char* name) {
    const double ab = f(a, b);
    const double ba = f(b, a);
    EXPECT_GE(ab, 0.0) << name;
    EXPECT_LE(ab, 1.0) << name;
    EXPECT_NEAR(ab, ba, 1e-12) << name << " not symmetric";
    EXPECT_DOUBLE_EQ(f(a, a), 1.0) << name << " identity";
  };
  check(&LevenshteinSimilarity, "levenshtein");
  check(&JaroSimilarity, "jaro");
  check(&JaroWinklerSimilarity, "jaro-winkler");
  check(&JaccardTokenSimilarity, "jaccard");
  check(&DiceBigramSimilarity, "dice");
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, SimilarityProperty,
    ::testing::Values(SimPair{"", ""}, SimPair{"a", "b"},
                      SimPair{"CRCW0805", "CRCW0806"},
                      SimPair{"T83 106 16V", "T83.106.16V"},
                      SimPair{"completely", "different"},
                      SimPair{"short", "a much longer string entirely"},
                      SimPair{"same", "same"}));

// Triangle-ish sanity: distance metrics obey d(a,c) <= d(a,b) + d(b,c).
TEST(LevenshteinTest, TriangleInequalitySpotChecks) {
  const char* words[] = {"kitten", "sitting", "mitten", "", "kit"};
  for (const char* a : words) {
    for (const char* b : words) {
      for (const char* c : words) {
        EXPECT_LE(LevenshteinDistance(a, c),
                  LevenshteinDistance(a, b) + LevenshteinDistance(b, c));
      }
    }
  }
}

}  // namespace
}  // namespace rulelink::text
