// util::EpochDomain contract tests: a retired object outlives every pin
// that could still reference it, reclamation drains exactly once, slot
// reuse folds drained counters, and the whole protocol survives a
// TSan-instrumented stress of readers dereferencing a shared pointer that
// a writer keeps swapping and retiring.
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/epoch.h"

namespace rulelink::util {
namespace {

struct Tracked {
  explicit Tracked(std::atomic<int>* live) : live_(live) {
    live_->fetch_add(1);
  }
  ~Tracked() { live_->fetch_sub(1); }
  std::atomic<int>* live_;

  static void Deleter(void* p) { delete static_cast<Tracked*>(p); }
};

TEST(EpochDomainTest, RetireWithoutReadersReclaimsImmediately) {
  std::atomic<int> live{0};
  EpochDomain domain;
  domain.Retire(new Tracked(&live), &Tracked::Deleter);
  // No reader is pinned, so the opportunistic reclaim inside Retire frees
  // it before Retire returns.
  EXPECT_EQ(live.load(), 0);
  const EpochStats stats = domain.Stats();
  EXPECT_EQ(stats.retired, 1u);
  EXPECT_EQ(stats.reclaimed, 1u);
  EXPECT_EQ(stats.limbo, 0u);
}

TEST(EpochDomainTest, PinnedReaderHoldsRetiredObjectAlive) {
  std::atomic<int> live{0};
  EpochDomain domain;
  EpochDomain::ReaderSlot* slot = domain.RegisterReader();
  auto* object = new Tracked(&live);
  {
    const EpochDomain::Guard guard(&domain, slot);
    domain.Retire(object, &Tracked::Deleter);
    // The pin predates the retirement epoch, so the object must survive
    // both the opportunistic reclaim and an explicit one.
    EXPECT_EQ(domain.TryReclaim(), 0u);
    EXPECT_EQ(live.load(), 1);
    EXPECT_EQ(domain.Stats().limbo, 1u);
  }
  // Unpinned: the retirement epoch is now past every active pin.
  EXPECT_EQ(domain.TryReclaim(), 1u);
  EXPECT_EQ(live.load(), 0);
  domain.UnregisterReader(slot);
}

TEST(EpochDomainTest, LaterPinDoesNotHoldEarlierRetirement) {
  std::atomic<int> live{0};
  EpochDomain domain;
  EpochDomain::ReaderSlot* slot = domain.RegisterReader();
  domain.Retire(new Tracked(&live), &Tracked::Deleter);
  {
    // Pinned after the retirement epoch advanced: this reader can never
    // have seen the retired object, so it does not keep it in limbo.
    const EpochDomain::Guard guard(&domain, slot);
    domain.TryReclaim();
    EXPECT_EQ(live.load(), 0);
  }
  domain.UnregisterReader(slot);
}

TEST(EpochDomainTest, DestructorDrainsLimbo) {
  std::atomic<int> live{0};
  {
    EpochDomain domain;
    EpochDomain::ReaderSlot* slot = domain.RegisterReader();
    {
      const EpochDomain::Guard guard(&domain, slot);
      domain.Retire(new Tracked(&live), &Tracked::Deleter);
    }
    domain.UnregisterReader(slot);
    // Still in limbo (no reclaim ran since the unpin); the destructor
    // must free it — ASan would flag the leak otherwise.
    EXPECT_EQ(live.load(), 1);
  }
  EXPECT_EQ(live.load(), 0);
}

TEST(EpochDomainTest, SlotReuseFoldsCounters) {
  EpochDomain domain;
  EpochDomain::ReaderSlot* first = domain.RegisterReader();
  { const EpochDomain::Guard guard(&domain, first); }
  { const EpochDomain::Guard guard(&domain, first); }
  domain.UnregisterReader(first);

  EpochDomain::ReaderSlot* second = domain.RegisterReader();
  EXPECT_EQ(second, first) << "retired slots are reused";
  { const EpochDomain::Guard guard(&domain, second); }
  const EpochStats stats = domain.Stats();
  EXPECT_EQ(stats.pins, 3u) << "drained pins fold into the totals";
  EXPECT_EQ(stats.readers, 1u);
  EXPECT_EQ(stats.reader_blocks, 0u);
  domain.UnregisterReader(second);
}

// The serving-engine access pattern, compressed: readers pin, load a
// shared pointer, and validate the pointee; a writer swaps the pointer
// and retires the old object as fast as it can. Run under TSan this
// checks the fences; under ASan it checks no reader ever dereferences a
// freed object; the payload check catches torn or stale frees everywhere.
TEST(EpochDomainTest, ConcurrentSwapStress) {
  struct Payload {
    explicit Payload(std::atomic<int>* live, std::uint64_t stamp)
        : tracked(live), a(stamp), b(~stamp) {}
    Tracked tracked;
    std::uint64_t a;
    std::uint64_t b;  // always ~a; a torn or reused object breaks this

    static void Deleter(void* p) { delete static_cast<Payload*>(p); }
  };

  constexpr std::size_t kReaders = 4;
  constexpr std::uint64_t kSwaps = 2000;
  std::atomic<int> live{0};
  EpochDomain domain;
  std::atomic<Payload*> current{new Payload(&live, 0)};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> bad{0};

  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      EpochDomain::ReaderSlot* slot = domain.RegisterReader();
      std::uint64_t mismatches = 0;
      while (!done.load(std::memory_order_acquire)) {
        const EpochDomain::Guard guard(&domain, slot);
        const Payload* p = current.load(std::memory_order_acquire);
        if (p->b != ~p->a) ++mismatches;
      }
      bad.fetch_add(mismatches, std::memory_order_relaxed);
      domain.UnregisterReader(slot);
    });
  }
  for (std::uint64_t s = 1; s <= kSwaps; ++s) {
    auto* fresh = new Payload(&live, s);
    Payload* old = current.exchange(fresh, std::memory_order_acq_rel);
    domain.Retire(old, &Payload::Deleter);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(bad.load(), 0u);
  domain.TryReclaim();
  const EpochStats stats = domain.Stats();
  EXPECT_EQ(stats.retired, kSwaps);
  EXPECT_EQ(stats.reclaimed, kSwaps);
  EXPECT_EQ(stats.limbo, 0u);
  EXPECT_EQ(stats.reader_blocks, 0u);
  EXPECT_EQ(live.load(), 1) << "only the currently-published object lives";
  delete current.load();
}

}  // namespace
}  // namespace rulelink::util
