#include "linking/fellegi_sunter.h"

#include <memory>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rulelink::linking {
namespace {

// Synthetic two-attribute corpus with known agreement statistics:
// matching pairs agree on pn ~always and on mfr often; random pairs agree
// on pn ~never and on mfr with probability ~1/4 (4 manufacturers).
class FellegiSunterTest : public ::testing::Test {
 protected:
  FellegiSunterTest() {
    util::Rng rng(5);
    const char* mfrs[] = {"Voltron", "Tekdyne", "Omnicorp", "Novachip"};
    for (int i = 0; i < 200; ++i) {
      const std::string pn = "PN" + std::to_string(i) + "X" +
                             rng.AlnumString(4);
      const std::string mfr = mfrs[rng.UniformUint64(4)];
      core::Item ext;
      ext.iri = "e" + std::to_string(i);
      ext.facts.push_back({"pn", pn});
      // 10% manufacturer disagreement among true matches.
      ext.facts.push_back(
          {"mfr", rng.Bernoulli(0.9) ? mfr : mfrs[rng.UniformUint64(4)]});
      core::Item loc;
      loc.iri = "l" + std::to_string(i);
      loc.facts.push_back({"pn", pn});
      loc.facts.push_back({"mfr", mfr});
      external_.push_back(std::move(ext));
      local_.push_back(std::move(loc));
      gold_.push_back({static_cast<std::size_t>(i),
                       static_cast<std::size_t>(i)});
    }
  }

  FsOptions Options() const {
    FsOptions options;
    options.attributes = {
        {"pn", "pn", SimilarityMeasure::kJaroWinkler, 0.95},
        {"mfr", "mfr", SimilarityMeasure::kExact, 1.0},
    };
    return options;
  }

  std::vector<core::Item> external_, local_;
  std::vector<blocking::CandidatePair> gold_;
};

TEST_F(FellegiSunterTest, SupervisedEstimatesMatchTheGenerator) {
  auto model = FellegiSunterModel::TrainSupervised(external_, local_,
                                                   gold_, Options());
  ASSERT_TRUE(model.ok()) << model.status();
  // pn: matches agree ~always, random pairs ~never.
  EXPECT_GT(model->m()[0], 0.95);
  EXPECT_LT(model->u()[0], 0.05);
  // mfr: matches agree ~92.5% (0.9 + 0.1/4), random pairs ~25%.
  EXPECT_NEAR(model->m()[1], 0.925, 0.06);
  EXPECT_NEAR(model->u()[1], 0.25, 0.08);
}

TEST_F(FellegiSunterTest, WeightsSeparateMatchesFromNonMatches) {
  auto model = FellegiSunterModel::TrainSupervised(external_, local_,
                                                   gold_, Options());
  ASSERT_TRUE(model.ok());
  double min_match_weight = 1e9;
  for (int i = 0; i < 50; ++i) {
    min_match_weight = std::min(
        min_match_weight, model->MatchWeight(external_[i], local_[i]));
  }
  double max_nonmatch_weight = -1e9;
  for (int i = 0; i < 50; ++i) {
    max_nonmatch_weight =
        std::max(max_nonmatch_weight,
                 model->MatchWeight(external_[i], local_[(i + 7) % 200]));
  }
  // pn agreement alone dominates: every match outweighs every non-match.
  EXPECT_GT(min_match_weight, max_nonmatch_weight);
  EXPECT_GT(min_match_weight, 0.0);
  EXPECT_LT(max_nonmatch_weight, 0.0);
}

TEST_F(FellegiSunterTest, PosteriorProbabilitiesAreCalibratedAtExtremes) {
  auto model = FellegiSunterModel::TrainSupervised(external_, local_,
                                                   gold_, Options());
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->MatchProbability(external_[3], local_[3]), 0.95);
  EXPECT_LT(model->MatchProbability(external_[3], local_[99]), 0.05);
}

TEST_F(FellegiSunterTest, WeightBoundsBracketEveryPair) {
  auto model = FellegiSunterModel::TrainSupervised(external_, local_,
                                                   gold_, Options());
  ASSERT_TRUE(model.ok());
  for (int i = 0; i < 20; ++i) {
    const double w = model->MatchWeight(external_[i], local_[(i * 3) % 200]);
    EXPECT_LE(w, model->MaxWeight() + 1e-9);
    EXPECT_GE(w, model->MinWeight() - 1e-9);
  }
}

TEST_F(FellegiSunterTest, EmRecoversStructureUnsupervised) {
  // Candidates: all 200 matches + 800 random non-matches, unlabeled.
  std::vector<blocking::CandidatePair> candidates = gold_;
  util::Rng rng(11);
  while (candidates.size() < 1000) {
    const std::size_t e = rng.UniformUint64(200);
    const std::size_t l = rng.UniformUint64(200);
    if (e != l) candidates.push_back({e, l});
  }
  auto model = FellegiSunterModel::TrainEm(external_, local_, candidates,
                                           Options());
  ASSERT_TRUE(model.ok()) << model.status();
  // The match class's pn agreement dwarfs the non-match class's.
  EXPECT_GT(model->m()[0], 0.8);
  EXPECT_LT(model->u()[0], 0.1);
  // Match share ~200/1000.
  EXPECT_NEAR(model->match_share(), 0.2, 0.08);
  // And the fitted model still separates pairs.
  EXPECT_GT(model->MatchWeight(external_[0], local_[0]),
            model->MatchWeight(external_[0], local_[5]));
}

TEST_F(FellegiSunterTest, AgreementVector) {
  auto model = FellegiSunterModel::TrainSupervised(external_, local_,
                                                   gold_, Options());
  ASSERT_TRUE(model.ok());
  const auto self = model->AgreementVector(external_[0], local_[0]);
  ASSERT_EQ(self.size(), 2u);
  EXPECT_TRUE(self[0]);  // same part number
  const auto cross = model->AgreementVector(external_[0], local_[1]);
  EXPECT_FALSE(cross[0]);
}

TEST_F(FellegiSunterTest, ErrorHandling) {
  FsOptions bad;  // no attributes
  EXPECT_FALSE(
      FellegiSunterModel::TrainSupervised(external_, local_, gold_, bad)
          .ok());
  EXPECT_FALSE(
      FellegiSunterModel::TrainSupervised(external_, local_, {}, Options())
          .ok());
  EXPECT_FALSE(
      FellegiSunterModel::TrainEm(external_, local_, {}, Options()).ok());
  FsOptions bad_threshold = Options();
  bad_threshold.attributes[0].agree_threshold = 0.0;
  EXPECT_FALSE(FellegiSunterModel::TrainSupervised(external_, local_,
                                                   gold_, bad_threshold)
                   .ok());
}

TEST_F(FellegiSunterTest, DeterministicAcrossRuns) {
  auto a = FellegiSunterModel::TrainSupervised(external_, local_, gold_,
                                               Options());
  auto b = FellegiSunterModel::TrainSupervised(external_, local_, gold_,
                                               Options());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->m(), b->m());
  EXPECT_EQ(a->u(), b->u());
}

}  // namespace
}  // namespace rulelink::linking
