#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "blocking/bigram_indexing.h"
#include "blocking/blocker.h"
#include "blocking/metrics.h"
#include "blocking/sorted_neighbourhood.h"
#include "blocking/standard_blocking.h"

namespace rulelink::blocking {
namespace {

core::Item MakeItem(const std::string& iri, const std::string& pn) {
  core::Item item;
  item.iri = iri;
  item.facts.push_back(core::PropertyValue{"pn", pn});
  return item;
}

TEST(BlockingKeyTest, ExtractsLowercasedPrefix) {
  const core::Item item = MakeItem("x", "CRCW0805");
  EXPECT_EQ(BlockingKey(item, "pn", 4), "crcw");
  EXPECT_EQ(BlockingKey(item, "pn", 0), "crcw0805");
  EXPECT_EQ(BlockingKey(item, "pn", 100), "crcw0805");
  EXPECT_EQ(BlockingKey(item, "other", 4), "");
}

TEST(CartesianBlockerTest, AllPairs) {
  const std::vector<core::Item> external = {MakeItem("e0", "a"),
                                            MakeItem("e1", "b")};
  const std::vector<core::Item> local = {MakeItem("l0", "a"),
                                         MakeItem("l1", "b"),
                                         MakeItem("l2", "c")};
  const auto pairs = CartesianBlocker().Generate(external, local);
  EXPECT_EQ(pairs.size(), 6u);
  const std::set<CandidatePair> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(CartesianBlockerTest, EmptySources) {
  EXPECT_TRUE(CartesianBlocker().Generate({}, {}).empty());
  EXPECT_TRUE(
      CartesianBlocker().Generate({MakeItem("e", "x")}, {}).empty());
}

TEST(StandardBlockerTest, PairsShareKeyPrefix) {
  const std::vector<core::Item> external = {MakeItem("e0", "CRCW-1"),
                                            MakeItem("e1", "T83-9")};
  const std::vector<core::Item> local = {MakeItem("l0", "CRCW-2"),
                                         MakeItem("l1", "CRCW-3"),
                                         MakeItem("l2", "T83-1"),
                                         MakeItem("l3", "ZZZZ-0")};
  const StandardBlocker blocker("pn", 4);
  const auto pairs = blocker.Generate(external, local);
  // e0 matches l0, l1 ("crcw"); e1 matches l2 ("t83-").
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (CandidatePair{0, 0}));
  EXPECT_EQ(pairs[1], (CandidatePair{0, 1}));
  EXPECT_EQ(pairs[2], (CandidatePair{1, 2}));
}

TEST(StandardBlockerTest, CaseInsensitive) {
  const auto pairs = StandardBlocker("pn", 3).Generate(
      {MakeItem("e0", "abc1")}, {MakeItem("l0", "ABC2")});
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(StandardBlockerTest, EmptyKeysNeverMatch) {
  const auto pairs = StandardBlocker("pn", 3).Generate(
      {MakeItem("e0", "")}, {MakeItem("l0", "")});
  EXPECT_TRUE(pairs.empty());
}

TEST(SortedNeighbourhoodTest, AdjacentKeysPaired) {
  // Sorted keys: a1(e) a2(l) a3(e) z9(l); window 2 pairs neighbours only.
  const std::vector<core::Item> external = {MakeItem("e0", "a1"),
                                            MakeItem("e1", "a3")};
  const std::vector<core::Item> local = {MakeItem("l0", "a2"),
                                         MakeItem("l1", "z9")};
  const SortedNeighbourhoodBlocker blocker("pn", 2);
  const auto pairs = blocker.Generate(external, local);
  const std::set<CandidatePair> got(pairs.begin(), pairs.end());
  EXPECT_TRUE(got.count(CandidatePair{0, 0}));  // a1-a2 adjacent
  EXPECT_TRUE(got.count(CandidatePair{1, 0}));  // a2-a3 adjacent
  EXPECT_FALSE(got.count(CandidatePair{0, 1}));  // a1..z9 far apart
}

TEST(SortedNeighbourhoodTest, WindowSizeGrowsCandidates) {
  std::vector<core::Item> external, local;
  for (int i = 0; i < 10; ++i) {
    external.push_back(
        MakeItem("e" + std::to_string(i), "k" + std::to_string(2 * i)));
    local.push_back(
        MakeItem("l" + std::to_string(i), "k" + std::to_string(2 * i + 1)));
  }
  const auto small =
      SortedNeighbourhoodBlocker("pn", 3).Generate(external, local);
  const auto large =
      SortedNeighbourhoodBlocker("pn", 8).Generate(external, local);
  EXPECT_LT(small.size(), large.size());
}

TEST(SortedNeighbourhoodTest, WindowLargerThanInputIsCartesianish) {
  const std::vector<core::Item> external = {MakeItem("e0", "a"),
                                            MakeItem("e1", "b")};
  const std::vector<core::Item> local = {MakeItem("l0", "c")};
  const auto pairs =
      SortedNeighbourhoodBlocker("pn", 50).Generate(external, local);
  EXPECT_EQ(pairs.size(), 2u);  // every cross-source pair
}

TEST(SortedNeighbourhoodTest, FirstWindowInteriorPairsIncluded) {
  // Regression: the very first window must pair ALL its members, not just
  // the last element with the rest.
  const std::vector<core::Item> external = {MakeItem("e0", "a")};
  const std::vector<core::Item> local = {MakeItem("l0", "b"),
                                         MakeItem("l1", "zz")};
  const auto pairs =
      SortedNeighbourhoodBlocker("pn", 3).Generate(external, local);
  const std::set<CandidatePair> got(pairs.begin(), pairs.end());
  EXPECT_TRUE(got.count(CandidatePair{0, 0}));  // a-b inside first window
}

TEST(BigramBlockerTest, SublistKeyCount) {
  const BigramBlocker blocker("pn", 0.8);
  // "abcd" -> bigrams ab, bc, cd (3 distinct); k = ceil(0.8*3) = 3 -> C(3,3)=1.
  EXPECT_EQ(blocker.SublistKeys("abcd").size(), 1u);
  // threshold 0.5: k = ceil(1.5) = 2 -> C(3,2) = 3 keys.
  const BigramBlocker loose("pn", 0.5);
  EXPECT_EQ(loose.SublistKeys("abcd").size(), 3u);
}

TEST(BigramBlockerTest, ShortValues) {
  const BigramBlocker blocker("pn", 0.9);
  EXPECT_EQ(blocker.SublistKeys("a").size(), 1u);  // single char bigram
  EXPECT_TRUE(blocker.SublistKeys("").empty());
}

TEST(BigramBlockerTest, CapLimitsExplosion) {
  const BigramBlocker blocker("pn", 0.5, 10);
  // A long string yields a large C(n,k); the cap must hold.
  EXPECT_LE(blocker.SublistKeys("abcdefghijklmnop").size(), 10u);
}

TEST(BigramBlockerTest, TypoToleranceAtLowThreshold) {
  // One substituted character; both values have 7 distinct bigrams of
  // which 5 are shared, so sub-lists of length ceil(0.55*7)=4 collide.
  const std::vector<core::Item> external = {MakeItem("e0", "crcw0905")};
  const std::vector<core::Item> local = {MakeItem("l0", "crcw0805"),
                                         MakeItem("l1", "t83axyzq")};
  const auto loose = BigramBlocker("pn", 0.55).Generate(external, local);
  const std::set<CandidatePair> got(loose.begin(), loose.end());
  EXPECT_TRUE(got.count(CandidatePair{0, 0}));
  EXPECT_FALSE(got.count(CandidatePair{0, 1}));
  // The strict threshold (full bigram string as the only key) misses it.
  const auto strict = BigramBlocker("pn", 1.0).Generate(external, local);
  EXPECT_TRUE(strict.empty());
}

TEST(BigramBlockerTest, IdenticalValuesAlwaysPair) {
  const auto pairs = BigramBlocker("pn", 1.0).Generate(
      {MakeItem("e0", "same-key")}, {MakeItem("l0", "same-key")});
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(MetricsTest, PerfectBlocking) {
  const std::vector<CandidatePair> gold = {{0, 0}, {1, 1}};
  const auto q = EvaluateBlocking(gold, gold, 2, 2);
  EXPECT_EQ(q.total_pairs, 4u);
  EXPECT_EQ(q.candidate_pairs, 2u);
  EXPECT_EQ(q.matches_found, 2u);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 1.0);
  EXPECT_DOUBLE_EQ(q.pairs_quality, 1.0);
  EXPECT_DOUBLE_EQ(q.reduction_ratio, 0.5);
}

TEST(MetricsTest, CartesianHasZeroReduction) {
  std::vector<CandidatePair> all;
  for (std::size_t e = 0; e < 3; ++e) {
    for (std::size_t l = 0; l < 3; ++l) all.push_back({e, l});
  }
  const auto q = EvaluateBlocking(all, {{0, 0}}, 3, 3);
  EXPECT_DOUBLE_EQ(q.reduction_ratio, 0.0);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 1.0);
  EXPECT_NEAR(q.pairs_quality, 1.0 / 9.0, 1e-12);
}

TEST(MetricsTest, DuplicateCandidatesCountOnce) {
  const std::vector<CandidatePair> candidates = {{0, 0}, {0, 0}, {0, 0}};
  const auto q = EvaluateBlocking(candidates, {{0, 0}}, 1, 1);
  EXPECT_EQ(q.candidate_pairs, 1u);
}

TEST(MetricsTest, MissedMatches) {
  const auto q = EvaluateBlocking({{0, 1}}, {{0, 0}, {1, 1}}, 2, 2);
  EXPECT_EQ(q.matches_found, 0u);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 0.0);
  EXPECT_DOUBLE_EQ(q.pairs_quality, 0.0);
}

TEST(MetricsTest, EmptyEverything) {
  const auto q = EvaluateBlocking({}, {}, 0, 0);
  EXPECT_DOUBLE_EQ(q.reduction_ratio, 0.0);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 0.0);
}

}  // namespace
}  // namespace rulelink::blocking
