#include "core/incremental.h"

#include <memory>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "core/learner.h"
#include "core/reference_learner.h"
#include "datagen/generator.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

// Order-free rule fingerprint: (property name, segment text, class,
// premise/joint/class counts). Two learners agree iff these sets match.
using RuleKey = std::tuple<std::string, std::string, ontology::ClassId,
                           std::size_t, std::size_t, std::size_t>;

std::set<RuleKey> RuleKeys(const RuleSet& rules) {
  std::set<RuleKey> out;
  for (const auto& rule : rules.rules()) {
    out.insert({rules.properties().name(rule.property),
                std::string(rules.segment_text(rule)), rule.cls,
                rule.counts.premise_count, rule.counts.joint_count,
                rule.counts.class_count});
  }
  return out;
}

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest() {
    root_ = onto_.AddClass("ex:Root");
    a_ = onto_.AddClass("ex:A");
    b_ = onto_.AddClass("ex:B");
    RL_CHECK_OK(onto_.AddSubClassOf(a_, root_));
    RL_CHECK_OK(onto_.AddSubClassOf(b_, root_));
    RL_CHECK_OK(onto_.Finalize());
  }

  static Item MakeItem(const std::string& pn) {
    Item item;
    item.iri = "ext:x";
    item.facts.push_back(PropertyValue{"pn", pn});
    return item;
  }

  ontology::Ontology onto_;
  ontology::ClassId root_, a_, b_;
  text::SeparatorSegmenter segmenter_;
};

TEST_F(IncrementalTest, MatchesBatchLearnerExactly) {
  // Build the same corpus both ways.
  const std::vector<std::pair<std::string, ontology::ClassId>> corpus = {
      {"AAA-1", a_}, {"AAA-2", a_}, {"AAA-MIX-3", a_}, {"MIX-4", b_},
      {"BB-5", b_},  {"BB-MIX-6", b_},
  };
  TrainingSet ts(onto_);
  IncrementalRuleLearner incremental(&onto_, &segmenter_);
  for (const auto& [pn, cls] : corpus) {
    ts.AddExample(MakeItem(pn), "local:x", {cls});
    incremental.AddExample(MakeItem(pn), {cls});
  }

  LearnerOptions options;
  options.support_threshold = 0.15;
  options.segmenter = &segmenter_;
  auto batch = RuleLearner(options).Learn(ts);
  ASSERT_TRUE(batch.ok());
  auto online = incremental.BuildRules(0.15);
  ASSERT_TRUE(online.ok()) << online.status();

  EXPECT_EQ(RuleKeys(*batch), RuleKeys(*online));
}

TEST_F(IncrementalTest, MatchesBatchOnGeneratedCorpus) {
  datagen::DatasetConfig config;
  config.seed = 5;
  config.num_classes = 60;
  config.num_leaves = 25;
  config.catalog_size = 900;
  config.num_links = 400;
  config.num_signal_classes = 5;
  config.num_other_frequent_classes = 6;
  config.signal_class_min_links = 25;
  config.signal_class_max_links = 50;
  config.frequent_class_min_links = 6;
  config.frequent_class_max_links = 10;
  config.tail_class_cap_links = 4;
  auto dataset = datagen::DatasetGenerator(config).Generate();
  ASSERT_TRUE(dataset.ok());
  const TrainingSet ts = datagen::BuildTrainingSet(*dataset);

  IncrementalRuleLearner incremental(&dataset->ontology(), &segmenter_);
  for (const auto& example : ts.examples()) {
    Item item;
    item.iri = example.external_iri;
    for (const auto& [property, value] : example.facts) {
      item.facts.push_back(
          PropertyValue{ts.properties().name(property), value});
    }
    incremental.AddExample(item, example.classes);
  }

  LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter_;
  auto batch = RuleLearner(options).Learn(ts);
  LearnStats batch_stats;
  batch = RuleLearner(options).Learn(ts, &batch_stats);
  ASSERT_TRUE(batch.ok());
  LearnStats online_stats;
  auto online = incremental.BuildRules(0.01, 0.0, &online_stats);
  ASSERT_TRUE(online.ok());

  EXPECT_EQ(batch->size(), online->size());
  EXPECT_EQ(batch_stats.distinct_segments, online_stats.distinct_segments);
  EXPECT_EQ(batch_stats.segment_occurrences,
            online_stats.segment_occurrences);
  EXPECT_EQ(batch_stats.selected_segment_occurrences,
            online_stats.selected_segment_occurrences);
  EXPECT_EQ(batch_stats.frequent_premises, online_stats.frequent_premises);
  EXPECT_EQ(batch_stats.frequent_classes, online_stats.frequent_classes);
  EXPECT_EQ(batch_stats.classes_with_rules,
            online_stats.classes_with_rules);
}

TEST_F(IncrementalTest, RulesAppearAsSupportGrows) {
  IncrementalRuleLearner learner(&onto_, &segmenter_);
  // One example: "SIG" supported by 1/1 -> frequency 1.0 > th.
  learner.AddExample(MakeItem("SIG"), {a_});
  auto rules = learner.BuildRules(0.5);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 1u);

  // Add 3 unrelated examples: SIG frequency drops to 0.25 < 0.5.
  for (int i = 0; i < 3; ++i) {
    learner.AddExample(MakeItem("OTHER" + std::to_string(i)), {b_});
  }
  rules = learner.BuildRules(0.5);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());

  // Add more SIG examples: the rule comes back.
  for (int i = 0; i < 4; ++i) {
    learner.AddExample(MakeItem("SIG-" + std::to_string(10 + i)), {a_});
  }
  rules = learner.BuildRules(0.5);
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ(rules->segment_text(rules->rules()[0]), "SIG");
  EXPECT_EQ(rules->rules()[0].counts.premise_count, 5u);
  EXPECT_EQ(rules->rules()[0].counts.total, 8u);
}

TEST_F(IncrementalTest, MostSpecificReductionApplied) {
  IncrementalRuleLearner learner(&onto_, &segmenter_);
  learner.AddExample(MakeItem("X"), {root_, a_});
  learner.AddExample(MakeItem("X"), {a_});
  auto rules = learner.BuildRules(0.4);
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ(rules->rules()[0].cls, a_);  // not Root
  EXPECT_EQ(rules->rules()[0].counts.class_count, 2u);
}

TEST_F(IncrementalTest, PropertySelection) {
  IncrementalRuleLearner learner(&onto_, &segmenter_, {"pn"});
  Item item = MakeItem("SIG-1");
  item.facts.push_back(PropertyValue{"mfr", "ACME"});
  learner.AddExample(item, {a_});
  learner.AddExample(MakeItem("SIG-2"), {a_});
  auto rules = learner.BuildRules(0.4);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : rules->rules()) {
    EXPECT_NE(rules->segment_text(rule), "ACME");
  }
}

// Pins the shared support boundary (IsFrequentCount): a conjunction seen
// in count == th * |TS| examples EXACTLY is not frequent — strict '>',
// for all three learners identically. th = 0.25 over 8 examples puts the
// boundary at count == 2 with the product exactly representable, so any
// learner that drifts to '>=' (or recomputes the ratio with a division)
// admits the EDGE premise and the (J, a) joint and diverges here.
TEST_F(IncrementalTest, SupportBoundaryMatchesBatchExactly) {
  const std::vector<std::pair<std::string, ontology::ClassId>> corpus = {
      {"EDGE KEEP", a_}, {"EDGE KEEP", a_}, {"KEEP", a_}, {"J", a_},
      {"J", a_},         {"J", b_},         {"U1", b_},   {"U2", b_},
  };
  // Premise counts: EDGE = 2 (== 0.25 * 8, boundary -> excluded),
  // KEEP = 3 (frequent), J = 3 (frequent). Joints: (KEEP, a) = 3
  // (frequent), (J, a) = 2 (boundary -> excluded), (J, b) = 1. Classes:
  // a = 5, b = 3 (both frequent). Exactly one rule survives.
  TrainingSet ts(onto_);
  IncrementalRuleLearner incremental(&onto_, &segmenter_);
  for (const auto& [pn, cls] : corpus) {
    ts.AddExample(MakeItem(pn), "local:x", {cls});
    incremental.AddExample(MakeItem(pn), {cls});
  }

  LearnerOptions options;
  options.support_threshold = 0.25;
  options.segmenter = &segmenter_;
  auto batch = RuleLearner(options).Learn(ts);
  ASSERT_TRUE(batch.ok());
  auto reference = ReferenceLearn(options, ts);
  ASSERT_TRUE(reference.ok());
  auto online = incremental.BuildRules(0.25);
  ASSERT_TRUE(online.ok());

  EXPECT_EQ(RuleKeys(*batch), RuleKeys(*online));
  EXPECT_EQ(RuleKeys(*reference), RuleKeys(*online));
  ASSERT_EQ(online->size(), 1u);
  const ClassificationRule& rule = online->rules()[0];
  EXPECT_EQ(online->segment_text(rule), "KEEP");
  EXPECT_EQ(rule.cls, a_);
  EXPECT_EQ(rule.counts.premise_count, 3u);
  EXPECT_EQ(rule.counts.joint_count, 3u);
  EXPECT_EQ(rule.counts.class_count, 5u);
}

// Differential for the interned property-selection fast path: with a
// multi-property corpus and P = {pn, mfr}, the incremental learner (which
// now resolves membership via its pre-interned catalog) must produce the
// same rules as the batch learner's name-set filter — selected properties
// contribute, the unselected one never does.
TEST_F(IncrementalTest, MultiPropertySelectionMatchesBatch) {
  TrainingSet ts(onto_);
  IncrementalRuleLearner incremental(&onto_, &segmenter_, {"pn", "mfr"});
  for (int i = 0; i < 8; ++i) {
    Item item;
    item.iri = "ext:x";
    item.facts.push_back(PropertyValue{
        "pn", i < 3 ? "PNSEG" : "UNIQP" + std::to_string(i)});
    item.facts.push_back(PropertyValue{
        "mfr", i < 4 ? "ACME" : "UNIQM" + std::to_string(i)});
    item.facts.push_back(PropertyValue{"desc", "DESCSEG"});
    const ontology::ClassId cls = i < 4 ? a_ : b_;
    ts.AddExample(item, "local:x", {cls});
    incremental.AddExample(item, {cls});
  }

  LearnerOptions options;
  options.support_threshold = 0.25;
  options.segmenter = &segmenter_;
  options.properties = {"pn", "mfr"};
  auto batch = RuleLearner(options).Learn(ts);
  ASSERT_TRUE(batch.ok());
  auto online = incremental.BuildRules(0.25);
  ASSERT_TRUE(online.ok());

  EXPECT_EQ(RuleKeys(*batch), RuleKeys(*online));
  bool saw_pn = false, saw_mfr = false;
  for (const auto& rule : online->rules()) {
    // DESCSEG occurs in all 8 examples — frequent by count, but its
    // property is outside P, so it must never surface.
    EXPECT_NE(online->segment_text(rule), "DESCSEG");
    saw_pn = saw_pn || online->segment_text(rule) == "PNSEG";
    saw_mfr = saw_mfr || online->segment_text(rule) == "ACME";
  }
  EXPECT_TRUE(saw_pn);
  EXPECT_TRUE(saw_mfr);
}

TEST_F(IncrementalTest, Errors) {
  IncrementalRuleLearner learner(&onto_, &segmenter_);
  EXPECT_FALSE(learner.BuildRules(0.5).ok());  // no examples
  learner.AddExample(MakeItem("X"), {a_});
  EXPECT_FALSE(learner.BuildRules(0.0).ok());
  EXPECT_FALSE(learner.BuildRules(1.0).ok());
  EXPECT_TRUE(learner.BuildRules(0.5).ok());
}

}  // namespace
}  // namespace rulelink::core
