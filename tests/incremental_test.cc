#include "core/incremental.h"

#include <memory>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "core/learner.h"
#include "datagen/generator.h"
#include "util/logging.h"

namespace rulelink::core {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest() {
    root_ = onto_.AddClass("ex:Root");
    a_ = onto_.AddClass("ex:A");
    b_ = onto_.AddClass("ex:B");
    RL_CHECK_OK(onto_.AddSubClassOf(a_, root_));
    RL_CHECK_OK(onto_.AddSubClassOf(b_, root_));
    RL_CHECK_OK(onto_.Finalize());
  }

  static Item MakeItem(const std::string& pn) {
    Item item;
    item.iri = "ext:x";
    item.facts.push_back(PropertyValue{"pn", pn});
    return item;
  }

  ontology::Ontology onto_;
  ontology::ClassId root_, a_, b_;
  text::SeparatorSegmenter segmenter_;
};

TEST_F(IncrementalTest, MatchesBatchLearnerExactly) {
  // Build the same corpus both ways.
  const std::vector<std::pair<std::string, ontology::ClassId>> corpus = {
      {"AAA-1", a_}, {"AAA-2", a_}, {"AAA-MIX-3", a_}, {"MIX-4", b_},
      {"BB-5", b_},  {"BB-MIX-6", b_},
  };
  TrainingSet ts(onto_);
  IncrementalRuleLearner incremental(&onto_, &segmenter_);
  for (const auto& [pn, cls] : corpus) {
    ts.AddExample(MakeItem(pn), "local:x", {cls});
    incremental.AddExample(MakeItem(pn), {cls});
  }

  LearnerOptions options;
  options.support_threshold = 0.15;
  options.segmenter = &segmenter_;
  auto batch = RuleLearner(options).Learn(ts);
  ASSERT_TRUE(batch.ok());
  auto online = incremental.BuildRules(0.15);
  ASSERT_TRUE(online.ok()) << online.status();

  using Key = std::tuple<std::string, std::string, ontology::ClassId,
                         std::size_t, std::size_t, std::size_t>;
  const auto keys = [](const RuleSet& rules) {
    std::set<Key> out;
    for (const auto& rule : rules.rules()) {
      out.insert({rules.properties().name(rule.property),
                  std::string(rules.segment_text(rule)),
                  rule.cls, rule.counts.premise_count,
                  rule.counts.joint_count, rule.counts.class_count});
    }
    return out;
  };
  EXPECT_EQ(keys(*batch), keys(*online));
}

TEST_F(IncrementalTest, MatchesBatchOnGeneratedCorpus) {
  datagen::DatasetConfig config;
  config.seed = 5;
  config.num_classes = 60;
  config.num_leaves = 25;
  config.catalog_size = 900;
  config.num_links = 400;
  config.num_signal_classes = 5;
  config.num_other_frequent_classes = 6;
  config.signal_class_min_links = 25;
  config.signal_class_max_links = 50;
  config.frequent_class_min_links = 6;
  config.frequent_class_max_links = 10;
  config.tail_class_cap_links = 4;
  auto dataset = datagen::DatasetGenerator(config).Generate();
  ASSERT_TRUE(dataset.ok());
  const TrainingSet ts = datagen::BuildTrainingSet(*dataset);

  IncrementalRuleLearner incremental(&dataset->ontology(), &segmenter_);
  for (const auto& example : ts.examples()) {
    Item item;
    item.iri = example.external_iri;
    for (const auto& [property, value] : example.facts) {
      item.facts.push_back(
          PropertyValue{ts.properties().name(property), value});
    }
    incremental.AddExample(item, example.classes);
  }

  LearnerOptions options;
  options.support_threshold = 0.01;
  options.segmenter = &segmenter_;
  auto batch = RuleLearner(options).Learn(ts);
  LearnStats batch_stats;
  batch = RuleLearner(options).Learn(ts, &batch_stats);
  ASSERT_TRUE(batch.ok());
  LearnStats online_stats;
  auto online = incremental.BuildRules(0.01, 0.0, &online_stats);
  ASSERT_TRUE(online.ok());

  EXPECT_EQ(batch->size(), online->size());
  EXPECT_EQ(batch_stats.distinct_segments, online_stats.distinct_segments);
  EXPECT_EQ(batch_stats.segment_occurrences,
            online_stats.segment_occurrences);
  EXPECT_EQ(batch_stats.selected_segment_occurrences,
            online_stats.selected_segment_occurrences);
  EXPECT_EQ(batch_stats.frequent_premises, online_stats.frequent_premises);
  EXPECT_EQ(batch_stats.frequent_classes, online_stats.frequent_classes);
  EXPECT_EQ(batch_stats.classes_with_rules,
            online_stats.classes_with_rules);
}

TEST_F(IncrementalTest, RulesAppearAsSupportGrows) {
  IncrementalRuleLearner learner(&onto_, &segmenter_);
  // One example: "SIG" supported by 1/1 -> frequency 1.0 > th.
  learner.AddExample(MakeItem("SIG"), {a_});
  auto rules = learner.BuildRules(0.5);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules->size(), 1u);

  // Add 3 unrelated examples: SIG frequency drops to 0.25 < 0.5.
  for (int i = 0; i < 3; ++i) {
    learner.AddExample(MakeItem("OTHER" + std::to_string(i)), {b_});
  }
  rules = learner.BuildRules(0.5);
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules->empty());

  // Add more SIG examples: the rule comes back.
  for (int i = 0; i < 4; ++i) {
    learner.AddExample(MakeItem("SIG-" + std::to_string(10 + i)), {a_});
  }
  rules = learner.BuildRules(0.5);
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ(rules->segment_text(rules->rules()[0]), "SIG");
  EXPECT_EQ(rules->rules()[0].counts.premise_count, 5u);
  EXPECT_EQ(rules->rules()[0].counts.total, 8u);
}

TEST_F(IncrementalTest, MostSpecificReductionApplied) {
  IncrementalRuleLearner learner(&onto_, &segmenter_);
  learner.AddExample(MakeItem("X"), {root_, a_});
  learner.AddExample(MakeItem("X"), {a_});
  auto rules = learner.BuildRules(0.4);
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ(rules->rules()[0].cls, a_);  // not Root
  EXPECT_EQ(rules->rules()[0].counts.class_count, 2u);
}

TEST_F(IncrementalTest, PropertySelection) {
  IncrementalRuleLearner learner(&onto_, &segmenter_, {"pn"});
  Item item = MakeItem("SIG-1");
  item.facts.push_back(PropertyValue{"mfr", "ACME"});
  learner.AddExample(item, {a_});
  learner.AddExample(MakeItem("SIG-2"), {a_});
  auto rules = learner.BuildRules(0.4);
  ASSERT_TRUE(rules.ok());
  for (const auto& rule : rules->rules()) {
    EXPECT_NE(rules->segment_text(rule), "ACME");
  }
}

TEST_F(IncrementalTest, Errors) {
  IncrementalRuleLearner learner(&onto_, &segmenter_);
  EXPECT_FALSE(learner.BuildRules(0.5).ok());  // no examples
  learner.AddExample(MakeItem("X"), {a_});
  EXPECT_FALSE(learner.BuildRules(0.0).ok());
  EXPECT_FALSE(learner.BuildRules(1.0).ok());
  EXPECT_TRUE(learner.BuildRules(0.5).ok());
}

}  // namespace
}  // namespace rulelink::core
