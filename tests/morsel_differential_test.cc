// Forced-stealing differential tests for the morsel scheduler: with the
// morsel size forced to 1 item, every loop degenerates into n single-item
// slots and the per-worker deques steal constantly — the worst case for
// the determinism contract. Under that regime the learner, cached linking
// and streaming linking must still be byte-identical to their serial
// paths at threads {2, 3, 8}, with skewed per-item workloads thrown in at
// the raw ParallelFor level to push slots across participants.
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/standard_blocking.h"
#include "core/learner.h"
#include "datagen/generator.h"
#include "linking/feature_cache.h"
#include "linking/linker.h"
#include "linking/matcher.h"
#include "linking/streaming_linker.h"
#include "text/segmenter.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace rulelink {
namespace {

constexpr std::size_t kThreadCounts[] = {2, 3, 8};
constexpr double kThreshold = 0.6;

datagen::DatasetConfig SmallConfig(std::uint64_t seed) {
  datagen::DatasetConfig config;
  config.seed = seed;
  config.num_classes = 40;
  config.num_leaves = 16;
  config.catalog_size = 400;
  config.num_links = 180;
  config.num_signal_classes = 4;
  config.num_other_frequent_classes = 4;
  config.signal_class_min_links = 15;
  config.signal_class_max_links = 30;
  config.frequent_class_min_links = 5;
  config.frequent_class_max_links = 9;
  config.tail_class_cap_links = 3;
  return config;
}

const datagen::Dataset& GetCorpus(std::uint64_t seed) {
  static std::map<std::uint64_t, std::unique_ptr<datagen::Dataset>>* cache =
      new std::map<std::uint64_t, std::unique_ptr<datagen::Dataset>>();
  auto it = cache->find(seed);
  if (it == cache->end()) {
    auto dataset = datagen::DatasetGenerator(SmallConfig(seed)).Generate();
    RL_CHECK(dataset.ok()) << dataset.status();
    it = cache
             ->emplace(seed, std::make_unique<datagen::Dataset>(
                                 std::move(dataset).value()))
             .first;
  }
  return *it->second;
}

linking::ItemMatcher Matcher() {
  return linking::ItemMatcher({
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kLevenshtein, 2.0},
      {datagen::props::kPartNumber, datagen::props::kPartNumber,
       linking::SimilarityMeasure::kJaccardTokens, 1.0},
      {datagen::props::kManufacturer, datagen::props::kManufacturer,
       linking::SimilarityMeasure::kExact, 0.5},
  });
}

void ExpectLinksIdentical(const std::vector<linking::Link>& actual,
                          const std::vector<linking::Link>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].external_index, expected[i].external_index) << i;
    EXPECT_EQ(actual[i].local_index, expected[i].local_index) << i;
    EXPECT_EQ(actual[i].score, expected[i].score) << i;
  }
}

class MorselDifferential : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  const datagen::Dataset& corpus() const { return GetCorpus(GetParam()); }
};

TEST_P(MorselDifferential, SkewedWorkloadStaysDeterministicAndSteals) {
  // Raw scheduler property: per-item costs spanning two orders of
  // magnitude, 1-item morsels, a deterministic per-slot product merged in
  // slot order. The merged result must match the serial loop exactly and
  // the skew must actually provoke steals.
  constexpr std::size_t kItems = 300;
  const auto work = [](std::size_t i) {
    // Busy work proportional to a skewed profile (heavy head).
    const std::size_t spin = (i % 7 == 0) ? 4000 : 40;
    std::uint64_t acc = i + 1;
    for (std::size_t k = 0; k < spin; ++k) acc = acc * 6364136223846793005ULL + 1;
    return acc;
  };
  std::vector<std::uint64_t> serial(kItems);
  for (std::size_t i = 0; i < kItems; ++i) serial[i] = work(i);

  util::ScopedMorselItems force(1);
  util::ThreadPool pool(8);
  const util::SchedulerTotals before = pool.Stats().Totals();
  std::atomic<std::size_t> slot_mismatches{0};
  for (int repeat = 0; repeat < 5; ++repeat) {
    std::vector<std::uint64_t> parallel(kItems);
    pool.ParallelFor(kItems,
                     [&](std::size_t slot, std::size_t begin,
                         std::size_t end) {
                       if (slot != begin) ++slot_mismatches;  // 1-item morsels
                       for (std::size_t i = begin; i < end; ++i) {
                         parallel[i] = work(i);
                       }
                     });
    EXPECT_EQ(parallel, serial);
  }
  EXPECT_EQ(slot_mismatches.load(), 0u);
  const util::SchedulerTotals delta = pool.Stats().Totals().Minus(before);
  EXPECT_EQ(delta.morsels, 5u * kItems);
  // 8 participants × 300 one-item slots × 5 rounds: stealing must fire.
  EXPECT_GT(delta.steals, 0u);
}

TEST_P(MorselDifferential, LearnerIsByteIdenticalUnderForcedStealing) {
  const datagen::Dataset& dataset = corpus();
  const core::TrainingSet ts = datagen::BuildTrainingSet(dataset);
  const text::SeparatorSegmenter segmenter;
  const auto options = [&](std::size_t threads) {
    core::LearnerOptions o;
    o.support_threshold = 0.01;
    o.segmenter = &segmenter;
    o.num_threads = threads;
    return o;
  };
  const auto serial = core::RuleLearner(options(1)).Learn(ts);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_GT(serial->size(), 0u);

  util::ScopedMorselItems force(1);
  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    const auto parallel = core::RuleLearner(options(threads)).Learn(ts);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    ASSERT_EQ(parallel->size(), serial->size());
    for (std::size_t i = 0; i < serial->size(); ++i) {
      const core::ClassificationRule& a = serial->rules()[i];
      const core::ClassificationRule& b = parallel->rules()[i];
      EXPECT_EQ(a.property, b.property) << "rule " << i;
      EXPECT_EQ(serial->segment_text(a), parallel->segment_text(b))
          << "rule " << i;
      EXPECT_EQ(a.cls, b.cls) << "rule " << i;
      EXPECT_EQ(a.support, b.support) << "rule " << i;
      EXPECT_EQ(a.confidence, b.confidence) << "rule " << i;
      EXPECT_EQ(a.lift, b.lift) << "rule " << i;
    }
  }
}

TEST_P(MorselDifferential, CachedLinkingIsByteIdenticalUnderForcedStealing) {
  const datagen::Dataset& dataset = corpus();
  const linking::ItemMatcher matcher = Matcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/3);
  const auto candidates =
      blocker.Generate(dataset.external_items, dataset.catalog_items);
  ASSERT_GT(candidates.size(), 0u);

  for (linking::Linker::Strategy strategy :
       {linking::Linker::Strategy::kBestPerExternal,
        linking::Linker::Strategy::kAllAboveThreshold}) {
    SCOPED_TRACE(static_cast<int>(strategy));
    const linking::Linker linker(&matcher, kThreshold, strategy);
    linking::FeatureDictionary ref_dict;
    const auto ref_external = linking::FeatureCache::Build(
        dataset.external_items, matcher,
        linking::FeatureCache::Side::kExternal, &ref_dict, 1);
    const auto ref_local = linking::FeatureCache::Build(
        dataset.catalog_items, matcher, linking::FeatureCache::Side::kLocal,
        &ref_dict, 1);
    linking::LinkerStats ref_stats;
    const auto reference = linker.RunCached(ref_external, ref_local,
                                            candidates, &ref_stats, 1);
    ASSERT_GT(reference.size(), 0u);

    util::ScopedMorselItems force(1);
    for (std::size_t threads : kThreadCounts) {
      SCOPED_TRACE(threads);
      // Cache build under forced stealing too: one dictionary per item.
      linking::FeatureDictionary dict;
      const auto external = linking::FeatureCache::Build(
          dataset.external_items, matcher,
          linking::FeatureCache::Side::kExternal, &dict, threads);
      const auto local = linking::FeatureCache::Build(
          dataset.catalog_items, matcher,
          linking::FeatureCache::Side::kLocal, &dict, threads);
      linking::LinkerStats stats;
      const auto links =
          linker.RunCached(external, local, candidates, &stats, threads);
      ExpectLinksIdentical(links, reference);
      EXPECT_EQ(stats.pairs_scored, ref_stats.pairs_scored);
      EXPECT_EQ(stats.links_emitted, ref_stats.links_emitted);
    }
  }
}

TEST_P(MorselDifferential, StreamingLinkingIsByteIdenticalUnderForcedStealing) {
  const datagen::Dataset& dataset = corpus();
  const linking::ItemMatcher matcher = Matcher();
  const blocking::StandardBlocker blocker(datagen::props::kPartNumber,
                                          /*prefix_length=*/3);
  const auto index =
      blocker.BuildIndex(dataset.external_items, dataset.catalog_items);
  linking::FeatureDictionary ref_dict;
  const auto ref_external = linking::FeatureCache::Build(
      dataset.external_items, matcher, linking::FeatureCache::Side::kExternal,
      &ref_dict, 1);
  const auto ref_local = linking::FeatureCache::Build(
      dataset.catalog_items, matcher, linking::FeatureCache::Side::kLocal,
      &ref_dict, 1);
  const linking::StreamingLinker streaming(
      &matcher, kThreshold, linking::Linker::Strategy::kBestPerExternal);
  linking::LinkerStats ref_stats;
  const auto reference =
      streaming.Run(*index, ref_external, ref_local, &ref_stats, 1);
  ASSERT_GT(reference.size(), 0u);

  util::ScopedMorselItems force(1);
  for (std::size_t threads : kThreadCounts) {
    SCOPED_TRACE(threads);
    linking::LinkerStats stats;
    const auto links =
        streaming.Run(*index, ref_external, ref_local, &stats, threads);
    ExpectLinksIdentical(links, reference);
    EXPECT_EQ(stats.pairs_scored, ref_stats.pairs_scored);
    EXPECT_EQ(stats.pairs_pruned_by_filter,
              ref_stats.pairs_pruned_by_filter);
    EXPECT_EQ(stats.links_emitted, ref_stats.links_emitted);
    EXPECT_EQ(stats.peak_candidate_run, ref_stats.peak_candidate_run);
  }
}

TEST_P(MorselDifferential, ExceptionPropagationIsLowestSlotFirst) {
  // Under maximal stealing, slot 3's exception must always win over later
  // slots' no matter who executed them; skewed sleeps shuffle the
  // completion order every repeat.
  util::ScopedMorselItems force(1);
  util::ThreadPool pool(8);
  for (int repeat = 0; repeat < 10; ++repeat) {
    try {
      pool.ParallelFor(96, [&](std::size_t slot, std::size_t, std::size_t) {
        if ((slot + static_cast<std::size_t>(repeat)) % 9 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(30));
        }
        if (slot >= 3 && slot % 4 == 3) {
          throw std::runtime_error("slot-" + std::to_string(slot));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "slot-3");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MorselDifferential,
                         ::testing::Values(101, 4057));

}  // namespace
}  // namespace rulelink
